"""Error types for the Darshan-equivalent trace substrate.

The reproduction keeps a dedicated exception hierarchy so that callers can
distinguish *corrupted input* (expected at scale: 32% of the Blue Waters
2019 dataset was evicted by MOSAIC's validity check) from *programming
errors* inside the pipeline.
"""

from __future__ import annotations


class DarshanError(Exception):
    """Base class for all trace-substrate errors."""


class TraceFormatError(DarshanError):
    """A serialized trace could not be decoded (bad magic, truncated
    payload, unsupported version, malformed JSON, ...)."""


class TraceValidationError(DarshanError):
    """A decoded trace violates a structural invariant.

    Carries the machine-readable list of violations so that the
    pre-processing funnel (Fig. 3 of the paper) can report eviction
    reasons.
    """

    def __init__(self, message: str, violations: list[str] | None = None):
        super().__init__(message)
        self.violations: list[str] = list(violations or [])


class TraceWriteError(DarshanError):
    """A trace could not be serialized (e.g. out-of-range counter)."""


class TraceReadError(DarshanError):
    """A trace payload could not be obtained from its source at all
    (I/O-level failure, as opposed to :class:`TraceFormatError`'s
    undecodable bytes).

    Classified *transient* by the resilient execution layer: a trace
    that scanned clean but fails on re-read is being disturbed by its
    environment (filesystem hiccup, concurrent rewrite), so the read is
    retried with backoff before the trace is given up on.
    """


class TraceUnavailableError(DarshanError):
    """A selected trace stayed unreadable after the retry budget was
    exhausted — the permanent form of :class:`TraceReadError`, raised so
    the failure is captured against the right trace instead of aborting
    the corpus run."""
