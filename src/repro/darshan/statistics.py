"""Descriptive statistics over a single trace.

These summaries are what the aggregate-statistics baseline of related work
consumes (Devarajan & Mohror style, paper ref. [25]) and what the report
renderer shows next to MOSAIC's categories.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .trace import Trace

__all__ = ["TraceSummary", "summarize"]


@dataclass(slots=True, frozen=True)
class TraceSummary:
    """Aggregate view of one trace (no temporal structure retained)."""

    job_id: int
    uid: int
    exe: str
    nprocs: int
    run_time: float
    n_records: int
    n_files: int
    bytes_read: int
    bytes_written: int
    reads: int
    writes: int
    metadata_ops: int
    read_time: float
    write_time: float
    meta_time: float
    ranks_doing_io: int

    @property
    def total_bytes(self) -> int:
        return self.bytes_read + self.bytes_written

    @property
    def io_time(self) -> float:
        return self.read_time + self.write_time + self.meta_time

    @property
    def io_time_fraction(self) -> float:
        """Fraction of (nprocs × run_time) core-seconds spent in I/O."""
        denom = self.nprocs * self.run_time
        return self.io_time / denom if denom > 0 else 0.0

    @property
    def mean_read_size(self) -> float:
        return self.bytes_read / self.reads if self.reads else 0.0

    @property
    def mean_write_size(self) -> float:
        return self.bytes_written / self.writes if self.writes else 0.0


def summarize(trace: Trace) -> TraceSummary:
    """Compute the aggregate summary of ``trace``."""
    files = {r.file_id for r in trace.records}
    ranks = {r.rank for r in trace.records if r.total_bytes > 0 and r.rank >= 0}
    shared = any(r.rank < 0 and r.total_bytes > 0 for r in trace.records)
    ranks_doing_io = trace.meta.nprocs if shared else len(ranks)
    return TraceSummary(
        job_id=trace.meta.job_id,
        uid=trace.meta.uid,
        exe=trace.meta.exe,
        nprocs=trace.meta.nprocs,
        run_time=trace.meta.run_time,
        n_records=len(trace.records),
        n_files=len(files),
        bytes_read=trace.total_bytes_read,
        bytes_written=trace.total_bytes_written,
        reads=sum(r.reads for r in trace.records),
        writes=sum(r.writes for r in trace.records),
        metadata_ops=trace.total_metadata_ops,
        read_time=float(np.sum([r.read_time for r in trace.records])) if trace.records else 0.0,
        write_time=float(np.sum([r.write_time for r in trace.records])) if trace.records else 0.0,
        meta_time=float(np.sum([r.meta_time for r in trace.records])) if trace.records else 0.0,
        ranks_doing_io=ranks_doing_io,
    )
