"""Darshan POSIX-module counter taxonomy.

The real Darshan runtime aggregates each file's POSIX activity *between
the opening and closing of the file* into a fixed set of integer counters
and floating-point timestamps ("fcounters").  MOSAIC only consumes a small
subset of them; this module names that subset with the exact Darshan
counter identifiers so that a reader familiar with ``darshan-parser``
output (or pydarshan DataFrames) can map our records back to the original
format, and so that the JSON codec emits field names a Darshan user
recognises.

Only the POSIX module is modelled.  The Blue Waters deployment that the
paper analyses ran Darshan with the DXT module *disabled*, therefore no
per-operation (offset, length, timestamp) tuples exist: an application
that keeps a file open for its whole runtime collapses into a single wide
access window.  Preserving exactly this information loss is essential —
it is the stated reason why 37% of write behaviours are categorized
``write_steady`` instead of periodic (paper §IV-A).
"""

from __future__ import annotations

from typing import Final

# --- integer counters ----------------------------------------------------

#: Number of POSIX ``open``/``creat`` calls on the file.
POSIX_OPENS: Final = "POSIX_OPENS"
#: Number of POSIX ``close`` calls (Darshan infers one per open at finalize).
POSIX_CLOSES: Final = "POSIX_CLOSES"
#: Number of POSIX ``lseek``-family calls.  Blue Waters-era Darshan did not
#: timestamp seeks; MOSAIC assumes they are co-located with opens (§III-B3c).
POSIX_SEEKS: Final = "POSIX_SEEKS"
#: Number of ``stat``-family calls.
POSIX_STATS: Final = "POSIX_STATS"
#: Number of read operations.
POSIX_READS: Final = "POSIX_READS"
#: Number of write operations.
POSIX_WRITES: Final = "POSIX_WRITES"
#: Total bytes read from the file.
POSIX_BYTES_READ: Final = "POSIX_BYTES_READ"
#: Total bytes written to the file.
POSIX_BYTES_WRITTEN: Final = "POSIX_BYTES_WRITTEN"

INT_COUNTERS: Final[tuple[str, ...]] = (
    POSIX_OPENS,
    POSIX_CLOSES,
    POSIX_SEEKS,
    POSIX_STATS,
    POSIX_READS,
    POSIX_WRITES,
    POSIX_BYTES_READ,
    POSIX_BYTES_WRITTEN,
)

# --- floating point counters (seconds relative to job start) -------------

POSIX_F_OPEN_START_TIMESTAMP: Final = "POSIX_F_OPEN_START_TIMESTAMP"
POSIX_F_CLOSE_END_TIMESTAMP: Final = "POSIX_F_CLOSE_END_TIMESTAMP"
POSIX_F_READ_START_TIMESTAMP: Final = "POSIX_F_READ_START_TIMESTAMP"
POSIX_F_READ_END_TIMESTAMP: Final = "POSIX_F_READ_END_TIMESTAMP"
POSIX_F_WRITE_START_TIMESTAMP: Final = "POSIX_F_WRITE_START_TIMESTAMP"
POSIX_F_WRITE_END_TIMESTAMP: Final = "POSIX_F_WRITE_END_TIMESTAMP"
#: Cumulative seconds spent in read calls.
POSIX_F_READ_TIME: Final = "POSIX_F_READ_TIME"
#: Cumulative seconds spent in write calls.
POSIX_F_WRITE_TIME: Final = "POSIX_F_WRITE_TIME"
#: Cumulative seconds spent in metadata calls (open/close/seek/stat).
POSIX_F_META_TIME: Final = "POSIX_F_META_TIME"

FLOAT_COUNTERS: Final[tuple[str, ...]] = (
    POSIX_F_OPEN_START_TIMESTAMP,
    POSIX_F_CLOSE_END_TIMESTAMP,
    POSIX_F_READ_START_TIMESTAMP,
    POSIX_F_READ_END_TIMESTAMP,
    POSIX_F_WRITE_START_TIMESTAMP,
    POSIX_F_WRITE_END_TIMESTAMP,
    POSIX_F_READ_TIME,
    POSIX_F_WRITE_TIME,
    POSIX_F_META_TIME,
)

#: Sentinel used by Darshan for "no such event happened" timestamps.
NO_TIMESTAMP: Final = -1.0

#: Rank value marking a record shared (collectively accessed) by all ranks.
SHARED_RANK: Final = -1
