"""Lazy trace sources: the out-of-core ingest layer of the pipeline.

The paper's corpus is 462,502 Darshan traces — far more than fits in
RAM once decoded.  A :class:`TraceSource` decouples *what the corpus
is* from *when traces are resident*: it enumerates cheap
:class:`TraceRef` handles and loads one trace at a time on demand, so
the streaming pipeline (:func:`repro.core.pipeline.run_pipeline_stream`)
can make two bounded-memory passes (scan/dedup, then categorize the
selected refs) instead of materializing a ``list[Trace]``.

Three implementations cover the repo's workloads:

* :class:`DirectorySource` — a directory of MOSD/JSON/Darshan-text
  traces, discovered lazily and decoded per ref; tracks bytes read and
  offers a header-only metadata peek for MOSD files;
* :class:`InMemorySource` — wraps an existing ``list[Trace]``; the
  compatibility path behind the batch ``run_pipeline(traces)`` API and
  the natural source for unit tests;
* :class:`SyntheticSource` — wraps :func:`repro.synth.generate_fleet`,
  deferring generation until first access so constructing the source is
  free.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterator, Sequence

from .errors import TraceFormatError
from .io_binary import load_binary, load_binary_meta
from .io_json import load_json
from .io_text import load_text
from .records import JobMeta
from .trace import Trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..synth.fleet import FleetConfig, FleetResult

__all__ = [
    "TraceRef",
    "TraceSource",
    "DirectorySource",
    "InMemorySource",
    "SyntheticSource",
    "TRACE_SUFFIXES",
]

#: Recognized trace file suffixes, in dispatch order.
TRACE_SUFFIXES = (".mosd", ".json", ".json.gz", ".darshan.txt")

#: Files never treated as traces even with a matching suffix.
_NON_TRACE_NAMES = frozenset({"manifest.json"})


@dataclass(slots=True, frozen=True)
class TraceRef:
    """Cheap, re-loadable handle to one trace within a source.

    ``key`` is source-specific (a path for :class:`DirectorySource`, an
    index for :class:`InMemorySource`); callers treat it as opaque and
    hand the whole ref back to :meth:`TraceSource.load`.
    """

    key: Any
    #: On-disk payload size when known, 0 otherwise.
    size_bytes: int = 0


class TraceSource(ABC):
    """Lazy corpus: enumerate refs cheaply, load traces one at a time.

    Implementations must make :meth:`refs` re-iterable (the streaming
    pipeline enumerates twice: scan pass and categorize pass) and
    deterministic, so that a ref selected in pass 1 resolves to the same
    trace in pass 2.
    """

    @abstractmethod
    def refs(self) -> Iterator[TraceRef]:
        """Enumerate the corpus without decoding any trace."""

    @abstractmethod
    def load(self, ref: TraceRef) -> Trace:
        """Decode one trace.  Raises
        :class:`~repro.darshan.errors.TraceFormatError` when the payload
        is unreadable — streaming scans count that as corruption."""

    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Trace]:
        for ref in self.refs():
            yield self.load(ref)

    def peek_meta(self, ref: TraceRef) -> JobMeta:
        """Job header of one trace, as cheaply as the format allows.

        The default decodes the full trace; formats with a separable
        header (MOSD) override this with a header-only read.
        """
        return self.load(ref).meta

    def count(self) -> int:
        """Number of refs (enumerates; O(corpus) but loads nothing)."""
        return sum(1 for _ in self.refs())

    @property
    def bytes_read(self) -> int:
        """Cumulative payload bytes decoded so far (0 when untracked)."""
        return 0


class DirectorySource(TraceSource):
    """All trace files under one directory, decoded lazily per ref.

    Files are discovered in sorted name order (deterministic across the
    two pipeline passes) and dispatched on suffix: ``.mosd`` binary,
    ``.json``/``.json.gz`` JSON, ``.darshan.txt`` text.  The directory
    listing is re-read on every :meth:`refs` call, so a source can
    outlive corpus growth; loads are counted in :attr:`bytes_read`.
    """

    def __init__(self, path: str | os.PathLike[str]):
        self.path = os.fspath(path)
        self._bytes_read = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DirectorySource({self.path!r})"

    @staticmethod
    def _is_trace_name(name: str) -> bool:
        if name in _NON_TRACE_NAMES:
            return False
        return name.endswith(TRACE_SUFFIXES)

    def refs(self) -> Iterator[TraceRef]:
        try:
            entries = sorted(
                (e for e in os.scandir(self.path) if e.is_file()),
                key=lambda e: e.name,
            )
        except OSError as exc:
            raise TraceFormatError(
                f"cannot list trace directory {self.path!r}: {exc}"
            ) from exc
        for entry in entries:
            if self._is_trace_name(entry.name):
                yield TraceRef(key=entry.path, size_bytes=entry.stat().st_size)

    def load(self, ref: TraceRef) -> Trace:
        path = str(ref.key)
        if path.endswith(".mosd"):
            trace = load_binary(path)
        elif path.endswith((".json", ".json.gz")):
            trace = load_json(path)
        elif path.endswith(".darshan.txt"):
            trace = load_text(path)
        else:
            raise TraceFormatError(f"unrecognized trace suffix: {path!r}")
        self._bytes_read += ref.size_bytes
        return trace

    def peek_meta(self, ref: TraceRef) -> JobMeta:
        path = str(ref.key)
        if path.endswith(".mosd"):
            return load_binary_meta(path)
        return super().peek_meta(ref)

    @property
    def bytes_read(self) -> int:
        return self._bytes_read


class InMemorySource(TraceSource):
    """A ``list[Trace]`` presented through the source API.

    Backs the batch-compatibility path: ``run_pipeline(traces)`` wraps
    its input in this source, so the whole pipeline has a single
    streaming implementation.  Loads are free (list indexing); refs are
    positions, keeping duplicate traces distinct.
    """

    def __init__(self, traces: Sequence[Trace]):
        self._traces = traces

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"InMemorySource(n={len(self._traces)})"

    def refs(self) -> Iterator[TraceRef]:
        for i in range(len(self._traces)):
            yield TraceRef(key=i)

    def load(self, ref: TraceRef) -> Trace:
        return self._traces[ref.key]

    def count(self) -> int:
        return len(self._traces)


class SyntheticSource(TraceSource):
    """Lazy wrapper around :func:`repro.synth.generate_fleet`.

    Generation is deferred until the first ref/load and cached, so the
    source can be constructed (and passed around, put in configs, ...)
    for free.  :attr:`fleet` exposes the underlying
    :class:`~repro.synth.fleet.FleetResult` for ground-truth consumers
    such as accuracy estimation.
    """

    def __init__(self, config: "FleetConfig | None" = None):
        self._config = config
        self._fleet: "FleetResult | None" = None
        self._inner: InMemorySource | None = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "generated" if self._fleet is not None else "pending"
        return f"SyntheticSource({state})"

    @property
    def fleet(self) -> "FleetResult":
        if self._fleet is None:
            from ..synth.fleet import generate_fleet

            self._fleet = generate_fleet(self._config)
            self._inner = InMemorySource(self._fleet.traces)
        return self._fleet

    def refs(self) -> Iterator[TraceRef]:
        self.fleet
        assert self._inner is not None
        return self._inner.refs()

    def load(self, ref: TraceRef) -> Trace:
        self.fleet
        assert self._inner is not None
        return self._inner.load(ref)

    def count(self) -> int:
        return len(self.fleet.traces)
