"""The ``Trace`` container and its NumPy views.

This is the hand-off point between the Darshan substrate and the MOSAIC
algorithms: :meth:`Trace.operations` flattens the per-file records into a
vectorized *operation array* (start, end, bytes) per direction, and
:meth:`Trace.metadata_events` produces the (time, request-count) stream
that the metadata categorizer bins into a per-second rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Literal

import numpy as np

from .records import FileRecord, JobMeta
from .tolerance import close_to

__all__ = ["Direction", "OperationArray", "Trace"]

Direction = Literal["read", "write"]

#: Minimum duration assigned to an instantaneous operation window.  Darshan
#: rounds timestamps; a record whose first and last access coincide still
#: represents real I/O and must survive interval algebra.
MIN_OP_DURATION = 1e-6


@dataclass(slots=True)
class OperationArray:
    """Columnar view of I/O operations of one direction.

    Attributes
    ----------
    starts, ends:
        Operation windows in seconds relative to job start.  Always kept
        sorted by ``starts``; ``ends >= starts`` element-wise.
    volumes:
        Bytes moved by each operation (float64 to survive merging math).
    """

    starts: np.ndarray
    ends: np.ndarray
    volumes: np.ndarray

    def __post_init__(self) -> None:
        self.starts = np.asarray(self.starts, dtype=np.float64)
        self.ends = np.asarray(self.ends, dtype=np.float64)
        self.volumes = np.asarray(self.volumes, dtype=np.float64)
        if not (len(self.starts) == len(self.ends) == len(self.volumes)):
            raise ValueError("starts/ends/volumes must have equal length")
        order = np.argsort(self.starts, kind="stable")
        self.starts = self.starts[order]
        self.ends = self.ends[order]
        self.volumes = self.volumes[order]

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.starts)

    def __iter__(self) -> Iterator[tuple[float, float, float]]:
        for s, e, v in zip(self.starts, self.ends, self.volumes):
            yield (float(s), float(e), float(v))

    @property
    def total_volume(self) -> float:
        """Total bytes moved across all operations."""
        return float(self.volumes.sum()) if len(self) else 0.0

    @property
    def durations(self) -> np.ndarray:
        return self.ends - self.starts

    @property
    def busy_time(self) -> float:
        """Sum of operation durations (overlaps counted multiply; merge
        first for wall-clock busy time)."""
        return float(self.durations.sum()) if len(self) else 0.0

    def is_empty(self) -> bool:
        return len(self) == 0

    @classmethod
    def empty(cls) -> "OperationArray":
        z = np.empty(0, dtype=np.float64)
        return cls(z.copy(), z.copy(), z.copy())

    @classmethod
    def from_tuples(
        cls, ops: Iterable[tuple[float, float, float]]
    ) -> "OperationArray":
        rows = list(ops)
        if not rows:
            return cls.empty()
        arr = np.asarray(rows, dtype=np.float64)
        return cls(arr[:, 0], arr[:, 1], arr[:, 2])

    def clipped(self, lo: float, hi: float) -> "OperationArray":
        """Clip operation windows to ``[lo, hi]``, dropping ops fully
        outside.  Volumes are scaled by the retained fraction of the
        window (uniform-rate assumption, the same one Darshan forces on
        its consumers)."""
        if self.is_empty():
            return OperationArray.empty()
        dur = np.maximum(self.ends - self.starts, MIN_OP_DURATION)
        new_s = np.clip(self.starts, lo, hi)
        new_e = np.clip(self.ends, lo, hi)
        keep = new_e > new_s
        # keep instantaneous ops (at clock resolution) inside the window
        inside = (self.starts >= lo) & (self.starts <= hi)
        keep |= inside & close_to(self.ends, self.starts)
        frac = np.where(
            self.ends > self.starts, (new_e - new_s) / dur, 1.0
        )
        return OperationArray(
            new_s[keep], new_e[keep], (self.volumes * frac)[keep]
        )


@dataclass(slots=True)
class Trace:
    """One Darshan-equivalent execution trace: job header + file records."""

    meta: JobMeta
    records: list[FileRecord] = field(default_factory=list)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    @property
    def total_bytes_read(self) -> int:
        return sum(r.bytes_read for r in self.records)

    @property
    def total_bytes_written(self) -> int:
        return sum(r.bytes_written for r in self.records)

    @property
    def total_bytes(self) -> int:
        return self.total_bytes_read + self.total_bytes_written

    @property
    def total_metadata_ops(self) -> int:
        return sum(r.metadata_ops for r in self.records)

    def io_weight(self) -> float:
        """Heaviness of the trace used by dedup's keep-heaviest rule
        (§III-B1: "MOSAIC only analyzes the heaviest, i.e. the most
        I/O-intensive, trace")."""
        return float(self.total_bytes) + float(self.total_metadata_ops)

    # ------------------------------------------------------------------
    def operations(self, direction: Direction) -> OperationArray:
        """Flatten records into the raw (unmerged) operation array.

        Each record with activity in ``direction`` contributes one
        operation spanning its first→last access timestamp with the
        record's full byte count — exactly the granularity Blue Waters
        Darshan provides (accesses aggregated between open and close).
        """
        starts: list[float] = []
        ends: list[float] = []
        vols: list[float] = []
        if direction == "read":
            for r in self.records:
                if r.has_read:
                    starts.append(r.read_start)
                    ends.append(max(r.read_end, r.read_start + MIN_OP_DURATION))
                    vols.append(float(r.bytes_read))
        elif direction == "write":
            for r in self.records:
                if r.has_write:
                    starts.append(r.write_start)
                    ends.append(max(r.write_end, r.write_start + MIN_OP_DURATION))
                    vols.append(float(r.bytes_written))
        else:  # pragma: no cover - Literal guards this
            raise ValueError(f"unknown direction: {direction!r}")
        if not starts:
            return OperationArray.empty()
        return OperationArray(
            np.asarray(starts), np.asarray(ends), np.asarray(vols)
        )

    def metadata_events(self) -> tuple[np.ndarray, np.ndarray]:
        """Reconstruct a metadata-request event stream.

        Returns ``(times, counts)`` where ``counts[i]`` requests are
        attributed to time ``times[i]`` (seconds relative to job start).

        Attribution model (documented substitution for the missing DXT
        data, following §III-B3c): OPEN and SEEK requests are co-located;
        a record with one open places opens+seeks at ``open_start`` and
        closes at ``close_end``; a record with ``n > 1`` opens spreads its
        open/seek (resp. close) requests uniformly over the record's
        metadata window, which is how a repeatedly-reopened file actually
        loads the metadata server.
        """
        times: list[float] = []
        counts: list[float] = []
        for r in self.records:
            if r.metadata_ops <= 0:
                continue
            t0 = r.open_start if r.open_start >= 0 else max(r.read_start, 0.0)
            t1 = r.close_end if r.close_end >= 0 else t0
            if t1 < t0:
                t0, t1 = t1, t0
            n_open = r.opens + r.seeks
            n_close = r.closes
            if r.opens <= 1 or t1 <= t0:
                if n_open:
                    times.append(t0)
                    counts.append(float(n_open))
                if n_close:
                    times.append(t1)
                    counts.append(float(n_close))
            else:
                k = r.opens
                grid = np.linspace(t0, t1, k, endpoint=False)
                per_open = n_open / k
                per_close = n_close / k
                span = (t1 - t0) / k
                times.extend(grid.tolist())
                counts.extend([per_open] * k)
                times.extend((grid + span * 0.9).tolist())
                counts.extend([per_close] * k)
        if not times:
            z = np.empty(0, dtype=np.float64)
            return z, z.copy()
        t = np.asarray(times, dtype=np.float64)
        c = np.asarray(counts, dtype=np.float64)
        order = np.argsort(t, kind="stable")
        return t[order], c[order]

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "job": self.meta.to_dict(),
            "records": [r.to_dict() for r in self.records],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Trace":
        return cls(
            meta=JobMeta.from_dict(d["job"]),
            records=[FileRecord.from_dict(r) for r in d.get("records", [])],
        )
