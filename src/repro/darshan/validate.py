"""Trace validity checking (workflow step ① of Fig. 1).

The paper reports that 32% of the Blue Waters 2019 traces were corrupted
and evicted before categorization, citing as an example records whose
resources are deallocated before the end of the application's execution.
This module defines the corruption taxonomy the validator detects and the
vectorization-friendly checker used by the pre-processing stage.

Every check is pure structural invariant checking — a *valid* trace may
still be I/O-insignificant; that is a categorization outcome, not a
validity failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from .records import FileRecord
from .trace import Trace

__all__ = ["Violation", "ValidationReport", "validate_trace", "is_valid"]

#: Slack (seconds) allowed past the nominal job end: Darshan flushes its
#: log during MPI_Finalize, so the last timestamps can slightly exceed the
#: scheduler-reported end time.
END_SLACK = 1.0


class Violation(str, Enum):
    """Machine-readable corruption categories."""

    NEGATIVE_RUNTIME = "negative_runtime"
    BAD_NPROCS = "bad_nprocs"
    TIMESTAMP_BEFORE_START = "timestamp_before_start"
    TIMESTAMP_AFTER_END = "timestamp_after_end"
    #: The paper's example: deallocation (close) recorded before the
    #: matching activity window finished.
    DEALLOC_BEFORE_END = "dealloc_before_end"
    INVERTED_WINDOW = "inverted_window"
    NEGATIVE_COUNTER = "negative_counter"
    BYTES_WITHOUT_WINDOW = "bytes_without_window"
    OPENS_WITHOUT_CLOSE_WINDOW = "opens_without_close_window"
    #: The trace file could not be decoded at all (bad magic, truncation,
    #: malformed JSON).  Only streaming scans over on-disk sources report
    #: this class: an in-memory ``Trace`` has by definition been decoded.
    UNREADABLE = "unreadable"
    #: The trace decoded but exceeded the per-trace resource budget so
    #: far that no categorization axis could run (the FLAGGED rung of
    #: the degradation ladder — see :mod:`repro.core.governor`).  Unlike
    #: the other classes this is not corruption: the trace is valid,
    #: merely ungovernably large for the configured budget.
    RESOURCE_BUDGET = "resource_budget"


@dataclass(slots=True)
class ValidationReport:
    """Outcome of validating a single trace."""

    valid: bool
    violations: list[tuple[Violation, str]] = field(default_factory=list)

    def reasons(self) -> list[str]:
        return [f"{v.value}: {detail}" for v, detail in self.violations]

    def categories(self) -> set[Violation]:
        return {v for v, _ in self.violations}


def _check_record(rec: FileRecord, run_time: float, out: list[tuple[Violation, str]]) -> None:
    hi = run_time + END_SLACK
    name = f"record file_id={rec.file_id} rank={rec.rank}"

    for label, value in (
        ("opens", rec.opens),
        ("closes", rec.closes),
        ("seeks", rec.seeks),
        ("stats", rec.stats),
        ("reads", rec.reads),
        ("writes", rec.writes),
        ("bytes_read", rec.bytes_read),
        ("bytes_written", rec.bytes_written),
    ):
        if value < 0:
            out.append((Violation.NEGATIVE_COUNTER, f"{name}: {label}={value}"))

    windows = (
        ("read", rec.read_start, rec.read_end, rec.bytes_read),
        ("write", rec.write_start, rec.write_end, rec.bytes_written),
    )
    for label, lo_ts, hi_ts, nbytes in windows:
        present = lo_ts >= 0.0 or hi_ts >= 0.0
        if nbytes > 0 and not present:
            out.append(
                (Violation.BYTES_WITHOUT_WINDOW, f"{name}: {nbytes} {label} bytes, no window")
            )
            continue
        if not present:
            continue
        if lo_ts < 0.0 or hi_ts < 0.0:
            out.append((Violation.TIMESTAMP_BEFORE_START, f"{name}: half-open {label} window"))
            continue
        if hi_ts < lo_ts:
            out.append(
                (Violation.INVERTED_WINDOW, f"{name}: {label} window [{lo_ts}, {hi_ts}]")
            )
        if lo_ts > hi or hi_ts > hi:
            out.append(
                (Violation.TIMESTAMP_AFTER_END, f"{name}: {label} window beyond runtime {run_time}")
            )

    # metadata window
    if rec.open_start >= 0.0 or rec.close_end >= 0.0:
        if rec.open_start >= 0.0 and rec.close_end >= 0.0:
            if rec.close_end < rec.open_start:
                out.append(
                    (Violation.INVERTED_WINDOW, f"{name}: close {rec.close_end} < open {rec.open_start}")
                )
            # the paper's flagship corruption: the file was deallocated
            # (closed) while its recorded data window still extends past it
            last_activity = max(rec.read_end, rec.write_end)
            if last_activity >= 0.0 and rec.close_end + 1e-9 < last_activity:
                out.append(
                    (
                        Violation.DEALLOC_BEFORE_END,
                        f"{name}: closed at {rec.close_end} before activity end {last_activity}",
                    )
                )
        if max(rec.open_start, rec.close_end) > hi:
            out.append(
                (Violation.TIMESTAMP_AFTER_END, f"{name}: metadata window beyond runtime")
            )
    elif rec.opens > 0:
        out.append(
            (Violation.OPENS_WITHOUT_CLOSE_WINDOW, f"{name}: {rec.opens} opens, no open/close timestamps")
        )


def validate_trace(trace: Trace) -> ValidationReport:
    """Check every structural invariant of ``trace``.

    Returns a report carrying all violations found (not just the first),
    so the funnel analysis can histogram corruption causes.
    """
    violations: list[tuple[Violation, str]] = []

    run_time = trace.meta.run_time
    if run_time <= 0.0:
        violations.append(
            (Violation.NEGATIVE_RUNTIME, f"run_time={run_time}")
        )
    if trace.meta.nprocs <= 0:
        violations.append((Violation.BAD_NPROCS, f"nprocs={trace.meta.nprocs}"))

    if run_time > 0.0:
        for rec in trace.records:
            _check_record(rec, run_time, violations)

    return ValidationReport(valid=not violations, violations=violations)


def is_valid(trace: Trace) -> bool:
    """Fast boolean form of :func:`validate_trace`."""
    return validate_trace(trace).valid
