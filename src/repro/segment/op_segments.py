"""Operation segmentation (paper §III-B3a, workflow step ③a).

After fusion, the trace is cut into *segments*: "a segment starts at the
beginning of an I/O operation and ends at the beginning of the next one".
The last operation's segment is closed by the end of the execution, so a
final checkpoint still yields a full-length segment.

For each segment MOSAIC computes the features the clustering stage
groups on: segment duration (≈ candidate period), data volume of the
operation opening the segment, and the activity rate (share of the
segment during which the operation was actually moving data) — the rate
is what separates ``periodic_low_busy_time`` from
``periodic_high_busy_time``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..darshan.tolerance import TIME_TOLERANCE_S
from ..darshan.trace import OperationArray
from ..kernels import get_backend

__all__ = ["SegmentSet", "segment_operations"]


@dataclass(slots=True, frozen=True)
class SegmentSet:
    """Columnar set of segments extracted from one operation stream."""

    #: Segment start times (operation starts), seconds.
    starts: np.ndarray
    #: Segment durations: distance to the next operation start (last:
    #: distance to end of execution), seconds.
    durations: np.ndarray
    #: Bytes moved by the operation opening each segment.
    volumes: np.ndarray
    #: Seconds the opening operation was active.
    busy: np.ndarray

    def __len__(self) -> int:
        return len(self.starts)

    @property
    def activity_rates(self) -> np.ndarray:
        """Fraction of each segment spent doing I/O (clipped to [0, 1];
        an operation can outlive its segment when the next operation
        starts before it ends — fusion makes that rare but segments that
        are instantaneous *at clock resolution*, not just exactly
        zero-length, must not divide by zero)."""
        with np.errstate(divide="ignore", invalid="ignore"):
            rate = np.where(
                self.durations > TIME_TOLERANCE_S,
                self.busy / self.durations,
                1.0,
            )
        return np.clip(rate, 0.0, 1.0)

    def features(self) -> np.ndarray:
        """(n, 2) feature matrix ``[duration, volume]`` for clustering."""
        return np.column_stack([self.durations, self.volumes])

    def is_empty(self) -> bool:
        return len(self) == 0

    @classmethod
    def empty(cls) -> "SegmentSet":
        z = np.empty(0, dtype=np.float64)
        return cls(z, z.copy(), z.copy(), z.copy())


def segment_operations(
    ops: OperationArray, run_time: float, *, backend: str | None = None
) -> SegmentSet:
    """Cut an operation stream into segments.

    ``ops`` must be the *merged* stream (disjoint, sorted); raw per-rank
    operations would produce meaningless near-zero segments — this
    ordering requirement is exactly why fusion precedes segmentation in
    the workflow.  The final segment is closed at the end of execution
    (but never before the last operation itself finished).  ``backend``
    selects the segmentation kernel (``None`` = vectorized default).
    """
    if len(ops) == 0:
        return SegmentSet.empty()
    starts, durations, volumes, busy = get_backend(backend).segment(
        ops.starts, ops.ends, ops.volumes, run_time
    )
    return SegmentSet(
        starts=starts, durations=durations, volumes=volumes, busy=busy
    )
