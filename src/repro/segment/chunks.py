"""Temporal chunking (paper §III-B3b, workflow step ③b).

For temporality, MOSAIC splits the execution into four equal chunks of
25% of the runtime each and sums the bytes handled inside each chunk.
Operations spanning a chunk boundary contribute pro-rata to each side
under a uniform-rate assumption — the only assumption available once
Darshan has flattened the operations to a single window.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..darshan.trace import OperationArray

__all__ = ["ChunkProfile", "chunk_volumes", "N_CHUNKS"]

#: The paper's chunk count: quarters of the execution.
N_CHUNKS = 4


@dataclass(slots=True, frozen=True)
class ChunkProfile:
    """Byte volume per temporal chunk of one direction of one trace."""

    #: Per-chunk byte sums, length ``n_chunks``.
    volumes: np.ndarray
    #: Chunk boundaries, length ``n_chunks + 1`` (seconds).
    edges: np.ndarray

    @property
    def n_chunks(self) -> int:
        return len(self.volumes)

    @property
    def total(self) -> float:
        return float(self.volumes.sum())

    def coefficient_of_variation(self) -> float:
        """CV = std/mean of the chunk sums; 0 for an all-zero profile.

        MOSAIC labels a trace *steady* when the CV is below 25%."""
        mean = float(self.volumes.mean()) if self.n_chunks else 0.0
        if mean <= 0:
            return 0.0
        return float(self.volumes.std()) / mean

    def normalized(self) -> np.ndarray:
        """Chunk shares summing to 1 (zeros if no volume)."""
        tot = self.total
        if tot <= 0:
            return np.zeros_like(self.volumes)
        return self.volumes / tot


def chunk_volumes(
    ops: OperationArray, run_time: float, n_chunks: int = N_CHUNKS
) -> ChunkProfile:
    """Sum operation volumes into ``n_chunks`` equal temporal chunks.

    Fully vectorized: each operation's window is intersected with every
    chunk via broadcasting; the overlap fraction of the operation's
    duration allocates its volume.
    """
    if n_chunks < 1:
        raise ValueError("n_chunks must be >= 1")
    if run_time <= 0:
        raise ValueError("run_time must be positive")
    edges = np.linspace(0.0, run_time, n_chunks + 1)
    if len(ops) == 0:
        return ChunkProfile(volumes=np.zeros(n_chunks), edges=edges)

    starts = np.clip(ops.starts, 0.0, run_time)
    ends = np.clip(ops.ends, 0.0, run_time)
    durations = np.maximum(ends - starts, 0.0)

    # overlap[i, j] = seconds of op i inside chunk j
    lo = np.maximum(starts[:, None], edges[None, :-1])
    hi = np.minimum(ends[:, None], edges[None, 1:])
    overlap = np.clip(hi - lo, 0.0, None)

    # Zero- and denormal-duration ops (timestamp-rounded bursts) drop
    # their full volume into the chunk containing their start; dividing
    # by such durations would lose volume to rounding.
    zero = durations < np.finfo(np.float64).tiny
    safe = np.where(zero, 1.0, durations)
    frac = np.where(zero[:, None], 0.0, overlap / safe[:, None])
    volumes = frac.T @ ops.volumes

    if np.any(zero):
        idx = np.minimum(
            (starts[zero] / run_time * n_chunks).astype(np.int64), n_chunks - 1
        )
        np.add.at(volumes, idx, ops.volumes[zero])

    return ChunkProfile(volumes=volumes, edges=edges)
