"""Trace segmentation: per-operation segments for periodicity detection
and equal temporal chunks for temporality (workflow step ③)."""

from .op_segments import SegmentSet, segment_operations
from .chunks import ChunkProfile, N_CHUNKS, chunk_volumes

__all__ = [
    "SegmentSet",
    "segment_operations",
    "ChunkProfile",
    "N_CHUNKS",
    "chunk_volumes",
]
