"""Corruption injection.

32% of the Blue Waters 2019 traces were corrupted and evicted by
MOSAIC's validity check (Fig. 3); the paper's example cause is a
deallocation recorded before the end of the execution.  This module
mutates valid traces into corrupted ones covering the whole
:class:`~repro.darshan.validate.Violation` taxonomy, so the funnel
experiment exercises every eviction path.
"""

from __future__ import annotations

import copy
from typing import Callable

import numpy as np

from ..darshan.records import FileRecord
from ..darshan.trace import Trace

__all__ = ["corrupt_trace", "CORRUPTION_KINDS"]


def _pick_record(trace: Trace, rng: np.random.Generator) -> FileRecord | None:
    if not trace.records:
        return None
    return trace.records[int(rng.integers(0, len(trace.records)))]


def _dealloc_before_end(trace: Trace, rng: np.random.Generator) -> bool:
    """The paper's flagship case: close the file before its activity ends."""
    for rec in trace.records:
        last = max(rec.read_end, rec.write_end)
        if last > 0 and rec.close_end >= last:
            rec.close_end = last * float(rng.uniform(0.2, 0.8))
            rec.open_start = min(rec.open_start, rec.close_end)
            if rec.open_start < 0:
                rec.open_start = 0.0
            return True
    return False


def _negative_runtime(trace: Trace, rng: np.random.Generator) -> bool:
    trace.meta.end_time = trace.meta.start_time - float(rng.uniform(1.0, 100.0))
    return True


def _inverted_window(trace: Trace, rng: np.random.Generator) -> bool:
    rec = _pick_record(trace, rng)
    if rec is None:
        return False
    if rec.read_start >= 0:
        rec.read_start, rec.read_end = rec.read_end + 1.0, rec.read_start
        return True
    if rec.write_start >= 0:
        rec.write_start, rec.write_end = rec.write_end + 1.0, rec.write_start
        return True
    rec.open_start, rec.close_end = rec.close_end + 1.0, max(rec.open_start, 0.0)
    return True


def _negative_counter(trace: Trace, rng: np.random.Generator) -> bool:
    rec = _pick_record(trace, rng)
    if rec is None:
        return False
    rec.bytes_written = -abs(rec.bytes_written) - 1
    return True


def _timestamp_after_end(trace: Trace, rng: np.random.Generator) -> bool:
    rec = _pick_record(trace, rng)
    if rec is None:
        return False
    overshoot = trace.meta.run_time * float(rng.uniform(1.5, 3.0))
    if rec.write_start >= 0:
        rec.write_end = overshoot
        rec.close_end = max(rec.close_end, overshoot)
    elif rec.read_start >= 0:
        rec.read_end = overshoot
        rec.close_end = max(rec.close_end, overshoot)
    else:
        rec.close_end = overshoot
    return True


def _bytes_without_window(trace: Trace, rng: np.random.Generator) -> bool:
    rec = _pick_record(trace, rng)
    if rec is None:
        return False
    rec.bytes_written = max(rec.bytes_written, 1)
    rec.write_start = -1.0
    rec.write_end = -1.0
    return True


CORRUPTION_KINDS: dict[str, Callable[[Trace, np.random.Generator], bool]] = {
    "dealloc_before_end": _dealloc_before_end,
    "negative_runtime": _negative_runtime,
    "inverted_window": _inverted_window,
    "negative_counter": _negative_counter,
    "timestamp_after_end": _timestamp_after_end,
    "bytes_without_window": _bytes_without_window,
}


def corrupt_trace(
    trace: Trace, rng: np.random.Generator, kind: str | None = None
) -> Trace:
    """Return a corrupted deep copy of ``trace``.

    ``kind`` selects a specific corruption; ``None`` picks one at random,
    weighted toward the paper's dealloc-before-end example.  Falls back
    to ``negative_runtime`` (always applicable) if the chosen mutation
    does not apply to this trace.
    """
    mutated = copy.deepcopy(trace)
    if kind is None:
        names = list(CORRUPTION_KINDS)
        weights = np.array(
            [3.0 if n == "dealloc_before_end" else 1.0 for n in names]
        )
        kind = str(rng.choice(names, p=weights / weights.sum()))
    if kind not in CORRUPTION_KINDS:
        raise ValueError(f"unknown corruption kind: {kind!r}")
    if not CORRUPTION_KINDS[kind](mutated, rng):
        _negative_runtime(mutated, rng)
    return mutated
