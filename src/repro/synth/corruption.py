"""Corruption injection.

32% of the Blue Waters 2019 traces were corrupted and evicted by
MOSAIC's validity check (Fig. 3); the paper's example cause is a
deallocation recorded before the end of the execution.  This module
mutates valid traces into corrupted ones covering the whole
:class:`~repro.darshan.validate.Violation` taxonomy, so the funnel
experiment exercises every eviction path.

Beyond the paper's semantic corruption, two *adversarial* tiers feed
the robustness experiments (docs/ROBUSTNESS.md):

* :func:`adversarial_payload` damages **serialized bytes** the way a
  hostile or half-written file would — lying binary length fields, JSON
  depth bombs, truncations, bit rot.  These must land in the funnel as
  :attr:`~repro.darshan.validate.Violation.UNREADABLE`, never crash a
  reader.
* :func:`flood_trace` produces a **valid but oversized** trace (the
  record count multiplied, per-record volume split so totals and
  category-relevant behaviour are preserved).  Floods are *not* part of
  the random corruption pick — they are valid traces with ground truth,
  generated via :attr:`~repro.synth.fleet.FleetConfig.flood_fraction`
  so fleet runs exercise the resource governor with known labels.
"""

from __future__ import annotations

import copy
import struct
from typing import Callable

import numpy as np

from ..darshan.records import FileRecord
from ..darshan.trace import Trace

__all__ = [
    "corrupt_trace",
    "CORRUPTION_KINDS",
    "adversarial_payload",
    "ADVERSARIAL_KINDS",
    "flood_trace",
]


def _pick_record(trace: Trace, rng: np.random.Generator) -> FileRecord | None:
    if not trace.records:
        return None
    return trace.records[int(rng.integers(0, len(trace.records)))]


def _dealloc_before_end(trace: Trace, rng: np.random.Generator) -> bool:
    """The paper's flagship case: close the file before its activity ends."""
    for rec in trace.records:
        last = max(rec.read_end, rec.write_end)
        if last > 0 and rec.close_end >= last:
            rec.close_end = last * float(rng.uniform(0.2, 0.8))
            rec.open_start = min(rec.open_start, rec.close_end)
            if rec.open_start < 0:
                rec.open_start = 0.0
            return True
    return False


def _negative_runtime(trace: Trace, rng: np.random.Generator) -> bool:
    trace.meta.end_time = trace.meta.start_time - float(rng.uniform(1.0, 100.0))
    return True


def _inverted_window(trace: Trace, rng: np.random.Generator) -> bool:
    rec = _pick_record(trace, rng)
    if rec is None:
        return False
    if rec.read_start >= 0:
        rec.read_start, rec.read_end = rec.read_end + 1.0, rec.read_start
        return True
    if rec.write_start >= 0:
        rec.write_start, rec.write_end = rec.write_end + 1.0, rec.write_start
        return True
    rec.open_start, rec.close_end = rec.close_end + 1.0, max(rec.open_start, 0.0)
    return True


def _negative_counter(trace: Trace, rng: np.random.Generator) -> bool:
    rec = _pick_record(trace, rng)
    if rec is None:
        return False
    rec.bytes_written = -abs(rec.bytes_written) - 1
    return True


def _timestamp_after_end(trace: Trace, rng: np.random.Generator) -> bool:
    rec = _pick_record(trace, rng)
    if rec is None:
        return False
    overshoot = trace.meta.run_time * float(rng.uniform(1.5, 3.0))
    if rec.write_start >= 0:
        rec.write_end = overshoot
        rec.close_end = max(rec.close_end, overshoot)
    elif rec.read_start >= 0:
        rec.read_end = overshoot
        rec.close_end = max(rec.close_end, overshoot)
    else:
        rec.close_end = overshoot
    return True


def _bytes_without_window(trace: Trace, rng: np.random.Generator) -> bool:
    rec = _pick_record(trace, rng)
    if rec is None:
        return False
    rec.bytes_written = max(rec.bytes_written, 1)
    rec.write_start = -1.0
    rec.write_end = -1.0
    return True


CORRUPTION_KINDS: dict[str, Callable[[Trace, np.random.Generator], bool]] = {
    "dealloc_before_end": _dealloc_before_end,
    "negative_runtime": _negative_runtime,
    "inverted_window": _inverted_window,
    "negative_counter": _negative_counter,
    "timestamp_after_end": _timestamp_after_end,
    "bytes_without_window": _bytes_without_window,
}


def corrupt_trace(
    trace: Trace, rng: np.random.Generator, kind: str | None = None
) -> Trace:
    """Return a corrupted deep copy of ``trace``.

    ``kind`` selects a specific corruption; ``None`` picks one at random,
    weighted toward the paper's dealloc-before-end example.  Falls back
    to ``negative_runtime`` (always applicable) if the chosen mutation
    does not apply to this trace.
    """
    mutated = copy.deepcopy(trace)
    if kind is None:
        names = list(CORRUPTION_KINDS)
        weights = np.array(
            [3.0 if n == "dealloc_before_end" else 1.0 for n in names]
        )
        kind = str(rng.choice(names, p=weights / weights.sum()))
    if kind not in CORRUPTION_KINDS:
        raise ValueError(f"unknown corruption kind: {kind!r}")
    if not CORRUPTION_KINDS[kind](mutated, rng):
        _negative_runtime(mutated, rng)
    return mutated


# ----------------------------------------------------------------------
# adversarial payload damage (serialized bytes, not Trace objects)


def _payload_truncate(payload: bytes, rng: np.random.Generator) -> bytes:
    if len(payload) < 2:
        return b""
    return payload[: int(rng.integers(1, len(payload)))]


def _payload_bit_rot(payload: bytes, rng: np.random.Generator) -> bytes:
    buf = bytearray(payload)
    for _ in range(max(1, len(buf) // 256)):
        i = int(rng.integers(0, len(buf)))
        buf[i] ^= 1 << int(rng.integers(0, 8))
    return bytes(buf)


def _payload_length_lie(payload: bytes, rng: np.random.Generator) -> bytes:
    """Inflate the record-count/string-table header of a MOSD payload
    (the allocation bomb); non-binary payloads get their leading bytes
    splattered instead."""
    from ..darshan.io_binary import _COUNTS, _HEADER, _JOB, MAGIC

    if payload[:4] == MAGIC and len(payload) >= _HEADER.size + _JOB.size:
        str_lens_off = _HEADER.size + struct.calcsize("<qqqdd")
        n_exe, n_mach, n_part = struct.unpack_from("<HHH", payload, str_lens_off)
        off = _HEADER.size + _JOB.size + n_exe + n_mach + n_part
        if len(payload) >= off + _COUNTS.size:
            buf = bytearray(payload)
            buf[off : off + _COUNTS.size] = _COUNTS.pack(
                int(rng.integers(10_000_000, 0xFFFFFFFF)),
                int(rng.integers(2**28, 0xFFFFFFFF)),
            )
            return bytes(buf)
    return _payload_bit_rot(payload, rng)


def _payload_depth_bomb(payload: bytes, rng: np.random.Generator) -> bytes:
    """Wrap the document in thousands of JSON arrays."""
    k = int(rng.integers(1_000, 100_000))
    return b"[" * k + payload + b"]" * k


#: name → serialized-payload mutator.
ADVERSARIAL_KINDS: dict[
    str, Callable[[bytes, np.random.Generator], bytes]
] = {
    "truncate": _payload_truncate,
    "bit_rot": _payload_bit_rot,
    "length_lie": _payload_length_lie,
    "depth_bomb": _payload_depth_bomb,
}


def adversarial_payload(
    payload: bytes, rng: np.random.Generator, kind: str | None = None
) -> bytes:
    """Damage a serialized trace the way hostile bytes would.

    The result must decode to nothing: every reader either raises
    :class:`~repro.darshan.errors.TraceFormatError` or (for bit rot
    that happens to stay well-formed) a semantically corrupt trace the
    validity stage evicts.  ``kind`` picks one of
    :data:`ADVERSARIAL_KINDS`; ``None`` draws uniformly.
    """
    if kind is None:
        names = list(ADVERSARIAL_KINDS)
        kind = str(rng.choice(names))
    if kind not in ADVERSARIAL_KINDS:
        raise ValueError(f"unknown adversarial kind: {kind!r}")
    return ADVERSARIAL_KINDS[kind](payload, rng)


# ----------------------------------------------------------------------
# op floods: valid but oversized


def flood_trace(
    trace: Trace, rng: np.random.Generator, factor: int = 32
) -> Trace:
    """Return a *valid* copy of ``trace`` with ``factor``× the records.

    Each record is split into ``factor`` clones covering the same
    activity windows, the byte counters divided among them (remainder on
    the first clone), so total volume, window extents, and therefore
    every MOSAIC category of the trace are preserved — only the
    operation count explodes.  This is the governed-degradation test
    vehicle: a flooded trace keeps its ground-truth labels while
    tripping any reasonable per-trace operation budget.
    """
    if factor < 2:
        raise ValueError("flood factor must be >= 2")
    flooded = copy.deepcopy(trace)
    new_records: list[FileRecord] = []
    next_id = max((r.file_id for r in flooded.records), default=0) + 1
    for rec in flooded.records:
        for k in range(factor):
            clone = copy.copy(rec)
            if k > 0:
                clone.file_id = next_id
                next_id += 1
            for attr in ("bytes_read", "bytes_written", "reads", "writes",
                         "opens", "closes", "seeks", "stats"):
                total = getattr(rec, attr)
                share = total // factor
                if k == 0:
                    share += total - share * factor
                setattr(clone, attr, share)
            new_records.append(clone)
    flooded.records = new_records
    return flooded
