"""Synthetic Blue Waters corpus generator: application archetypes with
ground truth, a calibrated population profile, heavy-tailed run counts,
and corruption injection — the repo's substitute for the paper's 2019
Darshan dataset."""

from .appmodel import AppSpec, generate_run
from .cohorts import BLUE_WATERS_2019, CohortSpec, cohort_by_name
from .corruption import (
    ADVERSARIAL_KINDS,
    CORRUPTION_KINDS,
    adversarial_payload,
    corrupt_trace,
    flood_trace,
)
from .fleet import FleetConfig, FleetResult, apportion, generate_fleet
from .groundtruth import GroundTruth, mismatch_axes, trace_matches
from .phases import (
    BurstPhase,
    KeptOpenPhase,
    MetadataBurstPhase,
    MetadataLoadPhase,
    PeriodicPhase,
    PhaseContext,
)

__all__ = [
    "AppSpec",
    "generate_run",
    "BLUE_WATERS_2019",
    "CohortSpec",
    "cohort_by_name",
    "ADVERSARIAL_KINDS",
    "CORRUPTION_KINDS",
    "adversarial_payload",
    "corrupt_trace",
    "flood_trace",
    "FleetConfig",
    "FleetResult",
    "apportion",
    "generate_fleet",
    "GroundTruth",
    "mismatch_axes",
    "trace_matches",
    "BurstPhase",
    "KeptOpenPhase",
    "MetadataBurstPhase",
    "MetadataLoadPhase",
    "PeriodicPhase",
    "PhaseContext",
]
