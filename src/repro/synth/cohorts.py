"""Calibrated cohort mix reproducing the Blue Waters 2019 population.

Every cohort fixes a joint (read temporality, write temporality,
periodicity, metadata) behaviour plus an *app share* (fraction of unique
applications) and a *run share* (fraction of valid executions).  The
shares are solved so the corpus marginals match the paper:

* Table III single-run / all-runs temporality distributions
  (read 85/9/2/4 vs 27/38/30/5; write 87/8/3/2 vs 47/14/37/2),
* Table II periodic writes (2% of applications, 8% of executions),
* Fig. 4 all-runs metadata shares (high_spike ≈60%, multiple_spikes
  ≈45.9%, high_density ≈13%),
* §IV-D correlations (95% of read-insignificant apps are also
  write-insignificant; 66% of read-on-start apps write on end; ≈96% of
  periodic writers below 25% busy time),
* §IV-A's observation that most ``write_steady`` traffic is hidden
  periodic behaviour flattened by Darshan's kept-open aggregation.

The tests in ``tests/synth/test_cohort_calibration.py`` assert the share
arithmetic; the benchmark harness measures the resulting corpus against
the paper's numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..core.categories import Category
from .appmodel import AppSpec
from .groundtruth import GroundTruth
from .phases import (
    BurstPhase,
    KeptOpenPhase,
    MetadataBurstPhase,
    MetadataLoadPhase,
    PeriodicPhase,
    Phase,
)

__all__ = ["CohortSpec", "BLUE_WATERS_2019", "cohort_by_name"]

GB = 1024.0**3
MB = 1024.0**2

META_INSIG = frozenset({Category.METADATA_INSIGNIFICANT_LOAD})
META_NONE: frozenset[Category] = frozenset()
META_SPIKE = frozenset({Category.METADATA_HIGH_SPIKE})
META_BURSTY = frozenset(
    {Category.METADATA_HIGH_SPIKE, Category.METADATA_MULTIPLE_SPIKES}
)
META_DENSE = frozenset(
    {
        Category.METADATA_HIGH_SPIKE,
        Category.METADATA_MULTIPLE_SPIKES,
        Category.METADATA_HIGH_DENSITY,
    }
)


@dataclass(slots=True, frozen=True)
class CohortSpec:
    """One population cohort of the calibrated fleet."""

    name: str
    #: Fraction of unique applications (percent).
    app_share: float
    #: Fraction of valid executions (percent).
    run_share: float
    build: Callable[[int, np.random.Generator], AppSpec]

    @property
    def mean_runs_factor(self) -> float:
        """Run-count multiplier relative to the corpus mean."""
        return self.run_share / self.app_share if self.app_share else 0.0


# ---------------------------------------------------------------------------
# phase builders


def _sig_volume(rng: np.random.Generator) -> float:
    """Significant direction volume: 0.5–30 GB, log-uniform."""
    return float(np.exp(rng.uniform(np.log(0.5 * GB), np.log(30 * GB))))


def _insig_volume(rng: np.random.Generator) -> float:
    """Insignificant direction volume: 1–60 MB, log-uniform.

    The per-run log-normal volume multiplier (sigma 0.2) stays well below
    the 100 MB threshold.
    """
    return float(np.exp(rng.uniform(np.log(1 * MB), np.log(60 * MB))))


def _burst(
    direction: str,
    position: float,
    volume: float,
    rng: np.random.Generator,
    n_ranks: int = 8,
) -> BurstPhase:
    return BurstPhase(
        direction=direction,
        position=position,
        volume=volume,
        duration=float(rng.uniform(10.0, 50.0)),
        n_ranks=n_ranks,
        desync=float(rng.uniform(0.5, 8.0)),
    )


def _meta_storm_start(rng: np.random.Generator) -> list[Phase]:
    """One >250 req/s spike near start (high_spike only)."""
    return [
        MetadataBurstPhase(
            position=0.02,
            n_requests=int(rng.integers(700, 1400)),
            duration=1.5,
        )
    ]


def _meta_bursty(rng: np.random.Generator) -> list[Phase]:
    """≥5 spikes of ≥50 req/s plus one >250 peak, low average."""
    phases: list[Phase] = [
        MetadataBurstPhase(
            position=float(p), n_requests=int(rng.integers(140, 240)), duration=1.0
        )
        for p in np.linspace(0.1, 0.85, 6)
    ]
    phases.append(
        MetadataBurstPhase(
            position=0.95, n_requests=int(rng.integers(650, 1100)), duration=1.0
        )
    )
    return phases


def _meta_dense(rng: np.random.Generator) -> list[Phase]:
    """Sustained ≥50 req/s average plus a >250 peak."""
    return [
        MetadataLoadPhase(rate=float(rng.uniform(60.0, 90.0)), start=0.0, end=1.0),
        MetadataBurstPhase(
            position=0.5, n_requests=int(rng.integers(650, 1100)), duration=1.0
        ),
    ]


def _ckpt_minute_period(rng: np.random.Generator) -> float:
    """Minute-magnitude period, clear of the 60 s and 3600 s label
    boundaries so ground-truth magnitudes are unambiguous."""
    return float(rng.uniform(300.0, 1500.0))


def _ckpt_hour_period(rng: np.random.Generator) -> float:
    return float(rng.uniform(4500.0, 9000.0))


def _periodic_write(
    rng: np.random.Generator,
    period: float,
    busy_fraction: float = 0.06,
) -> PeriodicPhase:
    total_vol = _sig_volume(rng)
    n_events_nominal = 12
    return PeriodicPhase(
        direction="write",
        period=period,
        event_volume=max(total_vol / n_events_nominal, 60 * MB),
        event_duration=max(busy_fraction * period, 5.0),
        start=0.02,
        end=0.98,
        n_ranks=4,
        desync=float(rng.uniform(0.5, 4.0)),
    )


def _runtime_for_period(period: float) -> tuple[float, float]:
    """Runtime range guaranteeing enough checkpoint cycles.

    At least ~15 events are needed both for a stable Mean Shift group and
    for the chunk profile of a periodic writer to flatten into
    ``write_steady`` (with fewer events the four quarters hold visibly
    different event counts and the CV rule rejects steadiness).
    """
    lo = 16.0 * period
    hi = min(40.0 * period, 1.6 * 86400.0)
    return lo, max(hi, lo * 1.5)


# ---------------------------------------------------------------------------
# cohort builders


def _spec(
    name: str,
    cohort: str,
    uid: int,
    phases: list[Phase],
    truth: GroundTruth,
    *,
    nprocs: int = 64,
    runtime: tuple[float, float] = (1800.0, 21600.0),
) -> AppSpec:
    return AppSpec(
        name=name,
        cohort=cohort,
        uid=uid,
        exe=f"{name}.exe",
        nprocs=nprocs,
        runtime_lo=runtime[0],
        runtime_hi=runtime[1],
        phases=tuple(phases),
        truth=truth,
    )


def _build_silent(uid: int, rng: np.random.Generator) -> AppSpec:
    """Applications below the 100 MB significance threshold.

    A slice of them sits *near* the threshold (60–95 MB nominal): the
    ground truth is insignificant, but the per-run log-normal volume
    jitter can push the heaviest run — the one MOSAIC keeps — over
    100 MB.  These are the threshold cases the paper concedes the fixed
    cutoff "does not cover" (§III-A) and one of the reasons accuracy is
    92% rather than 100%.
    """
    near_threshold = rng.random() < 0.18
    if near_threshold:
        # biased toward writes: write-side crossers do not dilute the
        # read-on-start population that SIV-D's 66% correlation sits on
        direction = "read" if rng.random() < 0.3 else "write"
        vol = float(np.exp(rng.uniform(np.log(58 * MB), np.log(90 * MB))))
        other = "write" if direction == "read" else "read"
        phases: list[Phase] = [
            _burst(direction, float(rng.uniform(0.02, 0.08)), vol, rng, n_ranks=4),
            _burst(other, float(rng.uniform(0.05, 0.9)), _insig_volume(rng), rng, n_ranks=4),
        ]
        tags = ("silent", "near_threshold")
    else:
        phases = [
            _burst("read", float(rng.uniform(0.05, 0.9)), _insig_volume(rng), rng, n_ranks=4),
            _burst("write", float(rng.uniform(0.05, 0.9)), _insig_volume(rng), rng, n_ranks=4),
        ]
        tags = ("silent",)
    truth = GroundTruth(
        read_temporality=Category.READ_INSIGNIFICANT,
        write_temporality=Category.WRITE_INSIGNIFICANT,
        metadata=META_INSIG,
        tags=tags,
    )
    return _spec(f"silent-{uid}", "silent", uid, phases, truth, nprocs=128)


_BOUNDARY_READ = {
    0: Category.READ_ON_START,
    1: Category.READ_AFTER_START,
    2: Category.READ_BEFORE_END,
    3: Category.READ_ON_END,
}
_BOUNDARY_WRITE = {
    0: Category.WRITE_ON_START,
    1: Category.WRITE_AFTER_START,
    2: Category.WRITE_BEFORE_END,
    3: Category.WRITE_ON_END,
}


def _boundary_pair(
    direction: str, boundary: float, rng: np.random.Generator
) -> tuple[list[Phase], Category]:
    """Two bursts straddling a chunk boundary — the paper's main error
    source ("an operation unequally spread across multiple chunks").

    Ground truth follows the centre of mass of the bytes, the criterion a
    manual validator applies; MOSAIC's weak-evidence fallback follows the
    single largest chunk.  The two disagree whenever the bigger burst and
    the byte centre of mass sit on opposite sides of the boundary.
    """
    vol = _sig_volume(rng)
    share = float(rng.uniform(0.35, 0.65))
    d_left = float(rng.uniform(0.03, 0.12))
    d_right = float(rng.uniform(0.03, 0.12))
    phases: list[Phase] = [
        _burst(direction, boundary - d_left, vol * share, rng),
        _burst(direction, boundary + d_right, vol * (1.0 - share), rng),
    ]
    com = boundary - share * d_left + (1.0 - share) * d_right
    chunk = min(int(com * 4), 3)
    table = _BOUNDARY_READ if direction == "read" else _BOUNDARY_WRITE
    return phases, table[chunk]


def _build_rcw(uid: int, rng: np.random.Generator) -> AppSpec:
    """Read–compute–write: the dominant significant pattern (§IV-D).

    80% read in one clean startup burst; 20% stage their input reads
    around the first chunk boundary, the unequally-spread case behind
    most of the paper's misclassifications.
    """
    if rng.random() < 0.85:
        read_phases: list[Phase] = [
            _burst("read", float(rng.uniform(0.02, 0.10)), _sig_volume(rng), rng, n_ranks=8)
        ]
        read_truth = Category.READ_ON_START
    else:
        read_phases, read_truth = _boundary_pair("read", 0.25, rng)
    phases: list[Phase] = read_phases + [
        _burst("write", float(rng.uniform(0.93, 0.98)), _sig_volume(rng), rng, n_ranks=8),
    ]
    phases += _meta_bursty(rng)
    truth = GroundTruth(
        read_temporality=read_truth,
        write_temporality=Category.WRITE_ON_END,
        metadata=META_BURSTY,
        tags=("rcw",),
    )
    return _spec(f"rcw-{uid}", "rcw", uid, phases, truth, nprocs=32)


def _build_r_only(uid: int, rng: np.random.Generator) -> AppSpec:
    phases: list[Phase] = [
        _burst("read", float(rng.uniform(0.02, 0.10)), _sig_volume(rng), rng, n_ranks=8),
        _burst("write", float(rng.uniform(0.3, 0.9)), _insig_volume(rng), rng, n_ranks=2),
    ]
    phases += _meta_storm_start(rng)
    truth = GroundTruth(
        read_temporality=Category.READ_ON_START,
        write_temporality=Category.WRITE_INSIGNIFICANT,
        metadata=META_SPIKE,
        tags=("r_only",),
    )
    return _spec(f"ronly-{uid}", "r_only", uid, phases, truth, nprocs=32)


def _build_rcw_ckpt_periodic(uid: int, rng: np.random.Generator) -> AppSpec:
    period = _ckpt_minute_period(rng)
    busy = float(rng.uniform(0.03, 0.12))
    phases: list[Phase] = [
        _burst("read", float(rng.uniform(0.002, 0.012)), _sig_volume(rng), rng, n_ranks=8),
        _periodic_write(rng, period, busy),
    ]
    phases += _meta_dense(rng)
    truth = GroundTruth(
        read_temporality=Category.READ_ON_START,
        write_temporality=Category.WRITE_STEADY,
        periodic_write=True,
        period_magnitudes=frozenset({Category.PERIODIC_MINUTE}),
        busy_label=Category.PERIODIC_LOW_BUSY_TIME,
        metadata=META_DENSE,
        tags=("rcw_ckpt_periodic",),
    )
    return _spec(
        f"rcwper-{uid}",
        "rcw_ckpt_periodic",
        uid,
        phases,
        truth,
        nprocs=16,
        runtime=_runtime_for_period(period),
    )


def _build_rcw_ckpt_hidden(uid: int, rng: np.random.Generator) -> AppSpec:
    phases: list[Phase] = [
        _burst("read", float(rng.uniform(0.002, 0.012)), _sig_volume(rng), rng, n_ranks=8),
        KeptOpenPhase(direction="write", volume=_sig_volume(rng), start=0.02, end=0.99),
    ]
    phases += _meta_dense(rng)
    truth = GroundTruth(
        read_temporality=Category.READ_ON_START,
        write_temporality=Category.WRITE_STEADY,
        hidden_periodic=True,
        metadata=META_DENSE,
        tags=("rcw_ckpt_hidden",),
    )
    return _spec(f"rcwhid-{uid}", "rcw_ckpt_hidden", uid, phases, truth, nprocs=16)


def _build_r_steady_only(uid: int, rng: np.random.Generator) -> AppSpec:
    phases: list[Phase] = [
        KeptOpenPhase(direction="read", volume=_sig_volume(rng), start=0.0, end=1.0),
        _burst("write", float(rng.uniform(0.3, 0.8)), _insig_volume(rng), rng, n_ranks=2),
    ]
    truth = GroundTruth(
        read_temporality=Category.READ_STEADY,
        write_temporality=Category.WRITE_INSIGNIFICANT,
        metadata=META_INSIG,
        tags=("r_steady_only",),
    )
    return _spec(f"rsteady-{uid}", "r_steady_only", uid, phases, truth, nprocs=64)


def _build_r_steady_w_end(uid: int, rng: np.random.Generator) -> AppSpec:
    phases: list[Phase] = [
        KeptOpenPhase(direction="read", volume=_sig_volume(rng), start=0.0, end=1.0),
        _burst("write", float(rng.uniform(0.93, 0.98)), _sig_volume(rng), rng, n_ranks=8),
    ]
    truth = GroundTruth(
        read_temporality=Category.READ_STEADY,
        write_temporality=Category.WRITE_ON_END,
        metadata=META_INSIG,
        tags=("r_steady_w_end",),
    )
    return _spec(f"rstwend-{uid}", "r_steady_w_end", uid, phases, truth, nprocs=64)


def _read_period(rng: np.random.Generator) -> tuple[float, Category]:
    """Periodic-read period: seconds or minutes, clear of the 60 s label
    boundary (paper §IV-A: read periods are an order of magnitude below
    write periods)."""
    if rng.random() < 0.5:
        return float(rng.uniform(22.0, 45.0)), Category.PERIODIC_SECOND
    return float(rng.uniform(80.0, 280.0)), Category.PERIODIC_MINUTE


def _build_sim_per_rw(uid: int, rng: np.random.Generator) -> AppSpec:
    r_period, r_mag = _read_period(rng)
    # The neighbor-merge rule absorbs gaps below 0.1% of the runtime, so a
    # read period must stay well above runtime/1000 to remain observable —
    # the same resolution limit the real MOSAIC has on long jobs.  Bound
    # the write period (hence the runtime) by the read period.
    w_period = float(rng.uniform(300.0, min(1500.0, 15.0 * r_period)))
    runtime_lo = 16.0 * w_period
    runtime_hi = max(min(24.0 * w_period, 300.0 * r_period), runtime_lo * 1.2)
    phases: list[Phase] = [
        PeriodicPhase(
            direction="read",
            period=r_period,
            event_volume=max(_sig_volume(rng) / 40.0, 30 * MB),
            event_duration=max(0.08 * r_period, 1.0),
            n_ranks=2,
            desync=float(rng.uniform(0.1, 1.0)),
        ),
        _periodic_write(rng, w_period, float(rng.uniform(0.03, 0.12))),
    ]
    phases += _meta_bursty(rng)
    truth = GroundTruth(
        read_temporality=Category.READ_STEADY,
        write_temporality=Category.WRITE_STEADY,
        periodic_read=True,
        periodic_write=True,
        period_magnitudes=frozenset({r_mag, Category.PERIODIC_MINUTE}),
        busy_label=Category.PERIODIC_LOW_BUSY_TIME,
        metadata=META_BURSTY,
        tags=("sim_per_rw",),
    )
    return _spec(
        f"simprw-{uid}",
        "sim_per_rw",
        uid,
        phases,
        truth,
        nprocs=32,
        runtime=(runtime_lo, runtime_hi),
    )


def _build_sim_per_w(uid: int, rng: np.random.Generator) -> AppSpec:
    w_period = _ckpt_minute_period(rng)
    phases: list[Phase] = [
        KeptOpenPhase(direction="read", volume=_sig_volume(rng), start=0.0, end=1.0),
        _periodic_write(rng, w_period, float(rng.uniform(0.03, 0.12))),
    ]
    phases += _meta_bursty(rng)
    truth = GroundTruth(
        read_temporality=Category.READ_STEADY,
        write_temporality=Category.WRITE_STEADY,
        periodic_write=True,
        period_magnitudes=frozenset({Category.PERIODIC_MINUTE}),
        busy_label=Category.PERIODIC_LOW_BUSY_TIME,
        metadata=META_BURSTY,
        tags=("sim_per_w",),
    )
    return _spec(
        f"simpw-{uid}",
        "sim_per_w",
        uid,
        phases,
        truth,
        nprocs=32,
        runtime=_runtime_for_period(w_period),
    )


def _build_sim_hidden(uid: int, rng: np.random.Generator) -> AppSpec:
    phases: list[Phase] = [
        KeptOpenPhase(direction="read", volume=_sig_volume(rng), start=0.0, end=1.0),
        KeptOpenPhase(direction="write", volume=_sig_volume(rng), start=0.01, end=0.99),
    ]
    phases += _meta_bursty(rng)
    truth = GroundTruth(
        read_temporality=Category.READ_STEADY,
        write_temporality=Category.WRITE_STEADY,
        hidden_periodic=True,
        metadata=META_BURSTY,
        tags=("sim_hidden",),
    )
    return _spec(f"simhid-{uid}", "sim_hidden", uid, phases, truth, nprocs=32)


def _others_read_phases(
    rng: np.random.Generator,
) -> tuple[list[Phase], Category]:
    """Read activity landing in one of the paper's "Others" temporality
    categories, drawn wide enough to exercise the weak-evidence fallback."""
    variant = int(rng.integers(0, 5))
    vol = _sig_volume(rng)
    if variant == 0:  # after start
        pos = float(rng.uniform(0.28, 0.44))
        return [_burst("read", pos, vol, rng)], Category.READ_AFTER_START
    if variant == 1:  # before end
        pos = float(rng.uniform(0.56, 0.72))
        return [_burst("read", pos, vol, rng)], Category.READ_BEFORE_END
    if variant == 2:  # middle plateau
        return (
            [KeptOpenPhase(direction="read", volume=vol, start=0.30, end=0.70)],
            Category.READ_AFTER_START_BEFORE_END,
        )
    if variant == 3:  # read on end
        pos = float(rng.uniform(0.93, 0.98))
        return [_burst("read", pos, vol, rng)], Category.READ_ON_END
    # boundary-straddling case at the 0.75 boundary: both the truth
    # (before_end / on_end by centre of mass) and the detection stay in
    # Table III's "Others" read column, and the weak-evidence fallback
    # genuinely flips between the two labels (the 0.25/0.5 boundaries
    # would instead trip the dominance or middle rules systematically).
    return _boundary_pair("read", 0.75, rng)


def _others_write_phases(
    rng: np.random.Generator,
) -> tuple[list[Phase], Category]:
    variant = int(rng.integers(0, 4))
    vol = _sig_volume(rng)
    if variant == 0:  # write on start (output template, eager logs)
        pos = float(rng.uniform(0.02, 0.10))
        return [_burst("write", pos, vol, rng)], Category.WRITE_ON_START
    if variant == 1:  # after start
        pos = float(rng.uniform(0.28, 0.44))
        return [_burst("write", pos, vol, rng)], Category.WRITE_AFTER_START
    if variant == 2:
        return (
            [KeptOpenPhase(direction="write", volume=vol, start=0.30, end=0.70)],
            Category.WRITE_AFTER_START_BEFORE_END,
        )
    # boundary-straddling case at the 0.25 boundary (truth on_start /
    # after_start by centre of mass — both in the write "Others" column)
    return _boundary_pair("write", 0.25, rng)


def _build_r_others_only(uid: int, rng: np.random.Generator) -> AppSpec:
    read_phases, read_truth = _others_read_phases(rng)
    phases = read_phases + [
        _burst("write", float(rng.uniform(0.3, 0.9)), _insig_volume(rng), rng, n_ranks=2)
    ]
    truth = GroundTruth(
        read_temporality=read_truth,
        write_temporality=Category.WRITE_INSIGNIFICANT,
        metadata=META_INSIG,
        tags=("r_others_only",),
    )
    return _spec(f"roth-{uid}", "r_others_only", uid, phases, truth, nprocs=64)


def _build_w_only_end(uid: int, rng: np.random.Generator) -> AppSpec:
    phases: list[Phase] = [
        _burst("read", float(rng.uniform(0.1, 0.8)), _insig_volume(rng), rng, n_ranks=2),
        _burst("write", float(rng.uniform(0.93, 0.98)), _sig_volume(rng), rng, n_ranks=8),
    ]
    truth = GroundTruth(
        read_temporality=Category.READ_INSIGNIFICANT,
        write_temporality=Category.WRITE_ON_END,
        metadata=META_INSIG,
        tags=("w_only_end",),
    )
    return _spec(f"wend-{uid}", "w_only_end", uid, phases, truth, nprocs=64)


def _build_w_only_others(uid: int, rng: np.random.Generator) -> AppSpec:
    write_phases, write_truth = _others_write_phases(rng)
    phases = write_phases + [
        _burst("read", float(rng.uniform(0.1, 0.8)), _insig_volume(rng), rng, n_ranks=2)
    ]
    truth = GroundTruth(
        read_temporality=Category.READ_INSIGNIFICANT,
        write_temporality=write_truth,
        metadata=META_INSIG,
        tags=("w_only_others",),
    )
    return _spec(f"woth-{uid}", "w_only_others", uid, phases, truth, nprocs=64)


def _build_sim_others_periodic(uid: int, rng: np.random.Generator) -> AppSpec:
    """High-busy periodic writer with mid-run reads: the small population
    keeping the §IV-D "96% of periodic writers are low-busy" correlation
    from being 100%."""
    period = _ckpt_minute_period(rng)
    read_phases, read_truth = _others_read_phases(rng)
    phases = read_phases + [
        _periodic_write(rng, period, busy_fraction=float(rng.uniform(0.35, 0.55)))
    ]
    truth = GroundTruth(
        read_temporality=read_truth,
        write_temporality=Category.WRITE_STEADY,
        periodic_write=True,
        period_magnitudes=frozenset({Category.PERIODIC_MINUTE}),
        busy_label=Category.PERIODIC_HIGH_BUSY_TIME,
        metadata=META_NONE,
        tags=("sim_others_periodic",),
    )
    return _spec(
        f"sothper-{uid}",
        "sim_others_periodic",
        uid,
        phases,
        truth,
        nprocs=16,
        runtime=_runtime_for_period(period),
    )


def _build_sim_others_hidden(uid: int, rng: np.random.Generator) -> AppSpec:
    read_phases, read_truth = _others_read_phases(rng)
    phases = read_phases + [
        KeptOpenPhase(direction="write", volume=_sig_volume(rng), start=0.02, end=0.98)
    ]
    truth = GroundTruth(
        read_temporality=read_truth,
        write_temporality=Category.WRITE_STEADY,
        hidden_periodic=True,
        metadata=META_INSIG,
        tags=("sim_others_hidden",),
    )
    return _spec(f"sothhid-{uid}", "sim_others_hidden", uid, phases, truth, nprocs=64)


def _build_rw_others(uid: int, rng: np.random.Generator) -> AppSpec:
    read_phases, read_truth = _others_read_phases(rng)
    write_phases, write_truth = _others_write_phases(rng)
    truth = GroundTruth(
        read_temporality=read_truth,
        write_temporality=write_truth,
        metadata=META_INSIG,
        tags=("rw_others",),
    )
    return _spec(
        f"rwoth-{uid}", "rw_others", uid, read_phases + write_phases, truth, nprocs=64
    )


def _build_w_steady_per_hour(uid: int, rng: np.random.Generator) -> AppSpec:
    period = _ckpt_hour_period(rng)
    phases: list[Phase] = [
        _burst("read", float(rng.uniform(0.1, 0.8)), _insig_volume(rng), rng, n_ranks=2),
        _periodic_write(rng, period, float(rng.uniform(0.02, 0.10))),
    ]
    truth = GroundTruth(
        read_temporality=Category.READ_INSIGNIFICANT,
        write_temporality=Category.WRITE_STEADY,
        periodic_write=True,
        period_magnitudes=frozenset({Category.PERIODIC_HOUR}),
        busy_label=Category.PERIODIC_LOW_BUSY_TIME,
        metadata=META_NONE,
        tags=("w_steady_per_hour",),
    )
    return _spec(
        f"wsthour-{uid}",
        "w_steady_per_hour",
        uid,
        phases,
        truth,
        nprocs=16,
        runtime=_runtime_for_period(period),
    )


def _build_w_steady_hidden(uid: int, rng: np.random.Generator) -> AppSpec:
    phases: list[Phase] = [
        _burst("read", float(rng.uniform(0.1, 0.8)), _insig_volume(rng), rng, n_ranks=2),
        KeptOpenPhase(direction="write", volume=_sig_volume(rng), start=0.02, end=0.98),
    ]
    truth = GroundTruth(
        read_temporality=Category.READ_INSIGNIFICANT,
        write_temporality=Category.WRITE_STEADY,
        hidden_periodic=True,
        metadata=META_INSIG,
        tags=("w_steady_hidden",),
    )
    return _spec(f"wsthid-{uid}", "w_steady_hidden", uid, phases, truth, nprocs=64)


# ---------------------------------------------------------------------------
# the calibrated profile

BLUE_WATERS_2019: tuple[CohortSpec, ...] = (
    CohortSpec("silent", 81.21, 25.8, _build_silent),
    CohortSpec("rcw", 6.30, 10.0, _build_rcw),
    CohortSpec("r_only", 1.90, 16.0, _build_r_only),
    CohortSpec("rcw_ckpt_periodic", 0.50, 4.0, _build_rcw_ckpt_periodic),
    CohortSpec("rcw_ckpt_hidden", 0.20, 8.0, _build_rcw_ckpt_hidden),
    CohortSpec("r_steady_only", 0.30, 3.0, _build_r_steady_only),
    CohortSpec("r_steady_w_end", 0.11, 3.5, _build_r_steady_w_end),
    CohortSpec("sim_per_rw", 0.55, 1.5, _build_sim_per_rw),
    CohortSpec("sim_per_w", 0.55, 2.0, _build_sim_per_w),
    CohortSpec("sim_hidden", 0.49, 20.0, _build_sim_hidden),
    CohortSpec("r_others_only", 3.75, 2.0, _build_r_others_only),
    CohortSpec("w_only_end", 1.59, 0.5, _build_w_only_end),
    CohortSpec("w_only_others", 1.90, 0.5, _build_w_only_others),
    CohortSpec("sim_others_periodic", 0.10, 0.3, _build_sim_others_periodic),
    CohortSpec("sim_others_hidden", 0.05, 1.2, _build_sim_others_hidden),
    CohortSpec("rw_others", 0.10, 1.5, _build_rw_others),
    CohortSpec("w_steady_per_hour", 0.20, 0.15, _build_w_steady_per_hour),
    CohortSpec("w_steady_hidden", 0.20, 0.15, _build_w_steady_hidden),
)


def cohort_by_name(name: str) -> CohortSpec:
    """Look up a cohort of the calibrated profile by name."""
    for cohort in BLUE_WATERS_2019:
        if cohort.name == name:
            return cohort
    raise KeyError(f"unknown cohort: {name!r}")
