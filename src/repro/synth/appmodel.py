"""Parameterized synthetic application model.

An :class:`AppSpec` captures one application's identity (user,
executable), its I/O phase structure, and its ground truth; ``generate_run``
materializes one execution as a Darshan-equivalent trace with per-run
variability (duration, volume, desync).  A small fraction of runs are
*deviant* (crashed early, tiny I/O), matching the paper's observation
that ~3% of LAMMPS runs categorize differently from the rest.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..darshan.records import JobMeta
from ..darshan.trace import Trace
from .groundtruth import GroundTruth
from .phases import Phase, PhaseContext

__all__ = ["AppSpec", "generate_run"]

#: Synthetic corpus epoch: 2019-01-01 00:00 UTC (the Blue Waters year).
CORPUS_EPOCH = 1546300800.0


@dataclass(slots=True, frozen=True)
class AppSpec:
    """One synthetic application: identity, phases, ground truth."""

    name: str
    cohort: str
    uid: int
    exe: str
    nprocs: int
    #: Run-time range in seconds, drawn log-uniformly per run.
    runtime_lo: float
    runtime_hi: float
    phases: tuple[Phase, ...]
    truth: GroundTruth
    #: Log-normal sigma of the per-run volume multiplier.
    volume_sigma: float = 0.2
    #: Probability that a run deviates (crashes early, tiny I/O).
    deviant_prob: float = 0.03

    def __post_init__(self) -> None:
        if not 0 < self.runtime_lo <= self.runtime_hi:
            raise ValueError("invalid runtime range")
        if self.nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        if not 0.0 <= self.deviant_prob <= 1.0:
            raise ValueError("deviant_prob must be in [0, 1]")


def generate_run(
    spec: AppSpec,
    job_id: int,
    rng: np.random.Generator,
    *,
    force_nominal: bool = False,
) -> Trace:
    """Materialize one execution of ``spec``.

    ``force_nominal`` disables the deviant-run dice, used when a caller
    needs a guaranteed representative trace (e.g. single-trace examples).
    """
    run_time = float(
        np.exp(rng.uniform(np.log(spec.runtime_lo), np.log(spec.runtime_hi)))
    )
    volume_scale = float(np.exp(rng.normal(0.0, spec.volume_sigma)))
    deviant = (not force_nominal) and bool(rng.random() < spec.deviant_prob)
    if deviant:
        # Early crash: a fraction of the planned duration, negligible I/O.
        run_time *= float(rng.uniform(0.05, 0.25))
        volume_scale *= 1e-4

    ctx = PhaseContext(
        rng=rng,
        run_time=run_time,
        nprocs=spec.nprocs,
        volume_scale=volume_scale,
    )
    records = []
    for phase in spec.phases:
        records.extend(phase.emit(ctx))

    start = CORPUS_EPOCH + float(rng.uniform(0.0, 360.0 * 86400.0))
    meta = JobMeta(
        job_id=job_id,
        uid=spec.uid,
        exe=spec.exe,
        nprocs=spec.nprocs,
        start_time=start,
        end_time=start + run_time,
    )
    return Trace(meta=meta, records=records)
