"""I/O phase building blocks for synthetic applications.

An application model is a list of phases; each phase emits the
:class:`~repro.darshan.records.FileRecord` entries that Blue Waters-era
Darshan would have produced for that activity.  Phases therefore encode
both the *behaviour* (burst, periodic, steady) and the *observability*
(file-per-event records that MOSAIC can segment vs. kept-open records
that Darshan flattens into one window — the paper's §IV-A limitation).

All positions are fractions of the run time so that per-run duration
jitter preserves the shape of the trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from ..darshan.records import FileRecord
from ..darshan.counters import SHARED_RANK

__all__ = [
    "PhaseContext",
    "Phase",
    "BurstPhase",
    "KeptOpenPhase",
    "PeriodicPhase",
    "MetadataBurstPhase",
    "MetadataLoadPhase",
]


@dataclass(slots=True)
class PhaseContext:
    """Per-run generation context handed to every phase."""

    rng: np.random.Generator
    run_time: float
    nprocs: int
    #: Multiplier applied to all phase volumes this run (run-to-run
    #: variability; the heaviest run of an app is the one MOSAIC keeps).
    volume_scale: float
    _next_file_id: int = 1

    def new_file_id(self) -> int:
        fid = self._next_file_id
        self._next_file_id += 1
        return fid


class Phase(Protocol):
    """A phase emits Darshan records for one run."""

    def emit(self, ctx: PhaseContext) -> list[FileRecord]: ...


def _clip(t: float, run_time: float) -> float:
    return float(min(max(t, 0.0), run_time))


@dataclass(slots=True, frozen=True)
class BurstPhase:
    """One concentrated I/O burst (input read, final result write...).

    ``n_ranks`` ranks each access their own file inside a window of
    ``duration`` seconds centred at ``position * run_time``; per-rank
    start jitter of up to ``desync`` seconds reproduces the process
    desynchronization the merging stage must absorb.
    """

    direction: str  # "read" | "write"
    #: Centre of the burst as a fraction of run time.
    position: float
    #: Total bytes moved by the burst across all ranks.
    volume: float
    #: Burst duration in seconds (before desync spread).
    duration: float
    #: Participating ranks (1 = rank 0 only; capped at nprocs).
    n_ranks: int = 8
    #: Max per-rank start offset in seconds.
    desync: float = 0.0
    #: Opens per rank (several = the rank touches several files).
    opens_per_rank: int = 1

    def emit(self, ctx: PhaseContext) -> list[FileRecord]:
        n_ranks = max(1, min(self.n_ranks, ctx.nprocs))
        t_mid = self.position * ctx.run_time
        t0 = t_mid - self.duration / 2.0
        vol_total = self.volume * ctx.volume_scale
        per_rank = vol_total / n_ranks
        records: list[FileRecord] = []
        for rank in range(n_ranks):
            jitter = float(ctx.rng.uniform(0.0, self.desync)) if self.desync else 0.0
            s = _clip(t0 + jitter, ctx.run_time)
            e = _clip(t0 + jitter + self.duration, ctx.run_time)
            if e <= s:
                e = min(s + 1e-3, ctx.run_time)
            fid = ctx.new_file_id()
            rec = FileRecord(
                file_id=fid,
                file_name=f"burst.{fid}.dat",
                rank=rank,
                opens=self.opens_per_rank,
                closes=self.opens_per_rank,
                seeks=self.opens_per_rank,
                open_start=s,
                close_end=e,
            )
            n_ops = max(1, int(per_rank // (4 * 1024 * 1024)) or 1)
            if self.direction == "read":
                rec.reads = n_ops
                rec.bytes_read = int(per_rank)
                rec.read_start, rec.read_end = s, e
                rec.read_time = (e - s) * 0.8
            else:
                rec.writes = n_ops
                rec.bytes_written = int(per_rank)
                rec.write_start, rec.write_end = s, e
                rec.write_time = (e - s) * 0.8
            rec.meta_time = 1e-4 * rec.metadata_ops
            records.append(rec)
        return records


@dataclass(slots=True, frozen=True)
class KeptOpenPhase:
    """A file opened early and closed late with all its accesses
    aggregated into one wide window — how Darshan (without DXT) records
    an application that keeps its files open.  A periodic writer using
    this pattern is *hidden*: MOSAIC can only call it steady.
    """

    direction: str
    volume: float
    start: float = 0.0
    end: float = 1.0
    n_ranks: int = 1

    def emit(self, ctx: PhaseContext) -> list[FileRecord]:
        n_ranks = max(1, min(self.n_ranks, ctx.nprocs))
        s = _clip(self.start * ctx.run_time, ctx.run_time)
        e = _clip(self.end * ctx.run_time, ctx.run_time)
        if e <= s:
            e = min(s + 1.0, ctx.run_time)
        vol_total = self.volume * ctx.volume_scale
        per_rank = vol_total / n_ranks
        records: list[FileRecord] = []
        for rank in range(n_ranks):
            fid = ctx.new_file_id()
            rank_id = rank if n_ranks > 1 else SHARED_RANK
            rec = FileRecord(
                file_id=fid,
                file_name=f"keptopen.{fid}.dat",
                rank=rank_id,
                opens=1,
                closes=1,
                seeks=1,
                open_start=s,
                close_end=e,
            )
            n_ops = max(1, int(per_rank // (1024 * 1024)))
            if self.direction == "read":
                rec.reads = n_ops
                rec.bytes_read = int(per_rank)
                rec.read_start, rec.read_end = s, e
                rec.read_time = (e - s) * 0.05
            else:
                rec.writes = n_ops
                rec.bytes_written = int(per_rank)
                rec.write_start, rec.write_end = s, e
                rec.write_time = (e - s) * 0.05
            records.append(rec)
        return records


@dataclass(slots=True, frozen=True)
class PeriodicPhase:
    """Periodic I/O with a fresh file per event (checkpoint-style).

    Emits one record per (event, rank): exactly the pattern MOSAIC's
    segmentation + Mean Shift pipeline is designed to recover.  Event
    volumes and inter-event spacing carry small multiplicative jitter so
    the clustering has realistic spread to absorb.
    """

    direction: str
    #: Period in seconds.
    period: float
    #: Bytes per event across ranks.
    event_volume: float
    #: Seconds each event is active (sets the busy fraction).
    event_duration: float
    start: float = 0.02
    end: float = 0.98
    n_ranks: int = 4
    desync: float = 0.0
    #: Relative jitter of event start times and volumes.
    jitter: float = 0.03

    def emit(self, ctx: PhaseContext) -> list[FileRecord]:
        n_ranks = max(1, min(self.n_ranks, ctx.nprocs))
        t_lo = self.start * ctx.run_time
        t_hi = self.end * ctx.run_time
        span = t_hi - t_lo
        n_events = int(span // self.period)
        if n_events < 1:
            return []
        # Spread the events across the whole phase window: real
        # checkpointers keep checkpointing until the job ends, so the last
        # temporal chunk must not go dark just because span is not an
        # exact multiple of the period.  The effective period is
        # span / n_events >= self.period (within one period of it).
        spacing = span / n_events
        records: list[FileRecord] = []
        for k in range(n_events):
            base = t_lo + k * spacing
            base += float(ctx.rng.normal(0.0, self.jitter * spacing))
            vol = self.event_volume * ctx.volume_scale
            vol *= float(np.exp(ctx.rng.normal(0.0, self.jitter)))
            per_rank = vol / n_ranks
            for rank in range(n_ranks):
                off = float(ctx.rng.uniform(0.0, self.desync)) if self.desync else 0.0
                s = _clip(base + off, ctx.run_time)
                e = _clip(base + off + self.event_duration, ctx.run_time)
                if e <= s:
                    e = min(s + 1e-3, ctx.run_time)
                fid = ctx.new_file_id()
                rec = FileRecord(
                    file_id=fid,
                    file_name=f"ckpt.{k:05d}.{fid}.dat",
                    rank=rank,
                    opens=1,
                    closes=1,
                    seeks=1,
                    open_start=s,
                    close_end=e,
                )
                n_ops = max(1, int(per_rank // (4 * 1024 * 1024)) or 1)
                if self.direction == "read":
                    rec.reads = n_ops
                    rec.bytes_read = int(per_rank)
                    rec.read_start, rec.read_end = s, e
                    rec.read_time = (e - s) * 0.8
                else:
                    rec.writes = n_ops
                    rec.bytes_written = int(per_rank)
                    rec.write_start, rec.write_end = s, e
                    rec.write_time = (e - s) * 0.8
                records.append(rec)
        return records


@dataclass(slots=True, frozen=True)
class MetadataBurstPhase:
    """A metadata request storm: ``n_requests`` open/close pairs inside
    ``duration`` seconds (e.g. every rank opening many small files at
    startup).  Drives the high-spike rule."""

    position: float
    n_requests: int
    duration: float = 1.0

    def emit(self, ctx: PhaseContext) -> list[FileRecord]:
        t0 = _clip(self.position * ctx.run_time, ctx.run_time)
        t1 = _clip(t0 + self.duration, ctx.run_time)
        if t1 <= t0:
            t1 = min(t0 + 0.5, ctx.run_time)
        half = max(1, self.n_requests // 2)
        fid = ctx.new_file_id()
        return [
            FileRecord(
                file_id=fid,
                file_name=f"metastorm.{fid}",
                rank=SHARED_RANK,
                opens=half,
                closes=half,
                seeks=0,
                open_start=t0,
                close_end=t1,
                meta_time=1e-4 * self.n_requests,
            )
        ]


@dataclass(slots=True, frozen=True)
class MetadataLoadPhase:
    """Sustained metadata pressure: ``rate`` requests/second between
    ``start`` and ``end``.  Drives the high-density rule."""

    rate: float
    start: float = 0.0
    end: float = 1.0

    def emit(self, ctx: PhaseContext) -> list[FileRecord]:
        s = _clip(self.start * ctx.run_time, ctx.run_time)
        e = _clip(self.end * ctx.run_time, ctx.run_time)
        if e <= s:
            return []
        total = int(self.rate * (e - s))
        if total < 2:
            return []
        half = total // 2
        fid = ctx.new_file_id()
        return [
            FileRecord(
                file_id=fid,
                file_name=f"metaload.{fid}",
                rank=SHARED_RANK,
                opens=half,
                closes=half,
                seeks=0,
                open_start=s,
                close_end=e,
                meta_time=1e-4 * total,
            )
        ]
