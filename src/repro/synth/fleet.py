"""Fleet generation: a full synthetic "year of Blue Waters" corpus.

Scales the calibrated cohort profile to the requested number of unique
applications, draws heavy-tailed per-application run counts matching
each cohort's run share (a handful of applications account for most
executions, like the ≈12,000 LAMMPS runs in the paper), generates every
execution, and finally injects corrupted traces so the input corpus
contains the paper's 32% eviction share.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..darshan.trace import Trace
from .appmodel import AppSpec, generate_run
from .cohorts import BLUE_WATERS_2019, CohortSpec
from .corruption import corrupt_trace, flood_trace
from .groundtruth import GroundTruth

__all__ = ["FleetConfig", "FleetResult", "generate_fleet", "apportion"]


@dataclass(slots=True, frozen=True)
class FleetConfig:
    """Scale and composition knobs of the synthetic corpus.

    The paper's full dataset is ``n_apps=24606, mean_runs=12.5,
    corruption_fraction=0.32`` (→ 462,502 input traces); defaults here
    are a 1:60-ish scale preserving all proportions.
    """

    n_apps: int = 400
    #: Mean valid runs per application across the corpus.
    mean_runs: float = 12.5
    #: Fraction of the *input* corpus that is corrupted (paper: 32%).
    corruption_fraction: float = 0.32
    #: Fraction of the *valid* traces that are additionally emitted as
    #: flooded duplicates (valid, truth-preserving, factor× the record
    #: count) so fleet runs exercise the resource governor with known
    #: labels.  Extension beyond the paper; see docs/ROBUSTNESS.md.
    flood_fraction: float = 0.0
    #: Record multiplier applied by :func:`~repro.synth.corruption.flood_trace`.
    flood_factor: int = 32
    seed: int = 20190101
    #: Log-normal sigma of per-app run-count weights inside a cohort.
    run_spread_sigma: float = 0.8
    profile: tuple[CohortSpec, ...] = BLUE_WATERS_2019

    def __post_init__(self) -> None:
        if self.n_apps < 1:
            raise ValueError("n_apps must be >= 1")
        if self.mean_runs < 1.0:
            raise ValueError("mean_runs must be >= 1")
        if not 0.0 <= self.corruption_fraction < 1.0:
            raise ValueError("corruption_fraction must be in [0, 1)")
        if not 0.0 <= self.flood_fraction <= 1.0:
            raise ValueError("flood_fraction must be in [0, 1]")
        if self.flood_factor < 2:
            raise ValueError("flood_factor must be >= 2")


@dataclass(slots=True)
class FleetResult:
    """A generated corpus plus everything needed to evaluate MOSAIC on it."""

    traces: list[Trace]
    #: job_id → ground truth (valid traces only; corrupted traces carry
    #: no truth — they must be evicted, not categorized).
    truth: dict[int, GroundTruth]
    #: job_id → cohort name (valid traces only).
    cohort_of: dict[int, str]
    #: All application specs, keyed by (uid, exe).
    apps: dict[tuple[int, str], AppSpec]
    n_valid: int
    n_corrupted: int
    #: Valid-but-oversized flood traces (included in the valid count's
    #: truth/cohort maps — they carry their victim's ground truth).
    n_flooded: int = 0
    #: cohort name → (n_apps, n_valid_runs).
    manifest: dict[str, tuple[int, int]] = field(default_factory=dict)

    @property
    def n_input(self) -> int:
        return len(self.traces)


def apportion(shares: list[float], total: int) -> list[int]:
    """Largest-remainder apportionment of ``total`` items over ``shares``.

    Guarantees every positive share receives at least one item when
    ``total >= number of positive shares`` — small-scale corpora must not
    silently drop rare cohorts.
    """
    shares_arr = np.asarray(shares, dtype=np.float64)
    if np.any(shares_arr < 0):
        raise ValueError("shares must be non-negative")
    positive = shares_arr > 0
    n_positive = int(np.count_nonzero(positive))
    if total < n_positive:
        raise ValueError(
            f"total={total} cannot cover {n_positive} positive shares"
        )
    norm = shares_arr / shares_arr.sum()
    raw = norm * total
    counts = np.floor(raw).astype(np.int64)
    counts[positive] = np.maximum(counts[positive], 1)
    # Largest remainder on what is left (may need removal if the
    # minimum-1 rule overshot).
    while counts.sum() > total:
        over = np.where(counts > 1)[0]
        i = over[np.argmin((raw - counts)[over])]
        counts[i] -= 1
    remainders = raw - counts
    while counts.sum() < total:
        i = int(np.argmax(np.where(positive, remainders, -np.inf)))
        counts[i] += 1
        remainders[i] -= 1.0
    return counts.tolist()


def _allocate_runs(
    n_apps: int, total_runs: int, sigma: float, rng: np.random.Generator
) -> list[int]:
    """Heavy-tailed per-app run counts summing to ``total_runs``."""
    total_runs = max(total_runs, n_apps)
    weights = np.exp(rng.normal(0.0, sigma, size=n_apps))
    raw = weights / weights.sum() * total_runs
    counts = np.maximum(np.round(raw).astype(np.int64), 1)
    # Repair the sum by nudging the largest/smallest entries.
    diff = int(total_runs - counts.sum())
    order = np.argsort(-counts)
    i = 0
    while diff != 0 and n_apps > 0:
        j = order[i % n_apps]
        if diff > 0:
            counts[j] += 1
            diff -= 1
        elif counts[j] > 1:
            counts[j] -= 1
            diff += 1
        i += 1
    return counts.tolist()


def generate_fleet(config: FleetConfig | None = None) -> FleetResult:
    """Generate the full synthetic corpus."""
    cfg = config or FleetConfig()
    rng = np.random.default_rng(cfg.seed)
    profile = cfg.profile

    app_counts = apportion([c.app_share for c in profile], cfg.n_apps)
    total_runs = int(round(cfg.n_apps * cfg.mean_runs))
    run_budgets = apportion([c.run_share for c in profile], total_runs)

    traces: list[Trace] = []
    truth: dict[int, GroundTruth] = {}
    cohort_of: dict[int, str] = {}
    apps: dict[tuple[int, str], AppSpec] = {}
    manifest: dict[str, tuple[int, int]] = {}

    job_id = 1
    uid = 1000
    for cohort, n_apps_c, runs_c in zip(profile, app_counts, run_budgets):
        run_counts = _allocate_runs(n_apps_c, runs_c, cfg.run_spread_sigma, rng)
        n_runs_actual = 0
        for app_idx in range(n_apps_c):
            spec = cohort.build(uid, rng)
            apps[(spec.uid, spec.exe)] = spec
            for _ in range(run_counts[app_idx]):
                trace = generate_run(spec, job_id, rng)
                traces.append(trace)
                truth[job_id] = spec.truth
                cohort_of[job_id] = cohort.name
                job_id += 1
                n_runs_actual += 1
            uid += 1
        manifest[cohort.name] = (n_apps_c, n_runs_actual)

    n_flooded = int(round(cfg.flood_fraction * len(traces)))
    if n_flooded:
        victims = rng.choice(len(traces), size=n_flooded, replace=True)
        for v in victims:
            victim = traces[int(v)]
            big = flood_trace(victim, rng, factor=cfg.flood_factor)
            big.meta.job_id = job_id
            traces.append(big)
            # floods are valid and keep their victim's ground truth
            truth[job_id] = truth[victim.meta.job_id]
            cohort_of[job_id] = cohort_of[victim.meta.job_id]
            job_id += 1

    n_valid = len(traces)
    frac = cfg.corruption_fraction
    n_corrupt = int(round(frac / (1.0 - frac) * n_valid)) if frac > 0 else 0
    if n_corrupt:
        victims = rng.choice(n_valid, size=n_corrupt, replace=True)
        for v in victims:
            bad = corrupt_trace(traces[int(v)], rng)
            bad.meta.job_id = job_id
            traces.append(bad)
            job_id += 1

    order = rng.permutation(len(traces))
    traces = [traces[int(i)] for i in order]
    return FleetResult(
        traces=traces,
        truth=truth,
        cohort_of=cohort_of,
        apps=apps,
        n_valid=n_valid,
        n_corrupted=n_corrupt,
        n_flooded=n_flooded,
        manifest=manifest,
    )
