"""Ground-truth labels attached to every synthetic trace.

The Blue Waters substitution gives us something the paper had to obtain
by manually validating 512 sampled traces: the *intended* category of
every generated execution.  The accuracy experiment (§IV-E) scores
MOSAIC's output against these labels with the same trace-level protocol
(a trace counts as correctly classified only if every checked axis
matches).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..core.categories import Category
from ..core.result import CategorizationResult

__all__ = ["GroundTruth", "trace_matches", "mismatch_axes"]


@dataclass(slots=True, frozen=True)
class GroundTruth:
    """Intended categories of one synthetic application/trace."""

    #: Expected temporality label for reads (a read_* Category).
    read_temporality: Category
    #: Expected temporality label for writes (a write_* Category).
    write_temporality: Category
    #: Whether reads/writes are *detectably* periodic (file-per-event).
    periodic_read: bool = False
    periodic_write: bool = False
    #: Expected period magnitude labels (empty when not periodic).
    period_magnitudes: frozenset[Category] = frozenset()
    #: Expected busy-time label when periodic (None otherwise).
    busy_label: Category | None = None
    #: Expected metadata categories.
    metadata: frozenset[Category] = frozenset(
        {Category.METADATA_INSIGNIFICANT_LOAD}
    )
    #: True when the app is *actually* periodic but Darshan's kept-open
    #: aggregation hides it (the paper's §IV-A limitation).  Such traces
    #: are *correctly* categorized as steady.
    hidden_periodic: bool = False
    #: Free-form provenance (cohort name etc.) for analysis.
    tags: tuple[str, ...] = field(default_factory=tuple)

    def expected_categories(self) -> frozenset[Category]:
        """All category labels this trace should receive."""
        cats: set[Category] = {self.read_temporality, self.write_temporality}
        cats |= self.metadata
        if self.periodic_read or self.periodic_write:
            cats.add(Category.PERIODIC)
            if self.periodic_read:
                cats.add(Category.PERIODIC_READ)
            if self.periodic_write:
                cats.add(Category.PERIODIC_WRITE)
            cats |= self.period_magnitudes
            if self.busy_label is not None:
                cats.add(self.busy_label)
        return frozenset(cats)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "read_temporality": self.read_temporality.value,
            "write_temporality": self.write_temporality.value,
            "periodic_read": self.periodic_read,
            "periodic_write": self.periodic_write,
            "period_magnitudes": sorted(c.value for c in self.period_magnitudes),
            "busy_label": self.busy_label.value if self.busy_label else None,
            "metadata": sorted(c.value for c in self.metadata),
            "hidden_periodic": self.hidden_periodic,
            "tags": list(self.tags),
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "GroundTruth":
        return cls(
            read_temporality=Category(d["read_temporality"]),
            write_temporality=Category(d["write_temporality"]),
            periodic_read=bool(d.get("periodic_read", False)),
            periodic_write=bool(d.get("periodic_write", False)),
            period_magnitudes=frozenset(
                Category(c) for c in d.get("period_magnitudes", [])
            ),
            busy_label=Category(d["busy_label"]) if d.get("busy_label") else None,
            metadata=frozenset(Category(c) for c in d.get("metadata", [])),
            hidden_periodic=bool(d.get("hidden_periodic", False)),
            tags=tuple(d.get("tags", ())),
        )


def mismatch_axes(result: CategorizationResult, truth: GroundTruth) -> list[str]:
    """Axes on which MOSAIC's result disagrees with the ground truth.

    Checked axes (matching the paper's manual-validation granularity):
    read temporality, write temporality, periodic-read flag, and
    periodic-write flag.  Metadata labels are threshold-deterministic and
    are validated separately by unit tests, not counted here.
    """
    wrong: list[str] = []
    if truth.read_temporality not in result.categories:
        wrong.append("read_temporality")
    if truth.write_temporality not in result.categories:
        wrong.append("write_temporality")
    if truth.periodic_read != (Category.PERIODIC_READ in result.categories):
        wrong.append("periodic_read")
    if truth.periodic_write != (Category.PERIODIC_WRITE in result.categories):
        wrong.append("periodic_write")
    return wrong


def trace_matches(result: CategorizationResult, truth: GroundTruth) -> bool:
    """Trace-level correctness: every checked axis agrees."""
    return not mismatch_axes(result, truth)
