"""Related-work baseline categorizers used as comparison points."""

from .aggregate import AggregateClass, AggregateResult, categorize_aggregate

__all__ = ["AggregateClass", "AggregateResult", "categorize_aggregate"]
