"""Aggregate-statistics baseline categorizer (related work, paper
ref. [25] — Devarajan & Mohror style).

Categorizes a trace using only whole-execution aggregate counters — total
bytes, operation counts, mean request sizes — with **no temporal
information**.  The paper's critique, which the ABL-AGG benchmark
quantifies, is that "this type of categorization only makes it possible
to establish very high-level patterns that do not provide temporal
information": it can tell read-heavy from write-heavy, but not
``read_on_start`` from ``read_on_end``, nor periodic from one-shot.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..darshan.statistics import TraceSummary, summarize
from ..darshan.trace import Trace

__all__ = ["AggregateClass", "AggregateResult", "categorize_aggregate"]


class AggregateClass(str, Enum):
    """The coarse classes reachable without temporal data."""

    IO_INACTIVE = "io_inactive"
    READ_HEAVY = "read_heavy"
    WRITE_HEAVY = "write_heavy"
    READ_WRITE_BALANCED = "read_write_balanced"
    METADATA_HEAVY = "metadata_heavy"
    SMALL_ACCESSES = "small_accesses"
    LARGE_ACCESSES = "large_accesses"


@dataclass(slots=True, frozen=True)
class AggregateResult:
    """Baseline output: coarse classes plus the summary that produced
    them."""

    classes: frozenset[AggregateClass]
    summary: TraceSummary


def categorize_aggregate(
    trace: Trace,
    *,
    significance_bytes: int = 100 * 1024 * 1024,
    balance_ratio: float = 3.0,
    metadata_ops_per_rank: float = 100.0,
    small_access_bytes: float = 64 * 1024,
    large_access_bytes: float = 16 * 1024 * 1024,
) -> AggregateResult:
    """Classify a trace from aggregate counters only."""
    s = summarize(trace)
    classes: set[AggregateClass] = set()

    if s.total_bytes < significance_bytes:
        classes.add(AggregateClass.IO_INACTIVE)
    else:
        r, w = s.bytes_read, s.bytes_written
        if w == 0 or (r > 0 and r / max(w, 1) >= balance_ratio):
            classes.add(AggregateClass.READ_HEAVY)
        elif r == 0 or (w > 0 and w / max(r, 1) >= balance_ratio):
            classes.add(AggregateClass.WRITE_HEAVY)
        else:
            classes.add(AggregateClass.READ_WRITE_BALANCED)

        sizes = [x for x in (s.mean_read_size, s.mean_write_size) if x > 0]
        if sizes:
            mean_size = sum(sizes) / len(sizes)
            if mean_size <= small_access_bytes:
                classes.add(AggregateClass.SMALL_ACCESSES)
            elif mean_size >= large_access_bytes:
                classes.add(AggregateClass.LARGE_ACCESSES)

    if s.metadata_ops >= metadata_ops_per_rank * max(s.nprocs, 1):
        classes.add(AggregateClass.METADATA_HEAVY)

    return AggregateResult(classes=frozenset(classes), summary=s)
