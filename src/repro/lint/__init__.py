"""``repro lint`` — AST-based invariant analysis for the Mosaic pipeline.

Mosaic's correctness rests on contracts the paper states but Python
cannot enforce at runtime: the bounded-memory streaming discipline
(only the :class:`~repro.darshan.source.TraceSource` layer may
materialize whole traces), exhaustive handling of the
:class:`~repro.darshan.validate.Violation` corruption taxonomy,
tolerance-based timestamp comparison, guarded divisions over durations
and byte counts, and thresholds sourced from
:mod:`repro.core.thresholds` rather than inlined.  This package turns
those contracts into machine-checked rules (``MOS001``-``MOS018``) run
by a self-contained static-analysis engine:

* :mod:`repro.lint.findings` — the findings model (rule, location,
  severity, fix hint, source→sink step traces);
* :mod:`repro.lint.context` — per-module AST context: scope chains,
  import resolution, parent links;
* :mod:`repro.lint.rules` — rule base classes (per-module and
  whole-program) and registry;
* :mod:`repro.lint.mos` — the per-module Mosaic rules
  (``MOS001``-``MOS013``);
* :mod:`repro.lint.project` — whole-program index: module graph,
  symbol resolution, call graph;
* :mod:`repro.lint.dataflow` — intra-procedural taint with composable
  interprocedural function summaries;
* :mod:`repro.lint.flows` — the flow-sensitive rules
  (``MOS014``-``MOS017``: tainted allocations, fork/mmap safety,
  governor coverage, exception routing);
* :mod:`repro.lint.engine` — file discovery, suppression comments,
  baseline filtering, the two-phase (module + project) driver;
* :mod:`repro.lint.cache` — content-hash cache so warm runs skip
  re-analysis;
* :mod:`repro.lint.reporters` — text and JSON output;
* :mod:`repro.lint.sarif` — SARIF 2.1.0 output with ``codeFlows``;
* :mod:`repro.lint.baseline` — adopt-then-ratchet baseline files.

The engine self-hosts: ``repro lint src/ --strict`` runs in CI over
this repository and must exit 0.
"""

from __future__ import annotations

from .baseline import Baseline
from .engine import LintConfig, LintResult, lint_paths
from .findings import Finding, Severity, Step
from .project import ProjectIndex
from .reporters import render_json, render_text
from .rules import REGISTRY, ProjectRule, Rule, all_rule_ids
from .sarif import render_sarif

# Importing the rule modules registers every MOS rule.
from . import mos as _mos  # noqa: F401  (registration side effect)
from . import flows as _flows  # noqa: F401  (registration side effect)

__all__ = [
    "Baseline",
    "Finding",
    "LintConfig",
    "LintResult",
    "ProjectIndex",
    "ProjectRule",
    "REGISTRY",
    "Rule",
    "Severity",
    "Step",
    "all_rule_ids",
    "lint_paths",
    "render_json",
    "render_sarif",
    "render_text",
]
