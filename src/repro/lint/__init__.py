"""``repro lint`` — AST-based invariant analysis for the Mosaic pipeline.

Mosaic's correctness rests on contracts the paper states but Python
cannot enforce at runtime: the bounded-memory streaming discipline
(only the :class:`~repro.darshan.source.TraceSource` layer may
materialize whole traces), exhaustive handling of the
:class:`~repro.darshan.validate.Violation` corruption taxonomy,
tolerance-based timestamp comparison, guarded divisions over durations
and byte counts, and thresholds sourced from
:mod:`repro.core.thresholds` rather than inlined.  This package turns
those contracts into machine-checked rules (``MOS001``-``MOS013``) run
by a self-contained static-analysis engine:

* :mod:`repro.lint.findings` — the findings model (rule, location,
  severity, fix hint);
* :mod:`repro.lint.context` — per-module AST context: scope chains,
  import resolution, parent links;
* :mod:`repro.lint.rules` — rule base class and registry;
* :mod:`repro.lint.mos` — the Mosaic-specific rules;
* :mod:`repro.lint.engine` — file discovery, suppression comments,
  baseline filtering;
* :mod:`repro.lint.reporters` — text and JSON output;
* :mod:`repro.lint.baseline` — adopt-then-ratchet baseline files.

The engine self-hosts: ``repro lint src/ --strict`` runs in CI over
this repository and must exit 0.
"""

from __future__ import annotations

from .baseline import Baseline
from .engine import LintConfig, LintResult, lint_paths
from .findings import Finding, Severity
from .reporters import render_json, render_text
from .rules import REGISTRY, Rule, all_rule_ids

# Importing the rule module registers every MOS rule.
from . import mos as _mos  # noqa: F401  (registration side effect)

__all__ = [
    "Baseline",
    "Finding",
    "LintConfig",
    "LintResult",
    "REGISTRY",
    "Rule",
    "Severity",
    "all_rule_ids",
    "lint_paths",
    "render_json",
    "render_text",
]
