"""The flow-sensitive rules MOS014–MOS017.

Each rule here is a :class:`~repro.lint.rules.ProjectRule`: it runs
once over the whole :class:`~repro.lint.project.ProjectIndex` instead
of once per module, and its findings carry a full source→sink
:class:`~repro.lint.findings.Step` trace rendered by the text
reporter, ``repro lint --explain``, and SARIF ``codeFlows``.  The four
rules machine-check the two incident classes this repo has actually
shipped fixes for (the MOSD allocation bomb, the pre-store fork/mmap
inheritance) plus the two contracts that silently rot as layers are
added (governor coverage, corruption-error routing).
"""

from __future__ import annotations

import ast
import re

from .context import collect_scope_bindings, dotted_name
from .dataflow import TaintEngine
from .findings import Severity, Step
from .project import CallSite, FunctionInfo, ModuleInfo, ProjectIndex
from .rules import ProjectRule, register

__all__ = [
    "TaintedAllocationRule",
    "ForkSafetyRule",
    "GovernorCoverageRule",
    "ExceptionBoundaryRule",
]


def _terminal(dotted: str | None) -> str:
    return dotted.rsplit(".", 1)[-1] if dotted else ""


def _short(qualname: str) -> str:
    return qualname.rsplit(".", 1)[-1]


# ======================================================================
@register
class TaintedAllocationRule(ProjectRule):
    """MOS014: untrusted decoded values must be validated before they
    size an allocation.

    A length field produced by ``struct.unpack``/``int.from_bytes``/
    ``json.loads`` is attacker-controlled until it passes a
    ``DecodeLimits`` validator (``check_declared_size``, the
    ``_read_checked`` chokepoint, any ``check_*``/``validate*`` call)
    or a bailing guard (``if n > limits.max_records: raise``).  Letting
    it reach ``range()``, ``np.empty/zeros/ones/full``, ``bytearray``,
    or a sequence multiplication first is the MOSD allocation bomb: a
    40-byte payload declaring four billion records.  The analysis is
    interprocedural — a size decoded in ``darshan/`` and allocated in
    ``columnar/`` is still one flow — and each finding carries the full
    source→sink path.
    """

    id = "MOS014"
    name = "tainted-allocation"
    description = (
        "value decoded from trace bytes reaches an allocation sink "
        "without DecodeLimits validation"
    )
    severity = Severity.ERROR
    fix_hint = (
        "validate the decoded value against DecodeLimits "
        "(check_declared_size / _read_checked / an explicit "
        "`if n > cap: raise` guard) before sizing any allocation"
    )

    def check(self, index: ProjectIndex) -> None:
        engine = TaintEngine(index)
        engine.solve()
        seen: set[tuple[str, int, int, str]] = set()
        for taint in engine.findings():
            fn = taint.function
            key = (fn.path, taint.node.lineno, taint.node.col_offset, taint.sink)
            if key in seen:
                continue
            seen.add(key)
            origin = taint.steps[0] if taint.steps else None
            where = (
                f" (decoded at {origin.location()})" if origin is not None else ""
            )
            self.report(
                fn.path,
                taint.node,
                f"in {_short(fn.qualname)}(): untrusted decoded value "
                f"reaches {taint.sink} unvalidated{where}",
                trace=taint.steps,
            )


# ======================================================================
#: Calls that produce an OS-level handle a forked worker must not inherit.
_HANDLE_QUALIFIED = frozenset(
    {
        "open",
        "io.open",
        "gzip.open",
        "bz2.open",
        "lzma.open",
        "mmap.mmap",
        "numpy.memmap",
    }
)
_HANDLE_TERMINALS = frozenset({"attach", "CorpusStore", "memmap"})

#: Pool entry points by name, and executor/pool method calls.
_POOL_FUNCTIONS = frozenset({"parallel_map", "parallel_imap", "resilient_imap"})
_POOL_METHODS = frozenset(
    {"submit", "map", "imap", "imap_unordered", "starmap", "apply_async"}
)
_POOL_RECEIVER_RE = re.compile(r"(^|_)(pool|executor)s?$", re.IGNORECASE)


@register
class ForkSafetyRule(ProjectRule):
    """MOS015: handles opened in the parent must not be captured by
    pool worker callables.

    An mmap, ``np.memmap``, open file, or attached
    :class:`~repro.columnar.store.CorpusStore` created before the pool
    spawns is inherited *by reference* through fork: the child sees the
    parent's mapping and file-descriptor offsets, and page-cache
    aliasing turns into silent corruption under concurrent access —
    the bug class ``columnar.attach()``'s per-process cache exists to
    prevent.  Workers must receive *descriptors* (paths, row ranges)
    and open their own handles; this rule flags any worker callable —
    lambda, nested ``def``, or ``functools.partial`` binding — that
    closes over a parent-created handle.
    """

    id = "MOS015"
    name = "fork-unsafe-handle"
    description = (
        "mmap/file handle created before pool spawn is captured by a "
        "worker callable"
    )
    severity = Severity.ERROR
    fix_hint = (
        "ship descriptors (path, rows) to workers and open the handle "
        "inside the worker (the columnar attach() pattern)"
    )

    def check(self, index: ProjectIndex) -> None:
        module_handles: dict[str, dict[str, Step]] = {}
        for mi in index.by_path.values():
            module_handles[mi.path] = self._module_level_handles(mi)
        for fn in index.functions.values():
            self._check_function(
                index, fn, dict(module_handles.get(fn.path, {}))
            )

    # ------------------------------------------------------------------
    def _module_level_handles(self, mi: ModuleInfo) -> dict[str, Step]:
        handles: dict[str, Step] = {}
        for stmt in mi.tree.body:
            if isinstance(stmt, ast.Assign) and isinstance(
                stmt.value, ast.Call
            ):
                step = self._handle_step(mi, stmt.value)
                if step is None:
                    continue
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        handles[target.id] = step
        return handles

    def _handle_step(self, mi: ModuleInfo, call: ast.Call) -> Step | None:
        dotted = dotted_name(call.func)
        if dotted is None:
            return None
        qualified = mi.ctx.qualify_node(call.func) or dotted
        terminal = _terminal(dotted)
        if qualified in _HANDLE_QUALIFIED or terminal in _HANDLE_TERMINALS:
            return Step(
                path=mi.path,
                line=call.lineno,
                col=call.col_offset + 1,
                note=f"handle created in the parent process by {terminal}()",
            )
        return None

    def _check_function(
        self, index: ProjectIndex, fn: FunctionInfo, env: dict[str, Step]
    ) -> None:
        mi = index.by_path[fn.path]
        partials: dict[str, ast.Call] = {}
        nested: dict[str, ast.AST] = {}
        pool_calls: list[tuple[ast.Call, ast.expr]] = []

        for node in _own_nodes(fn.node):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested[node.name] = node
                continue
            target: ast.expr | None = None
            bound_value: ast.expr | None = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, bound_value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                target, bound_value = node.target, node.value
            if isinstance(target, ast.Name) and bound_value is not None:
                if isinstance(bound_value, ast.Call):
                    step = self._handle_step(mi, bound_value)
                    if step is not None:
                        env[target.id] = step
                        continue
                    if _terminal(dotted_name(bound_value.func)) == "partial":
                        partials[target.id] = bound_value
                        continue
                if isinstance(bound_value, ast.Name) and bound_value.id in env:
                    env[target.id] = env[bound_value.id]
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if isinstance(item.context_expr, ast.Call) and isinstance(
                        item.optional_vars, ast.Name
                    ):
                        step = self._handle_step(mi, item.context_expr)
                        if step is not None:
                            env[item.optional_vars.id] = step
            if isinstance(node, ast.Call):
                worker = self._pool_worker_expr(node)
                if worker is not None:
                    pool_calls.append((node, worker))

        for call, worker in pool_calls:
            captured = self._captured_handles(worker, env, partials, nested)
            for name, step in captured:
                ship = Step(
                    path=fn.path,
                    line=call.lineno,
                    col=call.col_offset + 1,
                    note=(
                        f"handle {name!r} captured by the worker callable "
                        "shipped to the pool here"
                    ),
                )
                self.report(
                    fn.path,
                    call,
                    f"in {_short(fn.qualname)}(): parent-process handle "
                    f"{name!r} is captured by a pool worker callable",
                    trace=(step, ship),
                )

    def _pool_worker_expr(self, call: ast.Call) -> ast.expr | None:
        func = call.func
        dotted = dotted_name(func)
        if dotted and _terminal(dotted) in _POOL_FUNCTIONS:
            if call.args:
                return call.args[0]
            for kw in call.keywords:
                if kw.arg == "fn":
                    return kw.value
            return None
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _POOL_METHODS
            and isinstance(func.value, ast.Name)
            and _POOL_RECEIVER_RE.search(func.value.id)
        ):
            return call.args[0] if call.args else None
        return None

    def _captured_handles(
        self,
        worker: ast.expr,
        env: dict[str, Step],
        partials: dict[str, ast.Call],
        nested: dict[str, ast.AST],
    ) -> list[tuple[str, Step]]:
        if isinstance(worker, ast.Name):
            if worker.id in partials:
                return self._partial_captures(
                    partials[worker.id], env, partials, nested
                )
            if worker.id in nested:
                return self._free_handle_names(nested[worker.id], env)
            return []
        if isinstance(worker, ast.Call) and _terminal(
            dotted_name(worker.func)
        ) == "partial":
            return self._partial_captures(worker, env, partials, nested)
        if isinstance(worker, ast.Lambda):
            return self._free_handle_names(worker, env)
        return []

    def _partial_captures(
        self,
        call: ast.Call,
        env: dict[str, Step],
        partials: dict[str, ast.Call],
        nested: dict[str, ast.AST],
    ) -> list[tuple[str, Step]]:
        captured: list[tuple[str, Step]] = []
        bound = call.args[1:] + [kw.value for kw in call.keywords]
        for expr in bound:
            for name_node in ast.walk(expr):
                if isinstance(name_node, ast.Name) and name_node.id in env:
                    captured.append((name_node.id, env[name_node.id]))
        if call.args:
            captured.extend(
                self._captured_handles(call.args[0], env, partials, nested)
            )
        return captured

    def _free_handle_names(
        self, node: ast.AST, env: dict[str, Step]
    ) -> list[tuple[str, Step]]:
        bound = set(collect_scope_bindings(node))
        out: list[tuple[str, Step]] = []
        for name_node in ast.walk(node):
            if (
                isinstance(name_node, ast.Name)
                and isinstance(name_node.ctx, ast.Load)
                and name_node.id not in bound
                and name_node.id in env
            ):
                out.append((name_node.id, env[name_node.id]))
        return out


# ======================================================================
_BUDGET_WORDS = frozenset(
    {
        "budget",
        "budgets",
        "governor",
        "governors",
        "Governor",
        "ResourceBudget",
        "check_deadline",
        "allows_axes",
        "allows_periodicity",
        "ops_cap",
        "subsample_ops",
    }
)

#: Ingest/planning helpers that run *before* governance applies: pass ①
#: scanning and payload loading are bounded by DecodeLimits, not by the
#: per-trace ResourceBudget.
_GOVERNOR_EXEMPT_RE = re.compile(r"^(scan_|load_|plan_)")

_CONSULT_DEPTH = 4


@register
class GovernorCoverageRule(ProjectRule):
    """MOS016: every pipeline stage reachable from ``run_pipeline*``
    must consult the resource governor.

    The degradation ladder only works if every compute stage checks in:
    a stage that never looks at :class:`ResourceBudget`/
    :class:`Governor` (directly or through its callees) runs unbounded
    no matter what ``--budget-max-ops`` says.  For every call inside a
    ``with ctx.stage(...)`` block of a ``run_pipeline*`` entry — and
    for the worker callable handed to
    ``parallel_map``/``parallel_imap``/``resilient_imap`` there — the
    called function's transitive call graph (depth ≤ 4) must reference
    the governor lexicon.  Ingest helpers (``scan_*``/``load_*``/
    ``plan_*``, which run before governance and are bounded by
    ``DecodeLimits``) are exempt; anything else must either consult the
    budget or carry an explicit ``# mosaic: disable=MOS016`` exemption.
    """

    id = "MOS016"
    name = "ungoverned-stage"
    description = (
        "pipeline stage reachable from run_pipeline* never consults "
        "ResourceBudget/Governor"
    )
    severity = Severity.ERROR
    fix_hint = (
        "thread the Governor/ResourceBudget through the stage (or mark "
        "an intentionally ungoverned stage with "
        "`# mosaic: disable=MOS016` and a justification)"
    )

    def check(self, index: ProjectIndex) -> None:
        for fn in index.functions.values():
            if not _short(fn.qualname).startswith("run_pipeline"):
                continue
            assigns = _own_assign_map(fn.node)
            for cs in fn.calls:
                if not cs.in_stage_block:
                    continue
                self._check_stage_call(index, fn, cs, assigns)

    def _check_stage_call(
        self,
        index: ProjectIndex,
        fn: FunctionInfo,
        cs: CallSite,
        assigns: dict[str, ast.expr],
    ) -> None:
        terminal = _terminal(cs.raw)
        if terminal in _POOL_FUNCTIONS:
            worker = (
                cs.node.args[0]
                if cs.node.args
                else next(
                    (kw.value for kw in cs.node.keywords if kw.arg == "fn"),
                    None,
                )
            )
            if worker is None:
                return
            target = _resolve_callable(index, fn, worker, assigns)
            if target is None:
                return
            if not self._consults(index, target):
                self._report_stage(fn, cs, target, via=terminal)
            return
        if cs.resolved is None:
            return  # opaque call: journal/context-manager plumbing
        if _GOVERNOR_EXEMPT_RE.match(terminal):
            return
        if not self._consults(index, cs.resolved):
            self._report_stage(fn, cs, cs.resolved)

    def _report_stage(
        self,
        fn: FunctionInfo,
        cs: CallSite,
        target: str,
        via: str | None = None,
    ) -> None:
        how = f" (worker of {via}())" if via else ""
        entry = Step(
            path=fn.path,
            line=fn.node.lineno,
            col=fn.node.col_offset + 1,
            note=f"pipeline entry {_short(fn.qualname)}()",
        )
        site = Step(
            path=fn.path,
            line=cs.node.lineno,
            col=cs.node.col_offset + 1,
            note=(
                f"stage calls {_short(target)}(){how}, which never "
                "references ResourceBudget/Governor"
            ),
        )
        self.report(
            fn.path,
            cs.node,
            f"stage call {_short(target)}(){how} in "
            f"{_short(fn.qualname)}() never consults "
            "ResourceBudget/Governor",
            trace=(entry, site),
        )

    def _consults(self, index: ProjectIndex, qualname: str) -> bool:
        seen: set[str] = set()
        frontier = [qualname]
        for _ in range(_CONSULT_DEPTH + 1):
            next_frontier: list[str] = []
            for qn in frontier:
                if qn in seen:
                    continue
                seen.add(qn)
                fn = index.functions.get(qn)
                if fn is None:
                    continue
                if fn.ref_parts & _BUDGET_WORDS:
                    return True
                next_frontier.extend(
                    cs.resolved
                    for cs in fn.calls
                    if cs.resolved and cs.resolved not in seen
                )
            if not next_frontier:
                return False
            frontier = next_frontier
        return False


# ======================================================================
#: Handler names that stop a ``TraceFormatError`` (its bases included).
_TFE_CATCHERS = frozenset(
    {"TraceFormatError", "DarshanError", "Exception", "BaseException"}
)

#: Layers whose *contract* is to raise/propagate TraceFormatError …
_READER_PREFIXES = ("repro.darshan.", "repro.columnar.", "repro.fuzz.")
#: … and the dispatch-boundary modules trusted to route it into the
#: Violation.UNREADABLE funnel (MOS009's scan-path set).
_BOUNDARY_MODULES = frozenset(
    {
        "repro.core.preprocess",
        "repro.core.pipeline",
        "repro.core.stream",
        "repro.darshan.source",
        "repro.cli.main",
        "repro.fuzz.harness",
        "repro.fuzz.corpus",
    }
)

_PROPAGATION_ROUNDS = 20


@register
class ExceptionBoundaryRule(ProjectRule):
    """MOS017: ``TraceFormatError`` must be handled at the dispatch
    boundary, wherever in a reader's call graph it originates.

    MOS009 checks ``except`` clauses it can *see*; this rule checks the
    calls that have none.  A module outside the reader layer
    (``repro.darshan``/``repro.columnar``/``repro.fuzz``) and outside
    the boundary set (``core.preprocess``/``core.pipeline``/
    ``core.stream``/``darshan.source``/``cli.main``) that calls a
    function which may raise ``TraceFormatError`` — directly or through
    any depth of unguarded calls — lets corpus corruption crash a batch
    run instead of feeding the ``Violation.UNREADABLE`` funnel.  The
    finding's trace walks from the original ``raise`` up through every
    unguarded hop to the flagged call site.
    """

    id = "MOS017"
    name = "escaping-trace-error"
    description = (
        "TraceFormatError can escape unhandled outside the reader layer "
        "and the dispatch boundary"
    )
    severity = Severity.ERROR
    fix_hint = (
        "wrap the call in try/except TraceFormatError and route the "
        "failure to the funnel (or re-raise as a typed error the "
        "boundary handles)"
    )

    def check(self, index: ProjectIndex) -> None:
        may_raise = self._propagate(index)
        for fn in index.functions.values():
            if not fn.module.startswith("repro."):
                checked = True  # standalone modules (fixtures) are checked
            else:
                checked = (
                    not fn.module.startswith(_READER_PREFIXES)
                    and fn.module not in _BOUNDARY_MODULES
                )
            if not checked:
                continue
            for cs in fn.calls:
                if cs.resolved not in may_raise:
                    continue
                if cs.guarded_by & _TFE_CATCHERS:
                    continue
                origin = may_raise[cs.resolved]
                site = Step(
                    path=fn.path,
                    line=cs.node.lineno,
                    col=cs.node.col_offset + 1,
                    note=(
                        f"unguarded call in {_short(fn.qualname)}() — the "
                        "error escapes past the dispatch boundary"
                    ),
                )
                self.report(
                    fn.path,
                    cs.node,
                    f"TraceFormatError from {_short(cs.resolved)}() can "
                    f"escape {_short(fn.qualname)}() unhandled",
                    trace=origin + (site,),
                )

    def _propagate(self, index: ProjectIndex) -> dict[str, tuple[Step, ...]]:
        may_raise: dict[str, tuple[Step, ...]] = {}
        for fn in index.functions.values():
            if "TraceFormatError" in fn.raises:
                may_raise[fn.qualname] = (
                    Step(
                        path=fn.path,
                        line=fn.node.lineno,
                        col=fn.node.col_offset + 1,
                        note=f"{_short(fn.qualname)}() raises TraceFormatError",
                    ),
                )
        for _ in range(_PROPAGATION_ROUNDS):
            changed = False
            for fn in index.functions.values():
                if fn.qualname in may_raise:
                    continue
                for cs in fn.calls:
                    if cs.resolved not in may_raise:
                        continue
                    if cs.guarded_by & _TFE_CATCHERS:
                        continue
                    may_raise[fn.qualname] = may_raise[cs.resolved] + (
                        Step(
                            path=fn.path,
                            line=cs.node.lineno,
                            col=cs.node.col_offset + 1,
                            note=(
                                "propagates through unguarded call in "
                                f"{_short(fn.qualname)}()"
                            ),
                        ),
                    )
                    changed = True
                    break
            if not changed:
                break
        return may_raise


# ======================================================================
def _own_nodes(fn_node: ast.AST):
    """Every node lexically in ``fn_node``'s own body, surfacing nested
    defs/lambdas themselves but not descending into them."""

    def rec(node: ast.AST):
        for child in ast.iter_child_nodes(node):
            yield child
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            yield from rec(child)

    yield from rec(fn_node)


def _own_assign_map(fn_node: ast.AST) -> dict[str, list[ast.expr]]:
    """name → every expression assigned to it in the function's own body.

    All assignments are kept (not just the last): the pipeline's
    ``fn = functools.partial(...)`` followed by ``fn =
    ctx.wrap_worker(fn)`` must still resolve through the partial.
    """
    assigns: dict[str, list[ast.expr]] = {}
    for node in _own_nodes(fn_node):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                assigns.setdefault(target.id, []).append(node.value)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name):
                assigns.setdefault(node.target.id, []).append(node.value)
    return assigns


def _resolve_callable(
    index: ProjectIndex,
    fn: FunctionInfo,
    expr: ast.expr,
    assigns: dict[str, list[ast.expr]],
    _depth: int = 0,
    _seen: frozenset[str] = frozenset(),
) -> str | None:
    """Project function a worker-callable expression lands on.

    Follows ``functools.partial`` to its bound function, local
    assignments to their values, and single-argument wrapper calls
    (``fn = ctx.wrap_worker(fn)``) to the wrapped callable.
    """
    if _depth > 4:
        return None
    if isinstance(expr, ast.Call):
        if _terminal(dotted_name(expr.func)) == "partial":
            if expr.args:
                return _resolve_callable(
                    index, fn, expr.args[0], assigns, _depth + 1, _seen
                )
            return None
        # Wrapper call: whatever wrap_worker(fn) adds, the stage work
        # is still done by the wrapped callable.
        if len(expr.args) == 1:
            return _resolve_callable(
                index, fn, expr.args[0], assigns, _depth + 1, _seen
            )
        return None
    if isinstance(expr, ast.Name) and expr.id in assigns:
        if expr.id not in _seen:
            seen = _seen | {expr.id}
            for inner in assigns[expr.id]:
                resolved = _resolve_callable(
                    index, fn, inner, assigns, _depth + 1, seen
                )
                if resolved is not None:
                    return resolved
    _, resolved = index.resolve_expr(fn, expr)
    return resolved
