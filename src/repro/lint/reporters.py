"""Render a :class:`~repro.lint.engine.LintResult` for humans or machines.

Text output is one ``path:line:col: RULE severity: message`` line per
finding (clickable in editors and CI logs) with an indented fix hint;
JSON output is a stable document for tooling, carrying the same
fingerprints the baseline format uses.
"""

from __future__ import annotations

import json
from collections import Counter

from .engine import LintResult
from .findings import Severity

__all__ = ["render_text", "render_json"]


def render_text(
    result: LintResult, show_hints: bool = True, show_traces: bool = True
) -> str:
    lines: list[str] = []
    for finding in result.findings:
        lines.append(
            f"{finding.location()}: {finding.rule_id} "
            f"{finding.severity.value}: {finding.message}"
        )
        if show_traces and finding.trace:
            for i, step in enumerate(finding.trace):
                lines.append(f"    [{i + 1}] {step.location()}: {step.note}")
        if show_hints and finding.fix_hint:
            lines.append(f"    hint: {finding.fix_hint}")
    lines.append(_summary_line(result))
    return "\n".join(lines) + "\n"


def _summary_line(result: LintResult) -> str:
    n_errors = sum(1 for f in result.findings if f.severity is Severity.ERROR)
    n_warnings = len(result.findings) - n_errors
    by_rule = Counter(f.rule_id for f in result.findings)
    parts = [
        f"{result.n_files} file(s) checked",
        f"{n_errors} error(s)",
        f"{n_warnings} warning(s)",
    ]
    if result.n_suppressed:
        parts.append(f"{result.n_suppressed} suppressed inline")
    if result.n_baselined:
        parts.append(f"{result.n_baselined} baselined")
    line = ", ".join(parts)
    if by_rule:
        breakdown = ", ".join(f"{rule}×{n}" for rule, n in sorted(by_rule.items()))
        line += f" [{breakdown}]"
    return line


def render_json(result: LintResult) -> str:
    n_errors = sum(1 for f in result.findings if f.severity is Severity.ERROR)
    doc = {
        "findings": [f.to_dict() for f in result.findings],
        "summary": {
            "files": result.n_files,
            "errors": n_errors,
            "warnings": len(result.findings) - n_errors,
            "suppressed": result.n_suppressed,
            "baselined": result.n_baselined,
        },
    }
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"
