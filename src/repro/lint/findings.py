"""Findings model: what a lint rule reports and how it is identified.

A :class:`Finding` pins one contract violation to a ``file:line:col``
location, carries the human-facing message plus a fix hint, and derives
a *fingerprint* — a line-number-free identity used by baseline files so
that unrelated edits (which shift line numbers) do not resurrect
already-adopted findings.  Flow-sensitive rules additionally attach a
*trace*: the ordered :class:`Step` chain from a taint source (or handle
creation site) to the sink, rendered by the text reporter, ``--explain``,
and SARIF ``codeFlows``.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

__all__ = ["Severity", "Step", "Finding", "normalize_path"]


def normalize_path(path: str) -> str:
    """Repo-relative POSIX form of a finding path.

    Baselines travel between machines and CI runners; a fingerprint
    derived from ``C:\\runner\\src\\x.py`` or ``/home/me/repo/src/x.py``
    matches nothing anywhere else.  Absolute paths are re-expressed
    relative to the working directory when they live under it, and
    separators are normalized to ``/``.
    """
    p = path
    if os.path.isabs(p):
        try:
            rel = os.path.relpath(p, os.getcwd())
        except ValueError:  # pragma: no cover - Windows cross-drive
            rel = p
        if not rel.startswith(".."):
            p = rel
    p = p.replace(os.sep, "/")
    if os.altsep:  # pragma: no cover - Windows
        p = p.replace(os.altsep, "/")
    while p.startswith("./"):
        p = p[2:]
    return p


class Severity(str, Enum):
    """How hard a finding fails a run.

    In ``--strict`` mode every finding is fatal; otherwise only
    ``ERROR`` findings set a non-zero exit status.
    """

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(slots=True, frozen=True)
class Step:
    """One hop on a source→sink flow path."""

    path: str
    line: int
    col: int
    note: str

    def location(self) -> str:
        return f"{normalize_path(self.path)}:{self.line}:{self.col}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "path": normalize_path(self.path),
            "line": self.line,
            "col": self.col,
            "note": self.note,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Step":
        return cls(
            path=str(data["path"]),
            line=int(data["line"]),
            col=int(data["col"]),
            note=str(data["note"]),
        )


@dataclass(slots=True, frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    path: str
    line: int
    col: int
    severity: Severity
    message: str
    fix_hint: str = ""
    trace: tuple[Step, ...] = field(default=(), compare=False)

    def fingerprint(self) -> str:
        """Stable identity for baselines: path + rule + message.

        Deliberately excludes line/column so reformatting does not
        invalidate a baseline; two identical violations in one file
        share a fingerprint and are counted (see
        :class:`~repro.lint.baseline.Baseline`).  The path component is
        normalized to repo-relative POSIX form so baselines written on
        one machine hold on another (and in CI).
        """
        raw = f"{normalize_path(self.path)}::{self.rule_id}::{self.message}"
        return hashlib.sha256(raw.encode("utf-8")).hexdigest()[:16]

    def legacy_fingerprint(self) -> str:
        """Pre-v2 fingerprint over the path exactly as reported.

        Kept so version-1 baseline files written before path
        normalization still match (the migration shim in
        :meth:`~repro.lint.baseline.Baseline.filter`).
        """
        raw = f"{self.path}::{self.rule_id}::{self.message}"
        return hashlib.sha256(raw.encode("utf-8")).hexdigest()[:16]

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict[str, Any]:
        doc: dict[str, Any] = {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity.value,
            "message": self.message,
            "fix_hint": self.fix_hint,
            "fingerprint": self.fingerprint(),
        }
        if self.trace:
            doc["trace"] = [step.to_dict() for step in self.trace]
        return doc

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Finding":
        """Inverse of :meth:`to_dict` (used by the lint cache)."""
        return cls(
            rule_id=str(data["rule"]),
            path=str(data["path"]),
            line=int(data["line"]),
            col=int(data["col"]),
            severity=Severity(data["severity"]),
            message=str(data["message"]),
            fix_hint=str(data.get("fix_hint", "")),
            trace=tuple(Step.from_dict(s) for s in data.get("trace", ())),
        )
