"""Findings model: what a lint rule reports and how it is identified.

A :class:`Finding` pins one contract violation to a ``file:line:col``
location, carries the human-facing message plus a fix hint, and derives
a *fingerprint* — a line-number-free identity used by baseline files so
that unrelated edits (which shift line numbers) do not resurrect
already-adopted findings.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from enum import Enum
from typing import Any

__all__ = ["Severity", "Finding"]


class Severity(str, Enum):
    """How hard a finding fails a run.

    In ``--strict`` mode every finding is fatal; otherwise only
    ``ERROR`` findings set a non-zero exit status.
    """

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(slots=True, frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    path: str
    line: int
    col: int
    severity: Severity
    message: str
    fix_hint: str = ""

    def fingerprint(self) -> str:
        """Stable identity for baselines: path + rule + message.

        Deliberately excludes line/column so reformatting does not
        invalidate a baseline; two identical violations in one file
        share a fingerprint and are counted (see
        :class:`~repro.lint.baseline.Baseline`).
        """
        raw = f"{self.path}::{self.rule_id}::{self.message}"
        return hashlib.sha256(raw.encode("utf-8")).hexdigest()[:16]

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity.value,
            "message": self.message,
            "fix_hint": self.fix_hint,
            "fingerprint": self.fingerprint(),
        }
