"""Per-module AST context: scopes, imports, parent links.

The rule framework walks each module's AST exactly once.  A
:class:`ModuleContext` gives every rule the shared facts it needs to
reason beyond a single node:

* the module's **dotted name** (``repro.core.pipeline``), derived from
  the ``__init__.py`` chain above the file — module-allowlist rules
  (e.g. MOS001's "only the source layer may load whole traces") key on
  it;
* an **import table** mapping local aliases to fully qualified names,
  with relative imports resolved against the module's package;
* a **scope stack** (module → class → function → comprehension) with
  the names bound in each scope, so rules can tell a module-level
  collection from a local one;
* a **parent stack**, for rules that need to know what encloses the
  node they are visiting.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Iterator

__all__ = [
    "Scope",
    "ModuleContext",
    "module_name_for_path",
    "dotted_name",
    "collect_scope_bindings",
]

#: Scope kinds that create a new namespace for name binding purposes.
_SCOPE_NODES = (
    ast.FunctionDef,
    ast.AsyncFunctionDef,
    ast.ClassDef,
    ast.Lambda,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
    ast.GeneratorExp,
)


def module_name_for_path(path: str) -> str:
    """Dotted module name of a file, derived from its package chain.

    Walks upward while the containing directory holds an
    ``__init__.py``; a file outside any package is just its stem (which
    is what the fixture corpus under ``tests/lint/`` relies on).
    """
    path = os.path.abspath(path)
    parts = [os.path.splitext(os.path.basename(path))[0]]
    parent = os.path.dirname(path)
    while os.path.isfile(os.path.join(parent, "__init__.py")):
        parts.append(os.path.basename(parent))
        parent = os.path.dirname(parent)
    if parts[0] == "__init__":
        parts = parts[1:] or [parts[0]]
    return ".".join(reversed(parts))


def dotted_name(node: ast.AST) -> str | None:
    """Render a ``Name``/``Attribute`` chain as ``a.b.c``; None otherwise."""
    parts: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        return ".".join(reversed(parts))
    return None


def collect_scope_bindings(node: ast.AST) -> dict[str, str]:
    """Names bound directly in ``node``'s scope → binding kind.

    Walks the scope's own statements without descending into nested
    scopes (their bindings belong to them).  Kinds: ``param``,
    ``assign``, ``function``, ``class``, ``import``, ``for``, ``with``,
    ``global``.
    """
    bindings: dict[str, str] = {}

    def bind_target(target: ast.AST, kind: str) -> None:
        if isinstance(target, ast.Name):
            bindings.setdefault(target.id, kind)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                bind_target(elt, kind)
        elif isinstance(target, ast.Starred):
            bind_target(target.value, kind)

    def walk(n: ast.AST) -> None:
        for child in ast.iter_child_nodes(n):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                bindings.setdefault(child.name, "function")
                continue  # nested scope: bind the name, skip the body
            if isinstance(child, ast.ClassDef):
                bindings.setdefault(child.name, "class")
                continue
            if isinstance(child, ast.Lambda):
                continue
            if isinstance(child, ast.Assign):
                for t in child.targets:
                    bind_target(t, "assign")
            elif isinstance(child, (ast.AnnAssign, ast.AugAssign)):
                bind_target(child.target, "assign")
            elif isinstance(child, (ast.For, ast.AsyncFor)):
                bind_target(child.target, "for")
            elif isinstance(child, (ast.With, ast.AsyncWith)):
                for item in child.items:
                    if item.optional_vars is not None:
                        bind_target(item.optional_vars, "with")
            elif isinstance(child, (ast.Import, ast.ImportFrom)):
                for alias in child.names:
                    local = alias.asname or alias.name.split(".")[0]
                    bindings.setdefault(local, "import")
            elif isinstance(child, (ast.Global, ast.Nonlocal)):
                for name in child.names:
                    bindings[name] = "global"
            elif isinstance(child, ast.NamedExpr):
                bind_target(child.target, "assign")
            walk(child)

    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
        args = node.args
        for a in (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        ):
            bindings[a.arg] = "param"
    if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
        for gen in node.generators:
            bind_target(gen.target, "for")
    walk(node)
    return bindings


@dataclass(slots=True)
class Scope:
    """One namespace on the scope stack."""

    kind: str  # "module" | "class" | "function" | "lambda" | "comprehension"
    node: ast.AST
    bindings: dict[str, str] = field(default_factory=dict)

    def binds(self, name: str) -> bool:
        return name in self.bindings


def _scope_kind(node: ast.AST) -> str:
    if isinstance(node, ast.Module):
        return "module"
    if isinstance(node, ast.ClassDef):
        return "class"
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return "function"
    if isinstance(node, ast.Lambda):
        return "lambda"
    return "comprehension"


@dataclass(slots=True)
class ModuleContext:
    """Everything the rules know about the module being checked."""

    path: str
    module: str
    tree: ast.Module
    source_lines: list[str]
    imports: dict[str, str] = field(default_factory=dict)
    scope_stack: list[Scope] = field(default_factory=list)
    parent_stack: list[ast.AST] = field(default_factory=list)

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, path: str, source: str, tree: ast.Module) -> "ModuleContext":
        module = module_name_for_path(path)
        ctx = cls(
            path=path,
            module=module,
            tree=tree,
            source_lines=source.splitlines(),
        )
        ctx.imports = ctx._collect_imports(tree)
        ctx.scope_stack = [
            Scope(kind="module", node=tree, bindings=collect_scope_bindings(tree))
        ]
        return ctx

    # -- imports --------------------------------------------------------
    @property
    def package(self) -> str:
        """Package a relative import resolves against."""
        parts = self.module.split(".")
        return ".".join(parts[:-1])

    def _resolve_relative(self, level: int, target: str | None) -> str:
        base = self.package.split(".") if self.package else []
        if level > 1:
            base = base[: len(base) - (level - 1)]
        if target:
            base = base + target.split(".")
        return ".".join(p for p in base if p)

    def _collect_imports(self, tree: ast.Module) -> dict[str, str]:
        table: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        table[alias.asname] = alias.name
                    else:
                        head = alias.name.split(".")[0]
                        table[head] = head
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    base = self._resolve_relative(node.level, node.module)
                else:
                    base = node.module or ""
                for alias in node.names:
                    local = alias.asname or alias.name
                    table[local] = f"{base}.{alias.name}" if base else alias.name
        return table

    def qualified(self, name: str) -> str:
        """Fully qualified form of a local name (itself if unimported)."""
        return self.imports.get(name, name)

    def qualify_node(self, node: ast.AST) -> str | None:
        """Qualified dotted name of a Name/Attribute expression.

        ``load_binary`` imported from ``repro.darshan.io_binary``
        resolves to ``repro.darshan.io_binary.load_binary``;
        ``io_binary.load_binary`` with ``from ..darshan import
        io_binary`` resolves the head through the import table.
        """
        dotted = dotted_name(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        resolved_head = self.imports.get(head, head)
        return f"{resolved_head}.{rest}" if rest else resolved_head

    # -- scopes ---------------------------------------------------------
    @property
    def scope(self) -> Scope:
        return self.scope_stack[-1]

    def enclosing_function(self) -> ast.AST | None:
        """Innermost function/lambda scope node, if any."""
        for scope in reversed(self.scope_stack):
            if scope.kind in ("function", "lambda"):
                return scope.node
        return None

    def resolves_to_module_scope(self, name: str) -> bool:
        """True when ``name`` in the current scope refers to a
        module-level binding (no intervening local binding, or an
        explicit ``global`` declaration)."""
        for scope in reversed(self.scope_stack):
            if scope.kind == "module":
                return scope.binds(name)
            if scope.kind == "class":
                continue  # class bodies do not enclose function names
            if scope.bindings.get(name) == "global":
                return self.scope_stack[0].binds(name)
            if scope.binds(name):
                return False
        return False

    def binding_kind(self, name: str) -> str | None:
        """Kind of the binding ``name`` resolves to, innermost first."""
        for scope in reversed(self.scope_stack):
            if scope.kind == "class" and scope is not self.scope_stack[-1]:
                continue
            if scope.binds(name):
                return scope.bindings[name]
        return None

    def name_is_nested_function(self, name: str) -> bool:
        """True when ``name`` resolves to a ``def`` inside a function
        scope — i.e. a callable that cannot be pickled for a process
        pool."""
        for scope in reversed(self.scope_stack):
            if scope.binds(name):
                return (
                    scope.bindings[name] == "function"
                    and scope.kind in ("function", "lambda")
                )
        return False

    # -- parents --------------------------------------------------------
    def parents(self) -> Iterator[ast.AST]:
        """Enclosing nodes, innermost first (excluding the current node)."""
        return reversed(self.parent_stack)

    def parent(self) -> ast.AST | None:
        return self.parent_stack[-1] if self.parent_stack else None

    # -- driver hooks ---------------------------------------------------
    def push(self, node: ast.AST) -> None:
        self.parent_stack.append(node)
        if isinstance(node, _SCOPE_NODES):
            self.scope_stack.append(
                Scope(
                    kind=_scope_kind(node),
                    node=node,
                    bindings=collect_scope_bindings(node),
                )
            )

    def pop(self, node: ast.AST) -> None:
        self.parent_stack.pop()
        if isinstance(node, _SCOPE_NODES):
            self.scope_stack.pop()
