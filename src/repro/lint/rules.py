"""Rule base class, registry, and the single-pass AST driver.

Rules follow the flake8-plugin shape: a rule class declares handler
methods named ``on_<NodeType>`` (called before children are visited)
and ``after_<NodeType>`` (called once the subtree is done); the
:class:`Checker` walks the module AST exactly once and dispatches every
node to every active rule, maintaining the shared
:class:`~repro.lint.context.ModuleContext` (scopes, parents, imports)
between callbacks.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Callable, Union

from .context import ModuleContext
from .findings import Finding, Severity, Step

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .project import ProjectIndex

__all__ = [
    "Rule",
    "ProjectRule",
    "Checker",
    "REGISTRY",
    "register",
    "all_rule_ids",
]

#: rule id → rule class, populated by :func:`register`.  Holds both
#: per-module rules (``scope == "module"``, driven by the Checker) and
#: whole-program rules (``scope == "project"``, driven by the engine
#: after the :class:`~repro.lint.project.ProjectIndex` is built).
REGISTRY: dict[str, Union[type["Rule"], type["ProjectRule"]]] = {}


def register(
    cls: Union[type["Rule"], type["ProjectRule"]],
) -> Union[type["Rule"], type["ProjectRule"]]:
    """Class decorator adding a rule to the global registry."""
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if cls.id in REGISTRY:
        raise ValueError(f"duplicate rule id: {cls.id}")
    REGISTRY[cls.id] = cls
    return cls


def all_rule_ids() -> list[str]:
    """Registered rule ids in sorted order."""
    return sorted(REGISTRY)


class Rule:
    """One invariant check.

    Subclasses set the class attributes and implement ``on_*`` /
    ``after_*`` handlers.  ``self.ctx`` is the shared module context;
    findings go through :meth:`report`.
    """

    id: str = ""
    name: str = ""
    description: str = ""
    severity: Severity = Severity.WARNING
    fix_hint: str = ""
    #: "module" rules run per file through the Checker; "project" rules
    #: (see :class:`ProjectRule`) run once over the whole ProjectIndex.
    scope: str = "module"

    def __init__(self, ctx: ModuleContext, findings: list[Finding]):
        self.ctx = ctx
        self._findings = findings

    def report(
        self, node: ast.AST, message: str, fix_hint: str | None = None
    ) -> None:
        self._findings.append(
            Finding(
                rule_id=self.id,
                path=self.ctx.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                severity=self.severity,
                message=message,
                fix_hint=self.fix_hint if fix_hint is None else fix_hint,
            )
        )

    # Optional whole-module hooks.
    def begin_module(self) -> None:
        """Called once before the walk starts."""

    def end_module(self) -> None:
        """Called once after the walk finishes."""


class ProjectRule:
    """One whole-program invariant check.

    Where :class:`Rule` sees one module at a time, a ProjectRule's
    :meth:`check` receives the :class:`~repro.lint.project.ProjectIndex`
    — module graph, resolved call graph, per-function facts — and may
    report findings in any indexed file, optionally carrying a
    source→sink :class:`~repro.lint.findings.Step` trace.
    """

    id: str = ""
    name: str = ""
    description: str = ""
    severity: Severity = Severity.WARNING
    fix_hint: str = ""
    scope: str = "project"

    def __init__(self, findings: list[Finding]):
        self._findings = findings

    def report(
        self,
        path: str,
        node: ast.AST,
        message: str,
        *,
        trace: tuple[Step, ...] = (),
        fix_hint: str | None = None,
    ) -> None:
        self._findings.append(
            Finding(
                rule_id=self.id,
                path=path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                severity=self.severity,
                message=message,
                fix_hint=self.fix_hint if fix_hint is None else fix_hint,
                trace=trace,
            )
        )

    def check(self, index: "ProjectIndex") -> None:
        raise NotImplementedError


class Checker:
    """Single-pass driver: one AST walk, all rules dispatched per node."""

    def __init__(self, ctx: ModuleContext, rules: list[Rule]):
        self.ctx = ctx
        self.rules = rules
        # Pre-resolve handler tables so the walk does one dict lookup
        # per (rule, node-type) instead of repeated getattr calls.
        self._on: dict[str, list[Callable[[ast.AST], None]]] = {}
        self._after: dict[str, list[Callable[[ast.AST], None]]] = {}
        for rule in rules:
            for attr in dir(rule):
                if attr.startswith("on_"):
                    self._on.setdefault(attr[3:], []).append(getattr(rule, attr))
                elif attr.startswith("after_"):
                    self._after.setdefault(attr[6:], []).append(getattr(rule, attr))

    def run(self) -> None:
        for rule in self.rules:
            rule.begin_module()
        self._visit(self.ctx.tree)
        for rule in self.rules:
            rule.end_module()

    def _visit(self, node: ast.AST) -> None:
        kind = type(node).__name__
        for handler in self._on.get(kind, ()):
            handler(node)
        self.ctx.push(node)
        for child in ast.iter_child_nodes(node):
            self._visit(child)
        self.ctx.pop(node)
        for handler in self._after.get(kind, ()):
            handler(node)
