"""Adopt-then-ratchet baselines.

A baseline file records the fingerprints of findings a team has
*adopted* — debt acknowledged but not yet paid down.  Runs filter
adopted findings out, so the build stays green while any **new**
violation still fails; deleting entries (or the whole file) ratchets
the debt downward.

Fingerprints are line-number-free (see
:meth:`repro.lint.findings.Finding.fingerprint`) and counted: a file
with three identical violations baselines all three, and a fourth
occurrence is new.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field

from .findings import Finding

__all__ = ["Baseline"]

_VERSION = 1


@dataclass(slots=True)
class Baseline:
    """Fingerprint → adopted-occurrence count."""

    counts: dict[str, int] = field(default_factory=dict)

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        return cls(counts=dict(Counter(f.fingerprint() for f in findings)))

    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
        if data.get("version") != _VERSION:
            raise ValueError(
                f"unsupported baseline version {data.get('version')!r} in {path}"
            )
        counts = data.get("fingerprints", {})
        if not isinstance(counts, dict):
            raise ValueError(f"malformed baseline file: {path}")
        return cls(counts={str(k): int(v) for k, v in counts.items()})

    def save(self, path: str) -> None:
        payload = {
            "version": _VERSION,
            "fingerprints": dict(sorted(self.counts.items())),
        }
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")

    def filter(self, findings: list[Finding]) -> tuple[list[Finding], int]:
        """(new findings, number suppressed by this baseline).

        Findings are matched in order; once a fingerprint's adopted
        count is exhausted, further occurrences are new.
        """
        budget = dict(self.counts)
        kept: list[Finding] = []
        suppressed = 0
        for finding in findings:
            fp = finding.fingerprint()
            if budget.get(fp, 0) > 0:
                budget[fp] -= 1
                suppressed += 1
            else:
                kept.append(finding)
        return kept, suppressed
