"""Adopt-then-ratchet baselines.

A baseline file records the fingerprints of findings a team has
*adopted* — debt acknowledged but not yet paid down.  Runs filter
adopted findings out, so the build stays green while any **new**
violation still fails; deleting entries (or the whole file) ratchets
the debt downward.

Fingerprints are line-number-free (see
:meth:`repro.lint.findings.Finding.fingerprint`) and counted: a file
with three identical violations baselines all three, and a fourth
occurrence is new.

Format versions: version 2 fingerprints hash repo-relative POSIX paths
so a baseline written on one machine (or OS) matches on another.
Version-1 files — written before path normalization, possibly with
absolute or backslash paths baked into the hashes — still load; their
entries are matched through :meth:`Finding.legacy_fingerprint` and are
rewritten in the portable form on the next ``--write-baseline``.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field

from ..io import atomic_write_text
from .findings import Finding

__all__ = ["Baseline"]

_VERSION = 2
_LEGACY_VERSIONS = frozenset({1})


@dataclass(slots=True)
class Baseline:
    """Fingerprint → adopted-occurrence count."""

    counts: dict[str, int] = field(default_factory=dict)
    #: True when loaded from a pre-normalization (version-1) file, whose
    #: fingerprints may embed machine-specific paths.
    legacy: bool = False

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        return cls(counts=dict(Counter(f.fingerprint() for f in findings)))

    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
        version = data.get("version")
        if version != _VERSION and version not in _LEGACY_VERSIONS:
            raise ValueError(
                f"unsupported baseline version {version!r} in {path}"
            )
        counts = data.get("fingerprints", {})
        if not isinstance(counts, dict):
            raise ValueError(f"malformed baseline file: {path}")
        return cls(
            counts={str(k): int(v) for k, v in counts.items()},
            legacy=version in _LEGACY_VERSIONS,
        )

    def save(self, path: str) -> None:
        payload = {
            "version": _VERSION,
            "fingerprints": dict(sorted(self.counts.items())),
        }
        atomic_write_text(
            path, json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )

    def filter(self, findings: list[Finding]) -> tuple[list[Finding], int]:
        """(new findings, number suppressed by this baseline).

        Findings are matched in order; once a fingerprint's adopted
        count is exhausted, further occurrences are new.  A legacy
        (version-1) baseline is also probed with the un-normalized
        fingerprint each finding would have had when the file was
        written, so old baselines keep working until re-adopted.
        """
        budget = dict(self.counts)
        kept: list[Finding] = []
        suppressed = 0
        for finding in findings:
            candidates = [finding.fingerprint()]
            if self.legacy:
                legacy_fp = finding.legacy_fingerprint()
                if legacy_fp != candidates[0]:
                    candidates.append(legacy_fp)
            for fp in candidates:
                if budget.get(fp, 0) > 0:
                    budget[fp] -= 1
                    suppressed += 1
                    break
            else:
                kept.append(finding)
        return kept, suppressed
