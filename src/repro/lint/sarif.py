"""SARIF 2.1.0 output for ``repro lint``.

SARIF (Static Analysis Results Interchange Format) is what code
scanning UIs ingest — GitHub's security tab, VS Code SARIF viewers, CI
annotation bots.  One run object carries the tool's rule catalogue
(from the live registry, so descriptions never drift), one ``result``
per finding, and — for the flow-sensitive rules — a ``codeFlows``
thread walking the source→sink :class:`~repro.lint.findings.Step`
chain.
"""

from __future__ import annotations

import json
from typing import Any

from .engine import LintResult
from .findings import Finding, Severity, normalize_path
from .rules import REGISTRY

__all__ = ["render_sarif"]

_SARIF_VERSION = "2.1.0"
_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _level(severity: Severity) -> str:
    return "error" if severity is Severity.ERROR else "warning"


def _location(path: str, line: int, col: int, message: str | None = None) -> dict[str, Any]:
    loc: dict[str, Any] = {
        "physicalLocation": {
            "artifactLocation": {"uri": normalize_path(path)},
            "region": {"startLine": line, "startColumn": col},
        }
    }
    if message is not None:
        loc["message"] = {"text": message}
    return loc


def _code_flow(finding: Finding) -> dict[str, Any]:
    return {
        "threadFlows": [
            {
                "locations": [
                    {
                        "location": _location(
                            step.path, step.line, step.col, step.note
                        )
                    }
                    for step in finding.trace
                ]
            }
        ]
    }


def _result(finding: Finding) -> dict[str, Any]:
    result: dict[str, Any] = {
        "ruleId": finding.rule_id,
        "level": _level(finding.severity),
        "message": {"text": finding.message},
        "locations": [_location(finding.path, finding.line, finding.col)],
        "partialFingerprints": {"mosaicFingerprint/v2": finding.fingerprint()},
    }
    if finding.trace:
        result["codeFlows"] = [_code_flow(finding)]
    return result


def _rule_descriptor(rule_id: str) -> dict[str, Any]:
    cls = REGISTRY[rule_id]
    descriptor: dict[str, Any] = {
        "id": rule_id,
        "name": cls.name,
        "shortDescription": {"text": cls.description},
        "defaultConfiguration": {"level": _level(cls.severity)},
    }
    if cls.fix_hint:
        descriptor["help"] = {"text": cls.fix_hint}
    return descriptor


def render_sarif(result: LintResult, tool_version: str = "0") -> str:
    doc = {
        "$schema": _SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": (
                            "https://example.invalid/mosaic-repro/docs/LINT.md"
                        ),
                        "version": tool_version,
                        "rules": [
                            _rule_descriptor(rule_id)
                            for rule_id in sorted(REGISTRY)
                        ],
                    }
                },
                "results": [_result(f) for f in result.findings],
            }
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"
