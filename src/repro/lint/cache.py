"""Content-hash lint cache: warm runs skip re-analysis.

Two granularities, both keyed on content — never on mtimes:

* **per-file** — module-rule findings (post-suppression) keyed by the
  file's content hash; editing one file re-lints only that file;
* **project** — whole-program findings keyed by the hash of the entire
  indexed file set (every path + its content hash), since any edit
  anywhere can change a cross-file flow.

The cache file also records the active rule set and an engine version;
a mismatch in either invalidates everything, so changing ``--select``
or upgrading the engine never serves stale findings.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from ..io import atomic_write_text
from .findings import Finding, normalize_path

__all__ = ["LintCache"]

_FORMAT_VERSION = 1

#: Bump when rule/engine semantics change so stale caches self-invalidate.
ENGINE_VERSION = "2"


class LintCache:
    """JSON-backed findings cache for :func:`~repro.lint.engine.lint_paths`."""

    def __init__(self, path: str, key: str):
        self.path = path
        self.key = key
        self.files: dict[str, dict[str, Any]] = {}
        self.project: dict[str, Any] | None = None
        self._dirty = False

    # ------------------------------------------------------------------
    @classmethod
    def rules_key(cls, active_rule_ids: list[str]) -> str:
        raw = ENGINE_VERSION + ":" + ",".join(sorted(active_rule_ids))
        return hashlib.sha256(raw.encode("utf-8")).hexdigest()[:16]

    @classmethod
    def project_key(cls, hashes: dict[str, str]) -> str:
        h = hashlib.sha256()
        for path in sorted(hashes):
            h.update(f"{normalize_path(path)}={hashes[path]}\n".encode("utf-8"))
        return h.hexdigest()[:24]

    @classmethod
    def load(cls, path: str, active_rule_ids: list[str]) -> "LintCache":
        """Load ``path``; silently start empty on any mismatch or damage."""
        key = cls.rules_key(active_rule_ids)
        cache = cls(path, key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            return cache
        if (
            not isinstance(data, dict)
            or data.get("format") != _FORMAT_VERSION
            or data.get("rules_key") != key
        ):
            return cache
        files = data.get("files", {})
        if isinstance(files, dict):
            cache.files = {
                str(k): v for k, v in files.items() if isinstance(v, dict)
            }
        project = data.get("project")
        if isinstance(project, dict):
            cache.project = project
        return cache

    def save(self) -> None:
        if not self._dirty:
            return
        payload = {
            "format": _FORMAT_VERSION,
            "rules_key": self.key,
            "files": self.files,
            "project": self.project,
        }
        try:
            atomic_write_text(self.path, json.dumps(payload, sort_keys=True))
        except OSError:
            # A cache that cannot be written is a performance loss, not
            # a correctness problem (StorageError is an OSError, and
            # atomic_write cleans up its own temp file).
            pass

    # -- per-file -------------------------------------------------------
    def file_hit(
        self, path: str, sha: str
    ) -> tuple[list[Finding], int] | None:
        entry = self.files.get(normalize_path(path))
        if entry is None or entry.get("sha") != sha:
            return None
        try:
            findings = [Finding.from_dict(d) for d in entry.get("findings", [])]
            return findings, int(entry.get("n_suppressed", 0))
        except (KeyError, TypeError, ValueError):
            return None

    def store_file(
        self, path: str, sha: str, findings: list[Finding], n_suppressed: int
    ) -> None:
        self.files[normalize_path(path)] = {
            "sha": sha,
            "findings": [f.to_dict() for f in findings],
            "n_suppressed": n_suppressed,
        }
        self._dirty = True

    # -- project --------------------------------------------------------
    def project_hit(self, key: str) -> tuple[list[Finding], int] | None:
        if self.project is None or self.project.get("key") != key:
            return None
        try:
            findings = [
                Finding.from_dict(d) for d in self.project.get("findings", [])
            ]
            return findings, int(self.project.get("n_suppressed", 0))
        except (KeyError, TypeError, ValueError):
            return None

    def store_project(
        self, key: str, findings: list[Finding], n_suppressed: int
    ) -> None:
        self.project = {
            "key": key,
            "findings": [f.to_dict() for f in findings],
            "n_suppressed": n_suppressed,
        }
        self._dirty = True
