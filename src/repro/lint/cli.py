"""The ``lint`` subcommand: argument wiring and run orchestration.

Kept separate from :mod:`repro.cli.main` so the engine is usable
without argparse and the CLI stays a thin shell: parse flags, build a
:class:`~repro.lint.engine.LintConfig`, run, render, exit.
"""

from __future__ import annotations

import argparse
import sys
import textwrap

from ..io import atomic_write_text
from .baseline import Baseline
from .engine import LintConfig, lint_paths
from .reporters import render_json, render_text
from .rules import REGISTRY, all_rule_ids
from .sarif import render_sarif

__all__ = ["add_lint_subparser", "cmd_lint"]


def add_lint_subparser(sub: "argparse._SubParsersAction") -> None:
    lint = sub.add_parser(
        "lint",
        help="check Mosaic pipeline contracts (MOS001-MOS018)",
        description="AST-based invariant analysis: streaming discipline, "
        "exhaustive Violation handling, tolerance-based timestamp "
        "comparison, guarded divisions, named thresholds, plus "
        "whole-program dataflow rules (taint, fork safety, governor "
        "coverage, exception routing).  See docs/LINT.md.",
    )
    lint.add_argument(
        "paths", nargs="*", default=["src"], help="files/directories (default: src)"
    )
    lint.add_argument(
        "--strict",
        action="store_true",
        help="fail on warnings too, not only errors",
    )
    lint.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text", dest="fmt"
    )
    lint.add_argument(
        "--select", help="comma-separated rule ids to run (default: all)"
    )
    lint.add_argument("--ignore", help="comma-separated rule ids to skip")
    lint.add_argument("--baseline", help="baseline file of adopted findings")
    lint.add_argument(
        "--write-baseline",
        metavar="PATH",
        help="adopt every current finding into PATH and exit 0",
    )
    lint.add_argument(
        "--sarif",
        metavar="PATH",
        help="additionally write a SARIF 2.1.0 report to PATH",
    )
    lint.add_argument(
        "--cache",
        metavar="PATH",
        help="content-hash findings cache: warm runs skip re-analysis "
        "of unchanged files (and of the whole project phase when "
        "nothing changed)",
    )
    lint.add_argument(
        "--explain",
        metavar="RULE_ID",
        help="print one rule's full contract, then run only that rule "
        "over the paths with source→sink path traces",
    )
    lint.add_argument(
        "--no-hints", action="store_true", help="omit fix hints from text output"
    )
    lint.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )


def _parse_ids(raw: str | None) -> frozenset[str]:
    if not raw:
        return frozenset()
    return frozenset(part.strip().upper() for part in raw.split(",") if part.strip())


def _list_rules() -> int:
    for rule_id in all_rule_ids():
        cls = REGISTRY[rule_id]
        print(f"{rule_id}  {cls.severity.value:7s}  {cls.name}: {cls.description}")
    return 0


def _print_explanation(rule_id: str) -> None:
    cls = REGISTRY[rule_id]
    doc = textwrap.dedent("    " + (cls.__doc__ or "")).strip()
    print(f"{rule_id} — {cls.name} ({cls.severity.value})")
    print()
    print(doc)
    if cls.fix_hint:
        print()
        print(f"fix: {cls.fix_hint}")
    print()


def cmd_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        return _list_rules()
    select = _parse_ids(args.select)
    explain_id: str | None = None
    if args.explain:
        explain_id = args.explain.strip().upper()
        if explain_id not in REGISTRY:
            raise SystemExit(
                f"lint: unknown rule id {explain_id!r} "
                f"(try --list-rules)"
            )
        _print_explanation(explain_id)
        select = frozenset({explain_id})
    config = LintConfig(
        select=select or None,
        ignore=_parse_ids(args.ignore),
        strict=args.strict,
    )
    baseline = None
    if args.baseline and not args.write_baseline:
        try:
            baseline = Baseline.load(args.baseline)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"cannot load baseline {args.baseline!r}: {exc}") from exc
    try:
        result = lint_paths(
            list(args.paths), config, baseline, cache_path=args.cache
        )
    except (FileNotFoundError, ValueError) as exc:
        raise SystemExit(f"lint: {exc}") from exc

    if args.write_baseline:
        Baseline.from_findings(result.findings).save(args.write_baseline)
        print(
            f"adopted {len(result.findings)} finding(s) into {args.write_baseline}"
        )
        return 0

    if args.sarif:
        atomic_write_text(args.sarif, render_sarif(result))

    if args.fmt == "json":
        sys.stdout.write(render_json(result))
    elif args.fmt == "sarif":
        sys.stdout.write(render_sarif(result))
    else:
        sys.stdout.write(render_text(result, show_hints=not args.no_hints))
    return result.exit_code(args.strict)
