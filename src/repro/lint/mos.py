"""The Mosaic contract rules (MOS001-MOS013, MOS018-MOS020).

Each rule encodes one invariant the paper states but Python cannot
enforce; the registry in :mod:`repro.lint.rules` exposes them to the
engine.  Rules are heuristic by design — they resolve imports and
scopes, but when a construct is too dynamic to reason about they stay
silent rather than cry wolf (a lint rule that needs routine
suppressions stops being read).
"""

from __future__ import annotations

import ast
import re

from .context import dotted_name
from .findings import Severity
from .rules import Rule, register

__all__ = ["ENUM_TABLES"]

# -- shared lexicons ----------------------------------------------------

#: Terminal identifiers that denote event timestamps or offsets.
_TIME_RE = re.compile(
    r"(^|_)(start|end|time|timestamp|offset|period|duration)s?(_|$)|^t[01]$"
)

#: Terminal identifiers that denote durations, byte counts, or other
#: zero-prone extensive quantities used as denominators.
_DENOM_RE = re.compile(
    r"(^|_)(duration|time|seconds|bytes|total|volume|span|count|size|length|denom|mean)s?(_|$)"
)

#: Enum classes whose dispatches must be exhaustive (MOS003), mapped to
#: their member names.  Resolved from the live taxonomy so the rule can
#: never drift from the code it guards.
def _enum_tables() -> dict[str, frozenset[str]]:
    from ..core.categories import Axis, Category
    from ..darshan.validate import Violation

    return {
        "Violation": frozenset(m.name for m in Violation),
        "Category": frozenset(m.name for m in Category),
        "Axis": frozenset(m.name for m in Axis),
    }


ENUM_TABLES = _enum_tables()

#: Frozen record types (MOS006): class name → defining module.
_PROTECTED_TYPES = {
    "JobMeta": "repro.darshan.records",
    "FileRecord": "repro.darshan.records",
    "CategorizationResult": "repro.core.result",
}

#: Attribute names whose value is known to be a protected record type.
_PROTECTED_ATTRS = {"meta": "JobMeta"}

#: Methods in which a class may assign to ``self``.
_CTOR_METHODS = frozenset({"__init__", "__post_init__", "__new__", "__setstate__"})


def _terminal(dotted: str) -> str:
    return dotted.rpartition(".")[2]


def _dotted_names_in(node: ast.AST) -> set[str]:
    """All dotted Name/Attribute chains inside an expression."""
    found: set[str] = set()
    for n in ast.walk(node):
        if isinstance(n, (ast.Name, ast.Attribute)):
            d = dotted_name(n)
            if d:
                found.add(d)
    return found


def _is_max_like_call(node: ast.AST) -> bool:
    """True for ``max(...)`` / ``np.maximum(...)`` / ``np.clip(...)`` —
    expressions that establish a floor and therefore guard a division."""
    if not isinstance(node, ast.Call):
        return False
    name = dotted_name(node.func)
    return name is not None and _terminal(name) in ("max", "maximum", "clip")


# ======================================================================
@register
class WholeTraceLoadRule(Rule):
    """MOS001: whole-trace loads only inside the TraceSource layer.

    ``load_binary``/``load_text``/``load_json`` materialize an entire
    decoded trace.  Since the streaming-corpus refactor, only
    ``repro.darshan.source`` (and the defining io modules) may call
    them; everything else must go through a lazy
    :class:`~repro.darshan.source.TraceSource`, or the bounded-memory
    guarantee of the pipeline silently becomes O(corpus).
    """

    id = "MOS001"
    name = "whole-trace-load"
    description = "load_binary/load_text/load_json outside repro.darshan.source"
    severity = Severity.ERROR
    fix_hint = (
        "iterate a TraceSource (DirectorySource/InMemorySource) or use "
        "load_binary_meta for header-only access"
    )

    _TARGETS = frozenset({"load_binary", "load_text", "load_json"})
    _ALLOWED_MODULES = frozenset(
        {
            "repro.darshan",
            "repro.darshan.source",
            "repro.darshan.io_binary",
            "repro.darshan.io_text",
            "repro.darshan.io_json",
        }
    )

    def _allowed(self) -> bool:
        return self.ctx.module in self._ALLOWED_MODULES

    def on_ImportFrom(self, node: ast.ImportFrom) -> None:
        if self._allowed():
            return
        if node.level:
            base = self.ctx._resolve_relative(node.level, node.module)
        else:
            base = node.module or ""
        if not base.startswith("repro.darshan"):
            return
        for alias in node.names:
            if alias.name in self._TARGETS:
                self.report(
                    node,
                    f"import of whole-trace loader {alias.name!r} outside "
                    "the TraceSource layer",
                )

    def on_Call(self, node: ast.Call) -> None:
        if self._allowed():
            return
        qualified = self.ctx.qualify_node(node.func)
        if qualified is None:
            return
        if (
            qualified.startswith("repro.darshan")
            and _terminal(qualified) in self._TARGETS
        ):
            self.report(
                node,
                f"whole-trace load {_terminal(qualified)}() outside the "
                "TraceSource layer",
            )


# ======================================================================
@register
class UnboundedAccumulationRule(Rule):
    """MOS002: no unbounded accumulation into pipeline-scope collections.

    Appending to a module-level collection from inside a function is
    how O(corpus) memory sneaks back into streaming stages: the list
    outlives every call and grows with the corpus.  Streaming state
    must live in bounded per-run structures (dedup refs, counters).
    """

    id = "MOS002"
    name = "unbounded-accumulation"
    description = "append/extend on module-scope collections inside functions"
    severity = Severity.ERROR
    fix_hint = (
        "keep per-run state on a context object with bounded size, or "
        "yield results instead of accumulating them"
    )

    _MUTATORS = frozenset({"append", "extend", "insert", "add", "update", "appendleft"})

    def on_Call(self, node: ast.Call) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in self._MUTATORS:
            return
        if not isinstance(func.value, ast.Name):
            return
        if self.ctx.enclosing_function() is None:
            return  # module-level one-time initialization is fine
        name = func.value.id
        if self.ctx.resolves_to_module_scope(name):
            self.report(
                node,
                f"{func.attr}() on module-scope collection {name!r} inside "
                "a function grows without bound across the corpus",
            )


# ======================================================================
@register
class ExhaustiveEnumDispatchRule(Rule):
    """MOS003: dispatches over the corruption/category taxonomies must be
    exhaustive or carry an explicit default.

    A new ``Violation`` or ``Category`` member silently falls through
    any if/elif chain or ``match`` that enumerates members without a
    default — exactly how trace-analysis tools rot when the corruption
    taxonomy grows.
    """

    id = "MOS003"
    name = "exhaustive-enum-dispatch"
    description = "non-exhaustive dispatch over Violation/Category/Axis"
    severity = Severity.ERROR
    fix_hint = (
        "add an else/`case _` default or cover every member of the enum"
    )

    #: Enum classes this rule's dispatch check covers; subclasses
    #: (MOS011) swap in their own taxonomy.
    tables: dict[str, frozenset[str]] = ENUM_TABLES

    # -- if/elif chains -------------------------------------------------
    def on_If(self, node: ast.If) -> None:
        parent = self.ctx.parent()
        if (
            isinstance(parent, ast.If)
            and len(parent.orelse) == 1
            and parent.orelse[0] is node
        ):
            return  # elif continuation; the chain head already handled it
        branches: list[ast.expr] = []
        cur: ast.If | None = node
        final_orelse: list[ast.stmt] = []
        while cur is not None:
            branches.append(cur.test)
            if len(cur.orelse) == 1 and isinstance(cur.orelse[0], ast.If):
                cur = cur.orelse[0]
            else:
                final_orelse = cur.orelse
                cur = None
        if len(branches) < 2 or final_orelse:
            return
        subject: str | None = None
        enum_name: str | None = None
        covered: set[str] = set()
        for test in branches:
            parsed = self._parse_branch(test)
            if parsed is None:
                return  # not an enum dispatch chain
            branch_subject, branch_enum, members = parsed
            if subject is None:
                subject, enum_name = branch_subject, branch_enum
            elif subject != branch_subject or enum_name != branch_enum:
                return
            covered |= members
        assert enum_name is not None
        missing = self.tables[enum_name] - covered
        if missing:
            self.report(
                node,
                f"if/elif over {enum_name} covers {len(covered)} of "
                f"{len(self.tables[enum_name])} members with no else "
                f"(missing: {', '.join(sorted(missing))})",
            )

    def _parse_branch(
        self, test: ast.expr
    ) -> tuple[str, str, set[str]] | None:
        """(subject, enum, members) of one enum-comparison test."""
        if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.Or):
            subject = enum = None
            members: set[str] = set()
            for value in test.values:
                parsed = self._parse_branch(value)
                if parsed is None:
                    return None
                s, e, m = parsed
                if subject is None:
                    subject, enum = s, e
                elif subject != s or enum != e:
                    return None
                members |= m
            if subject is None or enum is None:
                return None
            return subject, enum, members
        if not isinstance(test, ast.Compare) or len(test.ops) != 1:
            return None
        subject_name = dotted_name(test.left)
        if subject_name is None:
            return None
        op = test.ops[0]
        comparator = test.comparators[0]
        if isinstance(op, (ast.Eq, ast.Is)):
            member = self._enum_member(comparator)
            if member is None:
                return None
            return subject_name, member[0], {member[1]}
        if isinstance(op, ast.In) and isinstance(
            comparator, (ast.Tuple, ast.List, ast.Set)
        ):
            enum = None
            members = set()
            for elt in comparator.elts:
                m = self._enum_member(elt)
                if m is None:
                    return None
                if enum is None:
                    enum = m[0]
                elif enum != m[0]:
                    return None
                members.add(m[1])
            if enum is None:
                return None
            return subject_name, enum, members
        return None

    def _enum_member(self, node: ast.AST) -> tuple[str, str] | None:
        """(enum, member) for ``Violation.UNREADABLE``-style accesses."""
        if not isinstance(node, ast.Attribute):
            return None
        base = dotted_name(node.value)
        if base is None:
            return None
        enum = _terminal(base)
        if enum in self.tables and node.attr in self.tables[enum]:
            return enum, node.attr
        return None

    # -- match statements ----------------------------------------------
    def on_Match(self, node: ast.Match) -> None:
        enum_name: str | None = None
        covered: set[str] = set()
        for case in node.cases:
            if self._is_wildcard(case.pattern):
                return  # explicit default
            members = self._pattern_members(case.pattern)
            if members is None:
                return  # not a pure enum dispatch
            enum, names = members
            if enum_name is None:
                enum_name = enum
            elif enum_name != enum:
                return
            covered |= names
        if enum_name is None:
            return
        missing = self.tables[enum_name] - covered
        if missing:
            self.report(
                node,
                f"match over {enum_name} covers {len(covered)} of "
                f"{len(self.tables[enum_name])} members with no `case _` "
                f"(missing: {', '.join(sorted(missing))})",
            )

    @staticmethod
    def _is_wildcard(pattern: ast.pattern) -> bool:
        return isinstance(pattern, ast.MatchAs) and pattern.pattern is None

    def _pattern_members(
        self, pattern: ast.pattern
    ) -> tuple[str, set[str]] | None:
        if isinstance(pattern, ast.MatchValue):
            member = self._enum_member(pattern.value)
            if member is None:
                return None
            return member[0], {member[1]}
        if isinstance(pattern, ast.MatchOr):
            enum = None
            names: set[str] = set()
            for sub in pattern.patterns:
                m = self._pattern_members(sub)
                if m is None:
                    return None
                if enum is None:
                    enum = m[0]
                elif enum != m[0]:
                    return None
                names |= m[1]
            if enum is None:
                return None
            return enum, names
        return None


# ======================================================================
@register
class FloatTimestampEqualityRule(Rule):
    """MOS004: no ``==``/``!=`` on timestamps, offsets, or durations.

    Darshan timestamps survive several float round-trips (binary pack,
    JSON, merging arithmetic); exact equality is a latent
    platform-dependent bug.  Compare with
    :func:`repro.core.thresholds.close_to` instead.
    """

    id = "MOS004"
    name = "float-timestamp-equality"
    description = "exact ==/!= comparison on timestamp-like values"
    severity = Severity.WARNING
    fix_hint = "use repro.core.thresholds.close_to(a, b) with an explicit tolerance"

    def on_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for i, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            left, right = operands[i], operands[i + 1]
            if self._is_exempt(left) or self._is_exempt(right):
                continue
            for side in (left, right):
                name = dotted_name(side)
                if name is not None and _TIME_RE.search(_terminal(name)):
                    self.report(
                        node,
                        f"exact {'==' if isinstance(op, ast.Eq) else '!='} "
                        f"on timestamp-like value {name!r}",
                    )
                    break

    @staticmethod
    def _is_exempt(node: ast.AST) -> bool:
        """Comparisons against strings/None are identity checks, not
        float comparisons."""
        return isinstance(node, ast.Constant) and (
            node.value is None or isinstance(node.value, str)
        )


# ======================================================================
@register
class UnguardedDivisionRule(Rule):
    """MOS005: divisions by durations/byte counts must be guarded.

    Zero-length windows and empty segments are *data* at corpus scale
    (instantaneous Darshan timestamps, all-metadata traces); dividing
    by them must be explicitly handled, not left to ``ZeroDivisionError``
    or a silent NaN.
    """

    id = "MOS005"
    name = "unguarded-division"
    description = "division by a duration/byte-count with no visible guard"
    severity = Severity.WARNING
    fix_hint = (
        "guard the denominator (`x / d if d > 0 else 0.0`, max(d, eps), "
        "or np.where) or raise a typed error"
    )

    def begin_module(self) -> None:
        self._guard_cache: dict[int, set[str]] = {}

    def on_BinOp(self, node: ast.BinOp) -> None:
        if not isinstance(node.op, (ast.Div, ast.FloorDiv, ast.Mod)):
            return
        denom = node.right
        name = dotted_name(denom)
        if name is None:
            return  # calls/expressions as denominators: out of scope
        terminal = _terminal(name)
        if not (
            terminal == "n" or terminal.startswith("n_") or _DENOM_RE.search(terminal)
        ):
            return
        head = name.split(".", 1)[0]
        if head in ("config", "cfg") or name.startswith(("self.config.", "self.cfg.")):
            return  # thresholds are validated positive at construction
        func = self.ctx.enclosing_function()
        scope_node = func if func is not None else self.ctx.tree
        guards = self._guards_for(scope_node)
        if name in guards or terminal in guards:
            return
        self.report(
            node,
            f"division by {name!r} with no guard against a zero-length "
            "window or empty segment",
        )

    def _guards_for(self, scope_node: ast.AST) -> set[str]:
        key = id(scope_node)
        cached = self._guard_cache.get(key)
        if cached is not None:
            return cached
        guards: set[str] = set()
        for n in ast.walk(scope_node):
            if isinstance(n, (ast.If, ast.While, ast.IfExp)):
                guards |= _dotted_names_in(n.test)
            elif isinstance(n, ast.Assert):
                guards |= _dotted_names_in(n.test)
            elif isinstance(n, ast.Compare):
                guards |= _dotted_names_in(n)
            elif isinstance(n, ast.comprehension):
                for if_clause in n.ifs:
                    guards |= _dotted_names_in(if_clause)
            elif isinstance(n, ast.Assign) and (
                _is_max_like_call(n.value)
                or (
                    isinstance(n.value, ast.Constant)
                    and isinstance(n.value.value, (int, float))
                    and n.value.value != 0
                )
            ):
                # assigned from max()/np.maximum()/a nonzero literal:
                # provably bounded away from zero
                for target in n.targets:
                    d = dotted_name(target)
                    if d:
                        guards.add(d)
        # guard names are matched by terminal too, so `self.x` checks
        # guard `x` read through an alias
        guards |= {_terminal(g) for g in guards}
        self._guard_cache[key] = guards
        return guards


# ======================================================================
@register
class FrozenRecordMutationRule(Rule):
    """MOS006: record types are immutable outside their constructors.

    ``JobMeta``/``FileRecord``/``CategorizationResult`` flow through
    the multiprocess pipeline and are shared across passes; in-place
    mutation corrupts dedup weights and cached statistics.  Two layers
    are sanctioned: :mod:`repro.darshan.repair` (operates on deep
    copies by contract) and the ``repro.synth`` generator (it *builds*
    records and owns them exclusively until they are serialized).
    """

    id = "MOS006"
    name = "frozen-record-mutation"
    description = "attribute assignment on JobMeta/FileRecord/CategorizationResult"
    severity = Severity.ERROR
    fix_hint = "build a new record (dataclasses.replace) instead of mutating"

    _ALLOWED_MODULES = frozenset({"repro.darshan.repair"})
    _ALLOWED_PREFIXES = ("repro.synth.",)

    def begin_module(self) -> None:
        self._env_stack: list[dict[str, str]] = [{}]

    # -- type environment ----------------------------------------------
    def on_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._env_stack.append(self._infer_types(node))

    def after_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._env_stack.pop()

    on_AsyncFunctionDef = on_FunctionDef
    after_AsyncFunctionDef = after_FunctionDef

    def _infer_types(self, func: ast.FunctionDef) -> dict[str, str]:
        env: dict[str, str] = {}
        for arg in (
            list(func.args.posonlyargs) + list(func.args.args) + list(func.args.kwonlyargs)
        ):
            if arg.annotation is not None:
                ann = dotted_name(arg.annotation)
                if ann and _terminal(ann) in _PROTECTED_TYPES:
                    env[arg.arg] = _terminal(ann)
        for n in ast.walk(func):
            if isinstance(n, ast.Assign) and isinstance(n.value, ast.Call):
                callee = dotted_name(n.value.func)
                if callee and _terminal(callee) in _PROTECTED_TYPES:
                    for target in n.targets:
                        if isinstance(target, ast.Name):
                            env[target.id] = _terminal(callee)
            elif isinstance(n, (ast.For, ast.AsyncFor)):
                iter_name = dotted_name(n.iter)
                if (
                    iter_name
                    and _terminal(iter_name) == "records"
                    and isinstance(n.target, ast.Name)
                ):
                    env[n.target.id] = "FileRecord"
        return env

    # -- mutation detection ---------------------------------------------
    def on_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_target(target, node)

    def on_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_target(node.target, node)

    def _check_target(self, target: ast.AST, node: ast.AST) -> None:
        if not isinstance(target, ast.Attribute):
            return
        if self.ctx.module in self._ALLOWED_MODULES or self.ctx.module.startswith(
            self._ALLOWED_PREFIXES
        ):
            return
        protected = self._protected_type_of(target.value)
        if protected is None:
            return
        if self._in_own_constructor(target.value, protected):
            return
        self.report(
            node,
            f"mutation of frozen record type {protected}.{target.attr} "
            "outside its constructor",
        )

    def _protected_type_of(self, base: ast.AST) -> str | None:
        """Inferred protected class of the expression being assigned to."""
        if isinstance(base, ast.Name):
            inferred = self._env_stack[-1].get(base.id)
            if inferred is not None:
                return inferred
        if isinstance(base, ast.Attribute):
            if base.attr in _PROTECTED_ATTRS:
                return _PROTECTED_ATTRS[base.attr]
        dotted = dotted_name(base)
        if dotted == "self":
            cls = self._enclosing_class_name()
            if cls in _PROTECTED_TYPES:
                return cls
        return None

    def _enclosing_class_name(self) -> str | None:
        for scope in reversed(self.ctx.scope_stack):
            if scope.kind == "class":
                return getattr(scope.node, "name", None)
        return None

    def _in_own_constructor(self, base: ast.AST, protected: str) -> bool:
        """``self.x = ...`` inside the protected class's own ctor."""
        if dotted_name(base) != "self":
            return False
        if self._enclosing_class_name() != protected:
            return False
        func = self.ctx.enclosing_function()
        return getattr(func, "name", "") in _CTOR_METHODS


# ======================================================================
@register
class PicklableCallableRule(Rule):
    """MOS007: callables shipped to the process pool must be picklable.

    ``parallel_map``/``parallel_imap`` pickle their function once per
    worker; a lambda or nested ``def`` raises ``PicklingError`` only
    when ``max_workers > 1`` — i.e. in production, never in serial
    tests.
    """

    id = "MOS007"
    name = "picklable-callable"
    description = "lambda or nested function passed to parallel_map/parallel_imap"
    severity = Severity.ERROR
    fix_hint = (
        "hoist the callable to module level (functools.partial over a "
        "module-level function is fine)"
    )

    _TARGETS = frozenset({"parallel_map", "parallel_imap"})

    def on_Call(self, node: ast.Call) -> None:
        callee = dotted_name(node.func)
        if callee is None or _terminal(callee) not in self._TARGETS:
            return
        fn_arg = self._fn_argument(node)
        if fn_arg is None:
            return
        problem = self._unpicklable_reason(fn_arg)
        if problem:
            self.report(node, problem)

    @staticmethod
    def _fn_argument(node: ast.Call) -> ast.AST | None:
        if node.args:
            return node.args[0]
        for kw in node.keywords:
            if kw.arg == "fn":
                return kw.value
        return None

    def _unpicklable_reason(self, fn_arg: ast.AST) -> str | None:
        if isinstance(fn_arg, ast.Lambda):
            return "lambda passed to the process pool cannot be pickled"
        if isinstance(fn_arg, ast.Call):
            callee = dotted_name(fn_arg.func)
            if callee and _terminal(callee) == "partial" and fn_arg.args:
                return self._unpicklable_reason(fn_arg.args[0])
            return None
        if isinstance(fn_arg, ast.Name):
            name = fn_arg.id
            if self.ctx.name_is_nested_function(name):
                return (
                    f"nested function {name!r} passed to the process pool "
                    "cannot be pickled"
                )
            reason = self._traced_assignment(name)
            if reason:
                return reason
        return None

    def _traced_assignment(self, name: str) -> str | None:
        """Follow one level of local assignment: ``fn = lambda ...`` or
        ``fn = partial(nested, ...)``."""
        func = self.ctx.enclosing_function()
        if func is None:
            return None
        for n in ast.walk(func):
            if not isinstance(n, ast.Assign):
                continue
            for target in n.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    if isinstance(n.value, ast.Lambda):
                        return (
                            f"{name!r} is a lambda and cannot be pickled "
                            "for the process pool"
                        )
                    if isinstance(n.value, ast.Call):
                        return self._unpicklable_reason(n.value)
        return None


# ======================================================================
@register
class InlineThresholdRule(Rule):
    """MOS008: categorization thresholds come from ``core.thresholds``.

    The categorizer/temporality/periodicity/metadata modules implement
    the paper's decision rules; every cutoff they compare against must
    be a named ``MosaicConfig`` field so calibration sweeps and the
    paper's "extended or narrowed" 100 MB rule stay possible.
    """

    id = "MOS008"
    name = "inline-threshold"
    description = "magic-number comparison in a categorization module"
    severity = Severity.WARNING
    fix_hint = "name the threshold as a MosaicConfig field and compare against config"

    _MODULE_SUFFIXES = ("categorizer", "temporality", "periodicity", "metadata")
    #: Structural constants that are not thresholds.
    _ALLOWED = frozenset({0, 1, 2, -1, 0.0, 1.0, -1.0})

    def _applies(self) -> bool:
        leaf = self.ctx.module.rpartition(".")[2]
        return leaf.endswith(self._MODULE_SUFFIXES)

    def on_Compare(self, node: ast.Compare) -> None:
        if not self._applies():
            return
        operands = [node.left, *node.comparators]
        if all(isinstance(o, ast.Constant) for o in operands):
            return  # constant-folded asserts aren't thresholds
        for operand in operands:
            if (
                isinstance(operand, ast.Constant)
                and isinstance(operand.value, (int, float))
                and not isinstance(operand.value, bool)
                and operand.value not in self._ALLOWED
            ):
                self.report(
                    node,
                    f"inline threshold {operand.value!r} in a "
                    "categorization decision rule",
                )


# ======================================================================
@register
class SwallowedErrorRule(Rule):
    """MOS009: no bare ``except``; corruption errors only vanish in the
    scan path.

    ``TraceFormatError`` is *data* during the preprocessing scan (it
    feeds the ``Violation.UNREADABLE`` funnel counter) but a bug
    everywhere else; catching it without re-raising outside the scan
    path hides corpus corruption from the funnel.
    """

    id = "MOS009"
    name = "swallowed-error"
    description = "bare except, or TraceFormatError swallowed outside the scan path"
    severity = Severity.ERROR
    fix_hint = (
        "catch a specific exception; re-raise TraceFormatError or count "
        "it via the scan-path funnel"
    )

    _SCAN_PATH_MODULES = frozenset(
        {
            "repro.core.preprocess",
            "repro.core.pipeline",
            "repro.core.stream",
            "repro.darshan.source",
            "repro.cli.main",
            # the fuzz harness *counts* clean rejections: TraceFormatError
            # is its expected outcome, not a swallowed failure
            "repro.fuzz.harness",
            "repro.fuzz.corpus",
        }
    )

    def on_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.report(node, "bare except: hides every failure, including corruption")
            return
        caught = {
            _terminal(d)
            for d in _dotted_names_in(node.type)
        }
        if "TraceFormatError" not in caught:
            return
        if self.ctx.module in self._SCAN_PATH_MODULES:
            return
        has_raise = any(isinstance(n, ast.Raise) for n in ast.walk(node))
        if not has_raise:
            self.report(
                node,
                "TraceFormatError swallowed outside the scan path; "
                "corruption must reach the funnel or be re-raised",
            )


# ======================================================================
@register
class PublicApiAnnotationRule(Rule):
    """MOS010: public API functions carry complete type annotations.

    Applies to ``repro.core`` and ``repro.darshan`` (the package's
    typed public surface, shipped with ``py.typed``); every public
    function/method must annotate all parameters and the return type so
    ``mypy --strict`` holds the boundary.
    """

    id = "MOS010"
    name = "public-api-annotations"
    description = "missing parameter/return annotations on a public API function"
    severity = Severity.WARNING
    fix_hint = "annotate every parameter and the return type"

    def _applies(self) -> bool:
        mod = self.ctx.module
        if mod.startswith("repro."):
            return mod.startswith(("repro.core", "repro.darshan"))
        return True  # standalone modules (the fixture corpus) are checked

    def on_FunctionDef(self, node: ast.FunctionDef) -> None:
        if not self._applies() or node.name.startswith("_"):
            return
        # only module-level functions and methods of public classes
        parent = self.ctx.parent()
        if isinstance(parent, ast.ClassDef) and parent.name.startswith("_"):
            return
        if not isinstance(parent, (ast.Module, ast.ClassDef)):
            return  # nested helpers are not public API
        missing: list[str] = []
        args = node.args
        positional = list(args.posonlyargs) + list(args.args)
        for i, arg in enumerate(positional):
            if i == 0 and isinstance(parent, ast.ClassDef) and arg.arg in ("self", "cls"):
                continue
            if arg.annotation is None:
                missing.append(arg.arg)
        for arg in args.kwonlyargs:
            if arg.annotation is None:
                missing.append(arg.arg)
        for arg in (args.vararg, args.kwarg):
            if arg is not None and arg.annotation is None:
                missing.append(f"*{arg.arg}")
        if node.returns is None:
            missing.append("return")
        if missing:
            self.report(
                node,
                f"public function {node.name}() missing annotations: "
                + ", ".join(missing),
            )

    on_AsyncFunctionDef = on_FunctionDef


# ======================================================================
def _failure_kind_table() -> dict[str, frozenset[str]]:
    from ..parallel.retry import FailureKind

    return {"FailureKind": frozenset(m.name for m in FailureKind)}


@register
class ResilienceContractRule(ExhaustiveEnumDispatchRule):
    """MOS011: the resilience layer's contracts hold outside it.

    Two invariants (docs/ROBUSTNESS.md):

    * Dispatches over the :class:`~repro.parallel.retry.FailureKind`
      taxonomy must be exhaustive or carry a default — a new failure
      kind must not silently fall through quarantine/report logic.
    * ``Future.result()`` without a ``timeout`` may block forever on a
      hung worker; outside ``repro.parallel`` (whose resilient executor
      owns deadline handling) every ``.result()`` on a future must
      bound its wait.
    """

    id = "MOS011"
    name = "resilience-contract"
    description = (
        "non-exhaustive FailureKind dispatch, or Future.result() "
        "without a timeout outside repro.parallel"
    )
    severity = Severity.ERROR
    fix_hint = (
        "cover every FailureKind (or add a default); pass "
        "result(timeout=...) — only the resilient executor may wait "
        "unboundedly"
    )

    tables = _failure_kind_table()

    _FUTURE_RE = re.compile(r"(^|_)(fut|future)s?(_|$)")

    def on_Call(self, node: ast.Call) -> None:
        if self.ctx.module.startswith("repro.parallel"):
            return
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr != "result":
            return
        if node.args or any(kw.arg == "timeout" for kw in node.keywords):
            return
        if self._is_future(func.value):
            self.report(
                node,
                "Future.result() with no timeout can block forever on a "
                "hung worker; pass timeout=... (see docs/ROBUSTNESS.md)",
            )

    def _is_future(self, base: ast.AST) -> bool:
        """Heuristic: the receiver is (or was assigned from) a pool
        future.  Dynamic receivers stay silent rather than cry wolf."""
        if isinstance(base, ast.Call):
            callee = dotted_name(base.func)
            return callee is not None and _terminal(callee) == "submit"
        name = dotted_name(base)
        if name is not None and self._FUTURE_RE.search(_terminal(name)):
            return True
        if isinstance(base, ast.Name):
            func = self.ctx.enclosing_function()
            if func is None:
                return False
            for n in ast.walk(func):
                if not isinstance(n, ast.Assign):
                    continue
                if not (
                    isinstance(n.value, ast.Call)
                    and isinstance(n.value.func, ast.Attribute)
                    and n.value.func.attr == "submit"
                ):
                    continue
                for target in n.targets:
                    if isinstance(target, ast.Name) and target.id == base.id:
                        return True
        return False


# ======================================================================
def _degradation_table() -> dict[str, frozenset[str]]:
    from ..core.governor import DegradationLevel

    return {"DegradationLevel": frozenset(m.name for m in DegradationLevel)}


@register
class InputHardeningRule(ExhaustiveEnumDispatchRule):
    """MOS012: the input-hardening contracts hold (docs/ROBUSTNESS.md).

    Two invariants introduced with the degradation ladder:

    * Dispatches over :class:`~repro.core.governor.DegradationLevel`
      must be exhaustive or carry a default — a new ladder rung must
      not silently fall through report/metric/journal logic.
    * Inside ``repro.darshan`` no ``.read(n)`` may size its allocation
      from an untrusted (header-declared) value: the size must be a
      constant, reference a decode limit/cap/budget, or the call must
      live in the ``_read_exact``/``_read_checked`` chokepoints that
      validate ``n`` against what actually remains.  Believing a length
      field is how the pre-hardening allocation bomb worked.
    """

    id = "MOS012"
    name = "input-hardening"
    description = (
        "non-exhaustive DegradationLevel dispatch, or read() sized by "
        "an untrusted value in repro.darshan"
    )
    severity = Severity.ERROR
    fix_hint = (
        "cover every DegradationLevel (or add a default); size reads "
        "from DecodeLimits and route them through _read_checked"
    )

    tables = _degradation_table()

    #: The sanctioned chokepoints: they validate the requested size
    #: against the bytes actually remaining before allocating.
    _READ_CHOKEPOINTS = frozenset({"_read_exact", "_read_checked"})
    #: Size expressions referencing a declared bound are trusted.
    _BOUNDED_RE = re.compile(r"(^|_)(limit|cap|budget|remaining|max)s?(_|$)")

    def _read_check_applies(self) -> bool:
        mod = self.ctx.module
        if mod.startswith("repro."):
            return mod.startswith("repro.darshan")
        return True  # standalone modules (the fixture corpus) are checked

    def on_Call(self, node: ast.Call) -> None:
        if not self._read_check_applies():
            return
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr != "read":
            return
        if not node.args:
            return  # whole-file read: bounded by on-disk size, not a header
        size = node.args[0]
        if isinstance(size, ast.Constant):
            return
        enclosing = self.ctx.enclosing_function()
        if getattr(enclosing, "name", "") in self._READ_CHOKEPOINTS:
            return
        for name in _dotted_names_in(size):
            for part in name.split("."):
                if self._BOUNDED_RE.search(part):
                    return
        self.report(
            node,
            "read() sized by an untrusted value allocates whatever a "
            "header declares; route it through _read_checked or bound "
            "it by a DecodeLimits field",
        )


# ======================================================================
@register
class StoreBoundedIORule(Rule):
    """MOS013: the columnar store is mmap'd, never slurped.

    ``repro.columnar`` exists to be zero-copy: every section is viewed
    through one mmap whose geometry and CRCs were validated against
    ``DecodeLimits`` at attach time (docs/COLUMNAR.md).  Materializing
    a store with ``np.load``/``np.fromfile``, or slurping it through an
    argument-less ``.read()`` with no ``DecodeLimits``-derived cap in
    sight, allocates whatever an adversarial file declares before a
    single validation runs — the exact failure mode the attach sequence
    exists to prevent.
    """

    id = "MOS013"
    name = "store-bounded-io"
    description = (
        "whole-store np.load/np.fromfile or unbounded read() in "
        "repro.columnar without a DecodeLimits bound"
    )
    severity = Severity.ERROR
    fix_hint = (
        "view sections through the validated mmap (CorpusStore/attach); "
        "bound any raw read by a DecodeLimits field first"
    )

    #: Calls that materialize a whole file/section in one allocation.
    _SLURP_FUNCS = frozenset(
        {"np.load", "numpy.load", "np.fromfile", "numpy.fromfile"}
    )
    #: Identifiers that evidence a declared bound (same lexicon as the
    #: MOS012 sized-read check).
    _BOUNDED_RE = re.compile(r"(^|_)(limit|cap|budget|remaining|max)s?(_|$)")

    def _applies(self) -> bool:
        mod = self.ctx.module
        if mod.startswith("repro."):
            return mod.startswith("repro.columnar")
        return True  # standalone modules (the fixture corpus) are checked

    def _bounded_enclosing(self) -> bool:
        """True when the enclosing function references any bound-like
        name — a size-vs-cap check before the slurp counts."""
        fn = self.ctx.enclosing_function()
        if fn is None:
            return False
        for name in _dotted_names_in(fn):
            for part in name.split("."):
                if self._BOUNDED_RE.search(part):
                    return True
        return False

    def on_Call(self, node: ast.Call) -> None:
        if not self._applies():
            return
        name = dotted_name(node.func)
        if name in self._SLURP_FUNCS:
            self.report(
                node,
                f"{name}() materializes a whole store section in one "
                "allocation, bypassing the geometry and CRC validation "
                "of the attach path",
            )
            return
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "read"
            and not node.args
            and not self._bounded_enclosing()
        ):
            self.report(
                node,
                "argument-less read() slurps the entire file before any "
                "geometry or CRC validation; check its size against a "
                "DecodeLimits cap first",
            )


# ======================================================================
@register
class DurableWriteRule(Rule):
    """MOS018: persistence modules write through :mod:`repro.io` only.

    Every durable artifact — compiled stores, journals, caches,
    baselines, exports, results — must go through the VFS seam
    (``atomic_write*`` / ``durable_append`` / ``get_io()``), which is
    what makes the crash-consistency guarantees of docs/ROBUSTNESS.md
    ("Storage fault model") enforceable and chaos-testable.  A direct
    ``open(..., "w")`` or ``os.rename``/``os.replace`` in a persistence
    module is a write the storage-chaos suite cannot reach and a crash
    window the atomicity argument does not cover.

    Scope: ``repro.columnar``, ``repro.parallel``, ``repro.lint``,
    ``repro.viz``, ``repro.core``, ``repro.cli``.  The seam itself
    (``repro.io``), the chaos injector (``repro.testing``), the trace
    codecs (``repro.darshan`` writes synthetic fixtures, not durable
    state), and the fuzzer's reproducer dumps (``repro.fuzz``) are out
    of scope.
    """

    id = "MOS018"
    name = "durable-write"
    description = (
        "direct open(w)/os.rename in a persistence module bypasses the "
        "repro.io durability seam"
    )
    severity = Severity.ERROR
    fix_hint = (
        "write through repro.io: atomic_write*/durable_append, or the "
        "active FaultableIO from get_io()"
    )

    #: Module prefixes whose writes are durable artifacts.
    _PERSISTENCE_PREFIXES = (
        "repro.columnar",
        "repro.parallel",
        "repro.lint",
        "repro.viz",
        "repro.core",
        "repro.cli",
    )
    _RENAME_FUNCS = frozenset({"os.rename", "os.replace"})

    def _applies(self) -> bool:
        mod = self.ctx.module
        if mod.startswith("repro."):
            return mod.startswith(self._PERSISTENCE_PREFIXES)
        return True  # standalone modules (the fixture corpus) are checked

    @staticmethod
    def _write_mode(node: ast.Call) -> str | None:
        """The constant mode string when it requests writing, else None."""
        mode: ast.expr | None = None
        if len(node.args) >= 2:
            mode = node.args[1]
        else:
            for kw in node.keywords:
                if kw.arg == "mode":
                    mode = kw.value
        if not isinstance(mode, ast.Constant) or not isinstance(
            mode.value, str
        ):
            return None
        if any(flag in mode.value for flag in ("w", "a", "x", "+")):
            return mode.value
        return None

    def on_Call(self, node: ast.Call) -> None:
        if not self._applies():
            return
        name = dotted_name(node.func)
        if name in self._RENAME_FUNCS:
            self.report(
                node,
                f"{name}() publishes an artifact outside the repro.io "
                "seam; use atomic_write* (rename + dir fsync) or the "
                "active FaultableIO",
            )
            return
        if name in ("open", "io.open", "gzip.open"):
            mode = self._write_mode(node)
            if mode is not None:
                self.report(
                    node,
                    f"open(..., {mode!r}) writes durable state directly; "
                    "route it through repro.io (atomic_write*/"
                    "durable_append) so chaos tests cover it",
                )


# ======================================================================
@register
class AsyncBlockingIORule(Rule):
    """MOS019: no blocking I/O in ``repro.service`` coroutines.

    The categorization server runs one asyncio event loop; a single
    blocking call inside a coroutine — a file ``open``, a ``time.sleep``,
    a pipeline run, a durable append — stalls *every* connected client
    for its duration, which is how an async server quietly becomes a
    serial one.  The service's contract is that all blocking work
    crosses the loop boundary through ``run_in_executor`` (passing the
    blocking callable by reference, which this rule does not flag);
    coroutines themselves only await.

    Scope: ``repro.service`` modules (and the standalone fixture
    corpus).  Only calls whose innermost enclosing function is an
    ``async def`` are findings — synchronous helpers in the same module
    are executor-side by construction.
    """

    id = "MOS019"
    name = "async-blocking-io"
    description = (
        "blocking I/O call inside an async def in repro.service stalls "
        "the event loop"
    )
    severity = Severity.ERROR
    fix_hint = (
        "move the blocking call into a sync helper and await "
        "loop.run_in_executor(None, helper, ...)"
    )

    #: Exact qualified callables that block (after import resolution).
    _BLOCKING_EXACT = frozenset(
        {
            "open",
            "io.open",
            "gzip.open",
            "time.sleep",
            "os.open",
            "os.fdopen",
            "os.makedirs",
            "os.mkdir",
            "os.replace",
            "os.rename",
            "os.unlink",
            "os.remove",
            "os.rmdir",
            "os.stat",
            "os.listdir",
            "os.scandir",
            "os.fsync",
            "os.utime",
            "os.truncate",
            "os.path.exists",
            "os.path.isfile",
            "os.path.isdir",
            "os.path.getsize",
            "os.path.getmtime",
        }
    )
    #: Qualified prefixes that are blocking wholesale.
    _BLOCKING_PREFIXES = ("shutil.", "subprocess.", "repro.io.")
    #: Terminal names of repro APIs that are always blocking, wherever
    #: they were imported from (covers method spellings like
    #: ``self._registry.append_line``).
    _BLOCKING_TERMINALS = frozenset(
        {
            "run_pipeline",
            "run_pipeline_store",
            "run_pipeline_stream",
            "compile_corpus",
            "save_results_jsonl",
            "atomic_write",
            "atomic_write_text",
            "atomic_write_bytes",
            "durable_append",
            "append_line",
        }
    )

    def _applies(self) -> bool:
        mod = self.ctx.module
        if mod.startswith("repro."):
            return mod.startswith("repro.service")
        return True  # standalone modules (the fixture corpus) are checked

    def _in_async_function(self) -> bool:
        """True when the innermost function scope is an ``async def``."""
        fn = self.ctx.enclosing_function()
        return isinstance(fn, ast.AsyncFunctionDef)

    def on_Call(self, node: ast.Call) -> None:
        if not self._applies() or not self._in_async_function():
            return
        name = self.ctx.qualify_node(node.func)
        if name is None or name.startswith("asyncio."):
            return
        blocking = (
            name in self._BLOCKING_EXACT
            or name.startswith(self._BLOCKING_PREFIXES)
            or _terminal(name) in self._BLOCKING_TERMINALS
        )
        if blocking:
            self.report(
                node,
                f"{name}() blocks the event loop from inside a "
                "coroutine: every connected client waits while it runs",
            )


# ======================================================================
@register
class UnboundedStreamReadRule(Rule):
    """MOS020: every awaited stream read in ``repro.service`` carries a
    deadline.

    A bare ``await reader.readline()`` (or ``read`` / ``readexactly`` /
    ``readuntil``) waits as long as the peer cares to stall it — the
    slow-loris posture: one client trickling a byte a minute pins a
    coroutine, and enough of them pin the server.  The service's
    admission contract gives every socket read a budget, so each such
    await must be bounded: wrapped in ``asyncio.wait_for(...)`` (which
    makes the read an argument, not a bare await) or executed under an
    ``async with asyncio.timeout(...)`` block.

    Scope: ``repro.service`` modules (and the standalone fixture
    corpus), same as MOS019 — client-side ``http.client`` reads are
    synchronous and socket-timeout-bounded, not this rule's concern.
    """

    id = "MOS020"
    name = "unbounded-stream-read"
    description = (
        "awaited stream read without a deadline in repro.service lets "
        "a slow-loris peer pin the coroutine"
    )
    severity = Severity.ERROR
    fix_hint = (
        "bound the read: await asyncio.wait_for(reader.read...(...), "
        "timeout) or run it under async with asyncio.timeout(...)"
    )

    #: Awaited method names that read from a peer-paced stream.
    _READ_METHODS = frozenset({"read", "readline", "readexactly", "readuntil"})

    def _applies(self) -> bool:
        mod = self.ctx.module
        if mod.startswith("repro."):
            return mod.startswith("repro.service")
        return True  # standalone modules (the fixture corpus) are checked

    def _under_timeout_block(self) -> bool:
        """True inside ``async with asyncio.timeout(...)/timeout_at(...)``."""
        for ancestor in self.ctx.parents():
            if not isinstance(ancestor, ast.AsyncWith):
                continue
            for item in ancestor.items:
                expr = item.context_expr
                if not isinstance(expr, ast.Call):
                    continue
                name = self.ctx.qualify_node(expr.func)
                if name in ("asyncio.timeout", "asyncio.timeout_at"):
                    return True
        return False

    def on_Await(self, node: ast.Await) -> None:
        if not self._applies():
            return
        call = node.value
        if not isinstance(call, ast.Call) or not isinstance(
            call.func, ast.Attribute
        ):
            return
        if call.func.attr not in self._READ_METHODS:
            return
        if self._under_timeout_block():
            return
        self.report(
            node,
            f"await ...{call.func.attr}() has no deadline: a stalled "
            "peer holds this coroutine (and its admission slot) forever",
        )
