"""File discovery, suppression comments, and the lint entry point.

:func:`lint_paths` is the programmatic face of ``repro lint``: it
expands the given files/directories, parses each module once, runs
every selected per-module rule through the single-pass
:class:`~repro.lint.rules.Checker`, builds one
:class:`~repro.lint.project.ProjectIndex` over every parsed module and
runs the whole-program rules (MOS014–MOS017) on it, drops findings
suppressed inline (``# mosaic: disable=MOS005``) or by a baseline, and
returns a :class:`LintResult` the reporters and the CLI share.

Warm runs can skip both phases per file: pass ``cache_path`` and the
engine keys module findings on each file's content hash and project
findings on the hash of the whole indexed file set (see
:mod:`repro.lint.cache`).
"""

from __future__ import annotations

import ast
import os
import re
import tokenize
from dataclasses import dataclass, field

from .baseline import Baseline
from .context import ModuleContext
from .findings import Finding, Severity
from .project import ProjectIndex, source_hash
from .rules import REGISTRY, Checker, ProjectRule, Rule

__all__ = ["LintConfig", "LintResult", "lint_paths", "check_source"]

#: Inline suppression: ``# mosaic: disable`` (all rules on this line) or
#: ``# mosaic: disable=MOS001,MOS005``.
_SUPPRESS_RE = re.compile(
    r"#\s*mosaic:\s*disable(?:\s*=\s*(?P<rules>[A-Z0-9,\s]+))?", re.IGNORECASE
)

#: Rule id for files the engine itself cannot process.
PARSE_ERROR_RULE = "MOS000"


@dataclass(slots=True, frozen=True)
class LintConfig:
    """What to check and how hard to fail."""

    select: frozenset[str] | None = None  # None → every registered rule
    ignore: frozenset[str] = frozenset()
    strict: bool = False

    def active_rule_ids(self) -> list[str]:
        ids = sorted(self.select) if self.select is not None else sorted(REGISTRY)
        unknown = (set(ids) | set(self.ignore)) - set(REGISTRY)
        if unknown:
            raise ValueError(f"unknown rule ids: {', '.join(sorted(unknown))}")
        return [i for i in ids if i not in self.ignore]

    def module_rule_ids(self) -> list[str]:
        return [
            i for i in self.active_rule_ids() if REGISTRY[i].scope == "module"
        ]

    def project_rule_ids(self) -> list[str]:
        return [
            i for i in self.active_rule_ids() if REGISTRY[i].scope == "project"
        ]


@dataclass(slots=True)
class LintResult:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    n_files: int = 0
    n_suppressed: int = 0  # inline `# mosaic: disable` comments
    n_baselined: int = 0  # adopted via a baseline file

    def failed(self, strict: bool) -> bool:
        if strict:
            return bool(self.findings)
        return any(f.severity is Severity.ERROR for f in self.findings)

    def exit_code(self, strict: bool) -> int:
        return 1 if self.failed(strict) else 0


def discover_files(paths: list[str]) -> list[str]:
    """Python files under the given files/directories, sorted."""
    files: list[str] = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)
        elif os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs if not d.startswith(".") and d != "__pycache__"
                )
                files.extend(
                    os.path.join(root, n) for n in sorted(names) if n.endswith(".py")
                )
        else:
            raise FileNotFoundError(path)
    return sorted(dict.fromkeys(files))


def _suppressions_for(source: str) -> dict[int, frozenset[str] | None]:
    """line → suppressed rule ids (None = every rule) from comments.

    Tokenizes rather than regex-scanning raw lines so a suppression
    marker inside a string literal does not silence anything.
    """
    table: dict[int, frozenset[str] | None] = {}
    try:
        tokens = tokenize.generate_tokens(iter(source.splitlines(True)).__next__)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if not match:
                continue
            rules = match.group("rules")
            if rules is None:
                table[tok.start[0]] = None
            else:
                ids = frozenset(
                    r.strip().upper() for r in rules.split(",") if r.strip()
                )
                existing = table.get(tok.start[0], frozenset())
                table[tok.start[0]] = (
                    None if existing is None else existing | ids
                )
    except tokenize.TokenError:
        pass  # the parse error is reported separately
    return table


def _expand_suppression_spans(
    tree: ast.Module, table: dict[int, frozenset[str] | None]
) -> dict[int, frozenset[str] | None]:
    """Widen suppressions to cover whole decorated statements.

    A finding can anchor to a decorator line (MOS007 reporting the
    ``@wraps`` line of a nested def) while the ``# mosaic: disable``
    comment sits on the ``def`` line — or vice versa.  Any suppression
    on any line of a decorated ``def``/``class`` statement (first
    decorator through the end of the signature) covers the whole span.
    """
    if not table:
        return table
    expanded = dict(table)
    for node in ast.walk(tree):
        if not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        if not node.decorator_list:
            continue
        start = min(d.lineno for d in node.decorator_list)
        end = node.lineno
        if node.body:
            # Multi-line signatures: the statement runs up to the line
            # before the first body statement (same line for one-liners).
            end = max(end, node.body[0].lineno - 1)
        span = range(start, end + 1)
        merged: frozenset[str] | None = frozenset()
        found = False
        for line in span:
            if line not in table:
                continue
            found = True
            ids = table[line]
            if ids is None or merged is None:
                merged = None
            else:
                merged = merged | ids
        if not found:
            continue
        for line in span:
            existing = expanded.get(line, frozenset())
            if merged is None or existing is None:
                expanded[line] = None
            else:
                expanded[line] = existing | merged
    return expanded


def _apply_suppressions(
    findings: list[Finding],
    suppressions: dict[int, frozenset[str] | None],
) -> tuple[list[Finding], int]:
    if not suppressions:
        return findings, 0
    kept: list[Finding] = []
    n_suppressed = 0
    for finding in findings:
        suppressed_ids = suppressions.get(finding.line, frozenset())
        if suppressed_ids is None or finding.rule_id in suppressed_ids:
            n_suppressed += 1
        else:
            kept.append(finding)
    return kept, n_suppressed


def _parse_error_finding(path: str, exc: SyntaxError) -> Finding:
    return Finding(
        rule_id=PARSE_ERROR_RULE,
        path=path,
        line=exc.lineno or 1,
        col=(exc.offset or 0) + 1,
        severity=Severity.ERROR,
        message=f"cannot parse module: {exc.msg}",
        fix_hint="fix the syntax error; unparseable files are unchecked",
    )


def _run_module_rules(
    ctx: ModuleContext, rule_ids: list[str]
) -> list[Finding]:
    findings: list[Finding] = []
    rules: list[Rule] = [REGISTRY[rule_id](ctx, findings) for rule_id in rule_ids]
    Checker(ctx, rules).run()
    return findings


def _run_project_rules(
    index: ProjectIndex, rule_ids: list[str]
) -> list[Finding]:
    findings: list[Finding] = []
    for rule_id in rule_ids:
        rule = REGISTRY[rule_id](findings)
        assert isinstance(rule, ProjectRule)
        rule.check(index)
    return findings


def check_source(
    path: str, source: str, config: LintConfig | None = None
) -> tuple[list[Finding], int]:
    """Lint one module's source; (findings, inline-suppressed count).

    Runs the per-module rules plus the project rules over a
    single-module index — interprocedural flows within the file are
    still found, cross-file ones need :func:`lint_paths`.
    """
    config = config or LintConfig()
    module_ids = config.module_rule_ids()
    project_ids = config.project_rule_ids()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [_parse_error_finding(path, exc)], 0
    ctx = ModuleContext.build(path, source, tree)
    findings = _run_module_rules(ctx, module_ids)
    if project_ids:
        index = ProjectIndex.build([(path, source, tree, ctx)])
        findings.extend(_run_project_rules(index, project_ids))
    suppressions = _expand_suppression_spans(tree, _suppressions_for(source))
    findings.sort(key=lambda f: (f.line, f.col, f.rule_id))
    return _apply_suppressions(findings, suppressions)


def lint_paths(
    paths: list[str],
    config: LintConfig | None = None,
    baseline: Baseline | None = None,
    cache_path: str | None = None,
) -> LintResult:
    """Lint every Python file under ``paths``.

    Phases: read + hash every file; run per-module rules (cache hits
    skip this per file); build one ProjectIndex over every parseable
    module and run the whole-program rules (a project-level cache hit —
    same file set, same contents, same active rules — skips indexing
    entirely); apply inline suppressions; apply the baseline.
    """
    from .cache import LintCache  # local import: cache is optional plumbing

    config = config or LintConfig()
    module_ids = config.module_rule_ids()
    project_ids = config.project_rule_ids()
    cache = (
        LintCache.load(cache_path, config.active_rule_ids())
        if cache_path
        else None
    )
    result = LintResult()

    sources: dict[str, str] = {}
    hashes: dict[str, str] = {}
    trees: dict[str, ast.Module] = {}
    contexts: dict[str, ModuleContext] = {}
    per_file: dict[str, tuple[list[Finding], int]] = {}

    def ensure_parsed(path: str) -> bool:
        """Parse ``path`` once; False (with a finding) on syntax error."""
        if path in trees:
            return True
        try:
            tree = ast.parse(sources[path], filename=path)
        except SyntaxError:
            return False
        trees[path] = tree
        contexts[path] = ModuleContext.build(path, sources[path], tree)
        return True

    files = discover_files(paths)
    for path in files:
        with open(path, "r", encoding="utf-8") as fh:
            sources[path] = fh.read()
        hashes[path] = source_hash(sources[path])
        result.n_files += 1

    # -- per-module phase ----------------------------------------------
    for path in files:
        if cache is not None:
            hit = cache.file_hit(path, hashes[path])
            if hit is not None:
                per_file[path] = hit
                continue
        try:
            tree = ast.parse(sources[path], filename=path)
        except SyntaxError as exc:
            per_file[path] = ([_parse_error_finding(path, exc)], 0)
            continue
        trees[path] = tree
        contexts[path] = ModuleContext.build(path, sources[path], tree)
        findings = _run_module_rules(contexts[path], module_ids)
        suppressions = _expand_suppression_spans(
            tree, _suppressions_for(sources[path])
        )
        per_file[path] = _apply_suppressions(findings, suppressions)
        if cache is not None:
            cache.store_file(path, hashes[path], *per_file[path])

    all_findings: list[Finding] = []
    for path in files:
        findings, n_suppressed = per_file[path]
        all_findings.extend(findings)
        result.n_suppressed += n_suppressed

    # -- project phase -------------------------------------------------
    if project_ids and files:
        project_key = LintCache.project_key(
            {path: hashes[path] for path in files}
        )
        cached_project = (
            cache.project_hit(project_key) if cache is not None else None
        )
        if cached_project is not None:
            project_findings, n_suppressed = cached_project
        else:
            entries = [
                (path, sources[path], trees[path], contexts[path])
                for path in files
                if ensure_parsed(path)
            ]
            index = ProjectIndex.build(entries)
            raw = _run_project_rules(index, project_ids)
            project_findings = []
            n_suppressed = 0
            by_path: dict[str, list[Finding]] = {}
            for finding in raw:
                by_path.setdefault(finding.path, []).append(finding)
            for path, path_findings in by_path.items():
                suppressions = _expand_suppression_spans(
                    trees[path], _suppressions_for(sources[path])
                )
                kept, n = _apply_suppressions(path_findings, suppressions)
                project_findings.extend(kept)
                n_suppressed += n
            if cache is not None:
                cache.store_project(project_key, project_findings, n_suppressed)
        all_findings.extend(project_findings)
        result.n_suppressed += n_suppressed

    if cache is not None:
        cache.save()

    if baseline is not None:
        all_findings, n_baselined = baseline.filter(all_findings)
        result.n_baselined = n_baselined
    result.findings = sorted(
        all_findings, key=lambda f: (f.path, f.line, f.col, f.rule_id)
    )
    return result
