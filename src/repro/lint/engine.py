"""File discovery, suppression comments, and the lint entry point.

:func:`lint_paths` is the programmatic face of ``repro lint``: it
expands the given files/directories, parses each module once, runs
every selected rule through the single-pass :class:`~repro.lint.rules.Checker`,
drops findings suppressed inline (``# mosaic: disable=MOS005``) or by a
baseline, and returns a :class:`LintResult` the reporters and the CLI
share.
"""

from __future__ import annotations

import ast
import os
import re
import tokenize
from dataclasses import dataclass, field

from .baseline import Baseline
from .context import ModuleContext
from .findings import Finding, Severity
from .rules import REGISTRY, Checker, Rule

__all__ = ["LintConfig", "LintResult", "lint_paths", "check_source"]

#: Inline suppression: ``# mosaic: disable`` (all rules on this line) or
#: ``# mosaic: disable=MOS001,MOS005``.
_SUPPRESS_RE = re.compile(
    r"#\s*mosaic:\s*disable(?:\s*=\s*(?P<rules>[A-Z0-9,\s]+))?", re.IGNORECASE
)

#: Rule id for files the engine itself cannot process.
PARSE_ERROR_RULE = "MOS000"


@dataclass(slots=True, frozen=True)
class LintConfig:
    """What to check and how hard to fail."""

    select: frozenset[str] | None = None  # None → every registered rule
    ignore: frozenset[str] = frozenset()
    strict: bool = False

    def active_rule_ids(self) -> list[str]:
        ids = sorted(self.select) if self.select is not None else sorted(REGISTRY)
        unknown = set(ids) - set(REGISTRY)
        if unknown:
            raise ValueError(f"unknown rule ids: {', '.join(sorted(unknown))}")
        return [i for i in ids if i not in self.ignore]


@dataclass(slots=True)
class LintResult:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    n_files: int = 0
    n_suppressed: int = 0  # inline `# mosaic: disable` comments
    n_baselined: int = 0  # adopted via a baseline file

    def failed(self, strict: bool) -> bool:
        if strict:
            return bool(self.findings)
        return any(f.severity is Severity.ERROR for f in self.findings)

    def exit_code(self, strict: bool) -> int:
        return 1 if self.failed(strict) else 0


def discover_files(paths: list[str]) -> list[str]:
    """Python files under the given files/directories, sorted."""
    files: list[str] = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)
        elif os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs if not d.startswith(".") and d != "__pycache__"
                )
                files.extend(
                    os.path.join(root, n) for n in sorted(names) if n.endswith(".py")
                )
        else:
            raise FileNotFoundError(path)
    return sorted(dict.fromkeys(files))


def _suppressions_for(source: str) -> dict[int, frozenset[str] | None]:
    """line → suppressed rule ids (None = every rule) from comments.

    Tokenizes rather than regex-scanning raw lines so a suppression
    marker inside a string literal does not silence anything.
    """
    table: dict[int, frozenset[str] | None] = {}
    try:
        tokens = tokenize.generate_tokens(iter(source.splitlines(True)).__next__)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if not match:
                continue
            rules = match.group("rules")
            if rules is None:
                table[tok.start[0]] = None
            else:
                ids = frozenset(
                    r.strip().upper() for r in rules.split(",") if r.strip()
                )
                existing = table.get(tok.start[0], frozenset())
                table[tok.start[0]] = (
                    None if existing is None else existing | ids
                )
    except tokenize.TokenError:
        pass  # the parse error is reported separately
    return table


def check_source(
    path: str, source: str, config: LintConfig | None = None
) -> tuple[list[Finding], int]:
    """Lint one module's source; (findings, inline-suppressed count)."""
    config = config or LintConfig()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        finding = Finding(
            rule_id=PARSE_ERROR_RULE,
            path=path,
            line=exc.lineno or 1,
            col=(exc.offset or 0) + 1,
            severity=Severity.ERROR,
            message=f"cannot parse module: {exc.msg}",
            fix_hint="fix the syntax error; unparseable files are unchecked",
        )
        return [finding], 0
    ctx = ModuleContext.build(path, source, tree)
    findings: list[Finding] = []
    rules: list[Rule] = [
        REGISTRY[rule_id](ctx, findings) for rule_id in config.active_rule_ids()
    ]
    Checker(ctx, rules).run()

    suppressions = _suppressions_for(source)
    if not suppressions:
        return findings, 0
    kept: list[Finding] = []
    n_suppressed = 0
    for finding in findings:
        suppressed_ids = suppressions.get(finding.line, frozenset())
        if suppressed_ids is None or finding.rule_id in suppressed_ids:
            n_suppressed += 1
        else:
            kept.append(finding)
    return kept, n_suppressed


def lint_paths(
    paths: list[str],
    config: LintConfig | None = None,
    baseline: Baseline | None = None,
) -> LintResult:
    """Lint every Python file under ``paths``."""
    config = config or LintConfig()
    result = LintResult()
    all_findings: list[Finding] = []
    for path in discover_files(paths):
        with open(path, "r", encoding="utf-8") as fh:
            source = fh.read()
        findings, n_suppressed = check_source(path, source, config)
        all_findings.extend(findings)
        result.n_suppressed += n_suppressed
        result.n_files += 1
    if baseline is not None:
        all_findings, n_baselined = baseline.filter(all_findings)
        result.n_baselined = n_baselined
    result.findings = sorted(
        all_findings, key=lambda f: (f.path, f.line, f.col, f.rule_id)
    )
    return result
