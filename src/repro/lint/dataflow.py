"""Intra-procedural taint analysis with composable function summaries.

The MOSD allocation bomb was a 40-byte payload declaring four billion
records: a length field decoded from attacker-controlled bytes reached
``np.empty`` before anything compared it to a :class:`DecodeLimits`
cap.  This module tracks exactly that flow:

* **Sources** — values produced by ``struct.unpack``/``unpack_from``,
  ``int.from_bytes``, and ``json.loads``/``json.load``: the only ways
  trace bytes become Python integers in this codebase.
* **Taint propagation** — through arithmetic, tuple unpacking,
  subscripts, accessor method calls, container literals, and (via
  summaries) through project function calls that return or forward
  their arguments.
* **Sanitizers** — a call whose name says *validator*
  (``check_*``/``validate*``/``*_checked``, e.g.
  ``check_declared_size`` and the ``_read_checked`` chokepoint) cleans
  every name it is shown; a branch or ``assert`` that *tests* a tainted
  name and can bail (``if n > limits.max_records: raise``) cleans it
  too — the same visible-guard convention MOS005 uses.
* **Sinks** — ``range(n)``, ``np.empty/zeros/ones/full``,
  ``bytearray(n)``, and sequence-by-integer multiplication: the
  attacker-sized allocations.  ``.read(n)`` is deliberately *not* a
  sink here (MOS012 owns sized reads), and ``np.frombuffer``/``bytes``
  slices are views bounded by the buffer they wrap.

The engine runs a bounded fixpoint: every function is summarized
(which params flow to the return value, which are sanitized, which
reach a sink inside the callee), summaries are recomputed once so
one-level chains stabilize, then a final pass replays each function
with reporting enabled and emits full source→sink
:class:`~repro.lint.findings.Step` traces.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Callable

from .context import dotted_name
from .findings import Step
from .project import FunctionInfo, ProjectIndex

__all__ = ["Value", "Summary", "TaintEngine", "TaintFinding"]

#: Call terminals that mint tainted values from raw trace bytes.
_SOURCE_TERMINALS = frozenset({"unpack", "unpack_from", "from_bytes"})
_SOURCE_QUALIFIED = frozenset({"json.loads", "json.load"})

#: A callee whose *name* promises validation sanitizes its arguments.
_SANITIZER_RE = re.compile(r"^_?(check|validate)|_checked$|_validated$")

#: Bounding builtins: ``min(n, cap)``/``np.clip`` produce capped values.
_BOUNDING_TERMINALS = frozenset({"min", "clip"})

#: Pure pass-through callables that preserve their argument's taint.
_PASSTHROUGH_TERMINALS = frozenset(
    {"int", "float", "abs", "round", "len", "sorted", "list", "tuple", "sum"}
)

#: Accessor methods: calling one on a tainted receiver yields taint
#: (``doc.get("records")`` on a decoded JSON document).
_ACCESSOR_TERMINALS = frozenset(
    {"get", "decode", "strip", "split", "splitlines", "pop", "copy", "item"}
)

#: numpy allocators whose size argument must be validated.
_NP_ALLOCATORS = frozenset({"empty", "zeros", "ones", "full"})


@dataclass(slots=True, frozen=True)
class Value:
    """Abstract value: source-taint provenance + parameter membership."""

    steps: tuple[Step, ...] = ()
    params: frozenset[int] = frozenset()

    @property
    def tainted(self) -> bool:
        return bool(self.steps)


CLEAN = Value()


def _join(a: Value, b: Value) -> Value:
    if a == CLEAN:
        return b
    if b == CLEAN:
        return a
    return Value(
        steps=a.steps if a.steps else b.steps, params=a.params | b.params
    )


@dataclass(slots=True)
class Summary:
    """What a caller needs to know about a callee."""

    #: Source→return steps when the return value carries source taint.
    returns_steps: tuple[Step, ...] = ()
    #: Parameter indexes whose taint flows to the return value.
    param_to_return: frozenset[int] = frozenset()
    #: Parameter indexes this function validates (by guard or
    #: validator call) — a caller's tainted argument comes back clean.
    sanitizes: frozenset[int] = frozenset()
    #: Parameter index → steps from function entry to an internal sink.
    param_sinks: dict[int, tuple[Step, ...]] = field(default_factory=dict)


@dataclass(slots=True, frozen=True)
class TaintFinding:
    """One source→sink flow, reported by MOS014."""

    function: FunctionInfo
    node: ast.AST
    steps: tuple[Step, ...]
    sink: str


class TaintEngine:
    """Two-iteration summary fixpoint + one reporting pass."""

    def __init__(self, index: ProjectIndex):
        self.index = index
        self.summaries: dict[str, Summary] = {}

    def solve(self) -> None:
        for _ in range(2):
            fresh = {
                qualname: _FunctionAnalysis(self, fn).run()
                for qualname, fn in self.index.functions.items()
            }
            self.summaries = fresh

    def findings(self) -> list[TaintFinding]:
        if not self.summaries:
            self.solve()
        out: list[TaintFinding] = []
        for fn in self.index.functions.values():
            analysis = _FunctionAnalysis(self, fn, sink=out.append)
            analysis.run()
        return out


class _FunctionAnalysis:
    """Abstract interpretation of one function body."""

    def __init__(
        self,
        engine: TaintEngine,
        fn: FunctionInfo,
        sink: Callable[[TaintFinding], None] | None = None,
    ):
        self.engine = engine
        self.fn = fn
        self.report = sink
        self.env: dict[str, Value] = {
            name: Value(params=frozenset({i}))
            for i, name in enumerate(fn.params)
        }
        self.summary = Summary()
        self._sanitized_params: set[int] = set()
        self._param_sinks: dict[int, tuple[Step, ...]] = {}
        self._return_steps: tuple[Step, ...] = ()
        self._return_params: set[int] = set()
        self._ctx = engine.index.by_path[fn.path].ctx
        self._callsites = {
            id(cs.node): cs for cs in fn.calls
        }

    # -- public ---------------------------------------------------------
    def run(self) -> Summary:
        self._exec_body(self.fn.node.body)
        return Summary(
            returns_steps=self._return_steps,
            param_to_return=frozenset(self._return_params),
            sanitizes=frozenset(self._sanitized_params),
            param_sinks=dict(self._param_sinks),
        )

    # -- statements -----------------------------------------------------
    def _exec_body(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._exec(stmt)

    def _exec(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scopes are analyzed as their own functions
        if isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value)
            for target in stmt.targets:
                self._bind(target, value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind(stmt.target, self._eval(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            value = self._eval(stmt.value)
            if isinstance(stmt.target, ast.Name):
                current = self.env.get(stmt.target.id, CLEAN)
                self.env[stmt.target.id] = _join(current, value)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                value = self._eval(stmt.value)
                if value.tainted and not self._return_steps:
                    self._return_steps = value.steps
                self._return_params |= value.params
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        elif isinstance(stmt, ast.If):
            self._exec_if(stmt)
        elif isinstance(stmt, ast.Assert):
            self._sanitize_test(stmt.test)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_value = self._eval(stmt.iter)
            self._bind(stmt.target, iter_value)
            # Two rounds so a taint assigned late in the body reaches
            # uses early in the body on the next iteration.
            self._exec_body(stmt.body)
            self._exec_body(stmt.body)
            self._exec_body(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._sanitize_test(stmt.test)
            self._exec_body(stmt.body)
            self._exec_body(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                value = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, value)
            self._exec_body(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._exec_body(stmt.body)
            for handler in stmt.handlers:
                self._exec_body(handler.body)
            self._exec_body(stmt.orelse)
            self._exec_body(stmt.finalbody)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._eval(stmt.exc)
        elif isinstance(stmt, (ast.Delete, ast.Pass, ast.Break, ast.Continue)):
            pass
        elif isinstance(stmt, (ast.Import, ast.ImportFrom, ast.Global, ast.Nonlocal)):
            pass
        else:  # Match and friends: evaluate child expressions only.
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._eval(child)

    def _exec_if(self, stmt: ast.If) -> None:
        # A branch that *tests* a value is the visible-guard convention:
        # `if n > limits.max_records: raise` validates n for every path
        # that survives.  Names mentioned in the test are sanitized for
        # the branches and the continuation (MOS005's leniency, made
        # flow-aware by the fact that straight-line bombs have no test
        # at all).
        self._eval(stmt.test)
        self._sanitize_test(stmt.test)
        before = dict(self.env)
        self._exec_body(stmt.body)
        body_env = self.env
        self.env = dict(before)
        self._exec_body(stmt.orelse)
        if not _terminates(stmt.body):
            self._merge_env(body_env)
        # A terminating body (`if bad: raise`) contributes nothing to
        # the continuation: the surviving env is the orelse path.

    def _merge_env(self, other: dict[str, Value]) -> None:
        for name, value in other.items():
            self.env[name] = _join(self.env.get(name, CLEAN), value)

    # -- expressions ----------------------------------------------------
    def _eval(self, node: ast.expr) -> Value:
        if isinstance(node, ast.Name):
            return self.env.get(node.id, CLEAN)
        if isinstance(node, ast.Constant):
            return CLEAN
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.BinOp):
            return self._eval_binop(node)
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand)
        if isinstance(node, ast.BoolOp):
            value = CLEAN
            for operand in node.values:
                value = _join(value, self._eval(operand))
            return value
        if isinstance(node, ast.Compare):
            self._eval(node.left)
            for comparator in node.comparators:
                self._eval(comparator)
            return CLEAN
        if isinstance(node, ast.Subscript):
            self._eval(node.slice)
            return self._eval(node.value)
        if isinstance(node, ast.Attribute):
            return self._eval(node.value)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            value = CLEAN
            for elt in node.elts:
                value = _join(value, self._eval(elt))
            return value
        if isinstance(node, ast.Dict):
            value = CLEAN
            for v in node.values:
                if v is not None:
                    value = _join(value, self._eval(v))
            return value
        if isinstance(node, ast.IfExp):
            self._eval(node.test)
            self._sanitize_test(node.test)
            return _join(self._eval(node.body), self._eval(node.orelse))
        if isinstance(node, ast.Starred):
            return self._eval(node.value)
        if isinstance(node, ast.NamedExpr):
            value = self._eval(node.value)
            self._bind(node.target, value)
            return value
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self._eval_comp(node, node.elt)
        if isinstance(node, ast.DictComp):
            self._eval_comp(node, node.key)
            return self._eval_comp(node, node.value)
        if isinstance(node, ast.JoinedStr):
            for part in node.values:
                if isinstance(part, ast.FormattedValue):
                    self._eval(part.value)
            return CLEAN
        if isinstance(node, (ast.Lambda, ast.Await, ast.Yield, ast.YieldFrom)):
            inner = getattr(node, "value", None)
            if isinstance(inner, ast.expr):
                value = self._eval(inner)
                if isinstance(node, (ast.Await, ast.Yield, ast.YieldFrom)):
                    if value.tainted and not self._return_steps:
                        self._return_steps = value.steps
                    self._return_params |= value.params
                return value
            return CLEAN
        if isinstance(node, ast.Slice):
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    self._eval(part)
            return CLEAN
        return CLEAN

    def _eval_comp(
        self,
        node: ast.ListComp | ast.SetComp | ast.GeneratorExp | ast.DictComp,
        elt: ast.expr,
    ) -> Value:
        saved = dict(self.env)
        for gen in node.generators:
            self._bind(gen.target, self._eval(gen.iter))
            for cond in gen.ifs:
                self._eval(cond)
                self._sanitize_test(cond)
        value = self._eval(elt)
        self.env = saved
        return value

    def _eval_binop(self, node: ast.BinOp) -> Value:
        left = self._eval(node.left)
        right = self._eval(node.right)
        if isinstance(node.op, ast.Mult):
            for size_val, seq in ((left, node.right), (right, node.left)):
                if size_val.tainted and _is_sequence_literal(seq):
                    self._hit_sink(
                        node,
                        size_val,
                        "sequence-by-untrusted-integer multiplication",
                    )
        return _join(left, right)

    # -- calls ----------------------------------------------------------
    def _eval_call(self, node: ast.Call) -> Value:
        arg_values = [self._eval(arg) for arg in node.args]
        kw_values = {
            kw.arg: self._eval(kw.value) for kw in node.keywords
        }
        dotted = dotted_name(node.func)
        qualified = self._ctx.qualify_node(node.func) if dotted else None
        terminal = dotted.rsplit(".", 1)[-1] if dotted else ""

        # Sources: raw bytes become integers here.
        if terminal in _SOURCE_TERMINALS or (
            qualified in _SOURCE_QUALIFIED
        ):
            label = qualified or dotted or "decode"
            return Value(
                steps=(
                    Step(
                        path=self.fn.path,
                        line=node.lineno,
                        col=node.col_offset + 1,
                        note=f"tainted: decoded from trace bytes by {label}()",
                    ),
                )
            )

        # Sanitizers and bounding calls clean what they are shown.
        if terminal and _SANITIZER_RE.search(terminal):
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                self._sanitize_expr(arg)
            return CLEAN
        if terminal in _BOUNDING_TERMINALS:
            for arg in node.args:
                self._sanitize_expr(arg)
            return CLEAN

        # Sinks: attacker-sized allocations.
        sink_desc = self._sink_description(terminal, qualified)
        if sink_desc is not None:
            if terminal == "range":
                # Any of range(stop) / range(start, stop[, step]) can
                # be attacker-sized.
                size_args = list(zip(node.args, arg_values))
            else:
                size_args = list(zip(node.args, arg_values))[:1]
            if "shape" in kw_values:
                shape_kw = next(k for k in node.keywords if k.arg == "shape")
                size_args.append((shape_kw.value, kw_values["shape"]))
            for arg_node, value in size_args:
                self._check_sink(node, arg_node, value, sink_desc)

        # Project-function composition through the callee's summary.
        callsite = self._callsites.get(id(node))
        resolved = callsite.resolved if callsite is not None else None
        if resolved is not None:
            return self._apply_summary(node, resolved, arg_values, terminal)

        # Unresolved externals.
        if terminal in _PASSTHROUGH_TERMINALS:
            value = CLEAN
            for v in arg_values:
                value = _join(value, v)
            return value
        if (
            terminal in _ACCESSOR_TERMINALS
            and isinstance(node.func, ast.Attribute)
        ):
            receiver = self._eval(node.func.value)
            if receiver.tainted or receiver.params:
                return receiver
        return CLEAN

    def _apply_summary(
        self,
        node: ast.Call,
        resolved: str,
        arg_values: list[Value],
        terminal: str,
    ) -> Value:
        summary = self.engine.summaries.get(resolved)
        if summary is None:
            return CLEAN
        # Callee validates these positions: the caller's names come
        # back clean (check_declared_size(n, ...) style).
        for i in summary.sanitizes:
            if i < len(node.args):
                self._sanitize_expr(node.args[i])
        # Callee forwards these positions to an internal sink.
        for i, inner_steps in summary.param_sinks.items():
            if i >= len(arg_values):
                continue
            value = arg_values[i]
            hop = Step(
                path=self.fn.path,
                line=node.lineno,
                col=node.col_offset + 1,
                note=f"passed to {terminal}() which allocates from it",
            )
            if value.tainted:
                self._emit(node, value.steps + (hop,) + inner_steps)
            for p in value.params:
                self._param_sinks.setdefault(p, (hop,) + inner_steps)
        # Return-value composition.
        steps: tuple[Step, ...] = ()
        params: frozenset[int] = frozenset()
        if summary.returns_steps:
            steps = summary.returns_steps + (
                Step(
                    path=self.fn.path,
                    line=node.lineno,
                    col=node.col_offset + 1,
                    note=f"returned by {terminal}()",
                ),
            )
        for i in summary.param_to_return:
            if i < len(arg_values):
                value = arg_values[i]
                if value.tainted and not steps:
                    steps = value.steps + (
                        Step(
                            path=self.fn.path,
                            line=node.lineno,
                            col=node.col_offset + 1,
                            note=f"flows through {terminal}()",
                        ),
                    )
                params = params | value.params
        return Value(steps=steps, params=params)

    # -- sinks ----------------------------------------------------------
    def _sink_description(
        self, terminal: str, qualified: str | None
    ) -> str | None:
        if terminal == "range" and qualified == "range":
            return "range()"
        if terminal == "bytearray" and qualified == "bytearray":
            return "bytearray()"
        if (
            terminal in _NP_ALLOCATORS
            and qualified is not None
            and qualified.startswith("numpy.")
        ):
            return f"np.{terminal}()"
        return None

    def _check_sink(
        self, call: ast.Call, arg_node: ast.expr, value: Value, desc: str
    ) -> None:
        if value.tainted:
            self._hit_sink(call, value, desc)
        for p in value.params:
            self._param_sinks.setdefault(
                p,
                (
                    Step(
                        path=self.fn.path,
                        line=call.lineno,
                        col=call.col_offset + 1,
                        note=(
                            f"parameter {self.fn.params[p]!r} sizes "
                            f"{desc} here"
                        ),
                    ),
                ),
            )

    def _hit_sink(self, node: ast.AST, value: Value, desc: str) -> None:
        final = Step(
            path=self.fn.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            note=f"reaches allocation sink {desc} without validation",
        )
        self._emit(node, value.steps + (final,), desc)

    def _emit(
        self,
        node: ast.AST,
        steps: tuple[Step, ...],
        desc: str | None = None,
    ) -> None:
        if self.report is None:
            return
        self.report(
            TaintFinding(
                function=self.fn,
                node=node,
                steps=steps,
                sink=desc or steps[-1].note,
            )
        )

    # -- sanitization ---------------------------------------------------
    def _sanitize_test(self, test: ast.expr) -> None:
        for name_node in ast.walk(test):
            if isinstance(name_node, ast.Name):
                self._sanitize_name(name_node.id)

    def _sanitize_expr(self, expr: ast.expr) -> None:
        for name_node in ast.walk(expr):
            if isinstance(name_node, ast.Name):
                self._sanitize_name(name_node.id)

    def _sanitize_name(self, name: str) -> None:
        value = self.env.get(name)
        if value is None or value is CLEAN:
            return
        for p in value.params:
            self._sanitized_params.add(p)
        self.env[name] = CLEAN

    # -- binding --------------------------------------------------------
    def _bind(self, target: ast.expr, value: Value) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, value)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, value)
        # Attribute / subscript targets: out of the abstraction.


def _terminates(body: list[ast.stmt]) -> bool:
    """True when a branch body unconditionally leaves the suite."""
    return any(
        isinstance(s, (ast.Raise, ast.Return, ast.Continue, ast.Break))
        for s in body
    )


def _is_sequence_literal(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.ListComp)):
        return True
    return isinstance(node, ast.Constant) and isinstance(
        node.value, (bytes, str)
    )
