"""Project-wide index: module graph, symbol resolution, call graph.

The per-module rules see one file at a time; the flow-sensitive rules
(MOS014–MOS017) need to follow a value decoded in ``darshan/`` through
``core/`` to an allocation in ``columnar/``.  :class:`ProjectIndex`
gives them the whole-program facts:

* every parsed module with its :class:`~repro.lint.context.ModuleContext`
  (import table, dotted name) and content hash;
* every function/method, keyed by qualified name
  (``repro.darshan.io_binary._read_checked``), with its parameters,
  raised exception names, referenced identifiers, and call sites;
* each call site resolved — through the import tables, one level of
  re-export chains (``from .io_binary import load_binary`` in an
  ``__init__``), same-module locals, ``self.`` methods, and classes to
  their ``__init__`` — to the qualified name of the project function it
  lands on, plus the lexical facts the rules key on: which exceptions
  guard it (enclosing ``try``) and whether it sits inside a pipeline
  ``stage(...)`` block.

Resolution is deliberately bounded: dynamic dispatch, decorators that
replace callables, and attribute calls on arbitrary objects resolve to
``None`` and the flow rules treat them as opaque.  That keeps the index
cheap (one extra AST walk per module) and the rules free of false
paths.
"""

from __future__ import annotations

import ast
import hashlib
import re
from dataclasses import dataclass, field

from .context import ModuleContext, dotted_name

__all__ = ["CallSite", "FunctionInfo", "ModuleInfo", "ProjectIndex"]

#: ``with <...>.stage("name"):`` / ``with _stage(...):`` — the pipeline
#: stage-block convention MOS016 keys on.
_STAGE_TERMINAL_RE = re.compile(r"(^|_)stage$")

_MAX_RESOLVE_HOPS = 8


@dataclass(slots=True)
class CallSite:
    """One call expression inside a function body."""

    node: ast.Call
    #: Dotted callee text with the head resolved through the import
    #: table (``np.empty`` → ``numpy.empty``); None for non-dotted
    #: callees (subscripts, calls-of-calls).
    raw: str | None
    #: Qualified name of the project function this lands on, or None
    #: when the callee is external/dynamic.
    resolved: str | None
    #: Terminal exception names of every ``except`` clause of enclosing
    #: ``try`` statements whose body contains this call.
    guarded_by: frozenset[str]
    #: True when the call sits lexically inside a ``with ...stage(...)``
    #: block of the same function.
    in_stage_block: bool


@dataclass(slots=True)
class FunctionInfo:
    """Per-function facts gathered in one walk."""

    qualname: str
    module: str
    path: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    params: tuple[str, ...]
    calls: list[CallSite] = field(default_factory=list)
    #: Every identifier part referenced in the body (``ctx.config.budget``
    #: contributes ``ctx``, ``config``, ``budget``) — the cheap
    #: "does this function mention the governor" predicate.
    ref_parts: set[str] = field(default_factory=set)
    #: Terminal names of exceptions raised directly (``raise
    #: TraceFormatError(...)`` → ``TraceFormatError``; a bare ``raise``
    #: inside a handler re-raises that handler's names).
    raises: set[str] = field(default_factory=set)
    #: Qualified names of functions defined lexically inside this one.
    nested: dict[str, str] = field(default_factory=dict)


@dataclass(slots=True)
class ModuleInfo:
    """One parsed module in the index."""

    path: str
    module: str
    tree: ast.Module
    ctx: ModuleContext
    sha: str


def source_hash(source: str) -> str:
    """Content hash used by the warm-run lint cache."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()[:24]


def _exception_names(handler: ast.ExceptHandler) -> set[str]:
    """Terminal names an ``except`` clause catches (bare → BaseException)."""
    if handler.type is None:
        return {"BaseException"}
    types = (
        list(handler.type.elts)
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    names: set[str] = set()
    for t in types:
        dotted = dotted_name(t)
        if dotted:
            names.add(dotted.rsplit(".", 1)[-1])
    return names


def _is_stage_with_item(item: ast.withitem) -> bool:
    expr = item.context_expr
    if not isinstance(expr, ast.Call):
        return False
    dotted = dotted_name(expr.func)
    if not dotted:
        return False
    terminal = dotted.rsplit(".", 1)[-1]
    return bool(_STAGE_TERMINAL_RE.search(terminal))


class _FunctionWalker:
    """Collect calls/refs/raises for one function body.

    Tracks the lexical ``try`` guard stack and ``with ...stage(...)``
    nesting; both reset when descending into a nested ``def`` — code in
    a nested function runs later, outside the guards and stage block
    that surround its definition.
    """

    def __init__(self, index: "ProjectIndex", info: FunctionInfo):
        self.index = index
        self.info = info
        self.guard_stack: list[frozenset[str]] = []
        self.stage_depth = 0
        self.handler_stack: list[frozenset[str]] = []

    def walk_body(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._walk(stmt)

    def _walk(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested def: its body is indexed as its own FunctionInfo.
            return
        if isinstance(node, ast.Lambda):
            # Lambda bodies run later too, but they cannot contain
            # statements; record refs/calls without guard context.
            saved_guards, saved_stage = self.guard_stack, self.stage_depth
            self.guard_stack, self.stage_depth = [], 0
            self._walk(node.body)
            self.guard_stack, self.stage_depth = saved_guards, saved_stage
            return
        if isinstance(node, ast.Name):
            self.info.ref_parts.add(node.id)
        elif isinstance(node, ast.Attribute):
            self.info.ref_parts.add(node.attr)
        if isinstance(node, ast.Try):
            self._walk_try(node)
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            self._walk_with(node)
            return
        if isinstance(node, ast.Raise):
            self._record_raise(node)
        if isinstance(node, ast.Call):
            self._record_call(node)
        for child in ast.iter_child_nodes(node):
            self._walk(child)

    def _walk_try(self, node: ast.Try) -> None:
        caught: set[str] = set()
        for handler in node.handlers:
            caught |= _exception_names(handler)
        self.guard_stack.append(frozenset(caught))
        for stmt in node.body:
            self._walk(stmt)
        self.guard_stack.pop()
        for handler in node.handlers:
            self.handler_stack.append(frozenset(_exception_names(handler)))
            for stmt in handler.body:
                self._walk(stmt)
            self.handler_stack.pop()
        for stmt in node.orelse:
            self._walk(stmt)
        for stmt in node.finalbody:
            self._walk(stmt)

    def _walk_with(self, node: ast.With | ast.AsyncWith) -> None:
        is_stage = any(_is_stage_with_item(item) for item in node.items)
        for item in node.items:
            self._walk(item.context_expr)
            if item.optional_vars is not None:
                self._walk(item.optional_vars)
        if is_stage:
            self.stage_depth += 1
        for stmt in node.body:
            self._walk(stmt)
        if is_stage:
            self.stage_depth -= 1

    def _record_raise(self, node: ast.Raise) -> None:
        if node.exc is None:
            # Bare re-raise: raises whatever the enclosing handler caught.
            if self.handler_stack:
                self.info.raises |= set(self.handler_stack[-1])
            return
        target = node.exc
        if isinstance(target, ast.Call):
            target = target.func
        dotted = dotted_name(target)
        if dotted:
            self.info.raises.add(dotted.rsplit(".", 1)[-1])

    def _record_call(self, node: ast.Call) -> None:
        raw, resolved = self.index.resolve_expr(self.info, node.func)
        guards: set[str] = set()
        for frame in self.guard_stack:
            guards |= set(frame)
        self.info.calls.append(
            CallSite(
                node=node,
                raw=raw,
                resolved=resolved,
                guarded_by=frozenset(guards),
                in_stage_block=self.stage_depth > 0,
            )
        )


@dataclass(slots=True)
class ProjectIndex:
    """Whole-program view over every parsed module of a lint run."""

    modules: dict[str, ModuleInfo] = field(default_factory=dict)
    by_path: dict[str, ModuleInfo] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ast.ClassDef] = field(default_factory=dict)
    #: callee qualname → caller qualnames (reverse call graph).
    callers: dict[str, set[str]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls, entries: list[tuple[str, str, ast.Module, ModuleContext]]
    ) -> "ProjectIndex":
        """Index ``(path, source, tree, ctx)`` entries in two passes.

        Pass one registers every module, function, and class so pass
        two's call resolution sees the complete symbol table regardless
        of file order.
        """
        index = cls()
        for path, source, tree, ctx in entries:
            mi = ModuleInfo(
                path=path,
                module=ctx.module,
                tree=tree,
                ctx=ctx,
                sha=source_hash(source),
            )
            index.modules[mi.module] = mi
            index.by_path[path] = mi
            index._declare(mi)
        for mi in index.by_path.values():
            index._index_bodies(mi)
        for fn in index.functions.values():
            for call in fn.calls:
                if call.resolved:
                    index.callers.setdefault(call.resolved, set()).add(
                        fn.qualname
                    )
        return index

    # -- pass one: declarations ----------------------------------------
    def _declare(self, mi: ModuleInfo) -> None:
        def visit(node: ast.AST, prefix: str) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qualname = f"{prefix}.{child.name}"
                    self.functions[qualname] = FunctionInfo(
                        qualname=qualname,
                        module=mi.module,
                        path=mi.path,
                        node=child,
                        params=_param_names(child),
                    )
                    visit(child, qualname)
                elif isinstance(child, ast.ClassDef):
                    qualname = f"{prefix}.{child.name}"
                    self.classes[qualname] = child
                    visit(child, qualname)
                else:
                    visit(child, prefix)

        visit(mi.tree, mi.module)

    # -- pass two: bodies ----------------------------------------------
    def _index_bodies(self, mi: ModuleInfo) -> None:
        for fn in list(self.functions.values()):
            if fn.path != mi.path:
                continue
            for child in ast.iter_child_nodes(fn.node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    fn.nested[child.name] = f"{fn.qualname}.{child.name}"
            _FunctionWalker(self, fn).walk_body(fn.node.body)

    # -- resolution -----------------------------------------------------
    def resolve_expr(
        self, fn: FunctionInfo, func_expr: ast.AST
    ) -> tuple[str | None, str | None]:
        """(qualified text, resolved project function) of a callee
        expression evaluated inside ``fn``."""
        dotted = dotted_name(func_expr)
        if dotted is None:
            return None, None
        mi = self.by_path[fn.path]
        qualified = mi.ctx.qualify_node(func_expr) or dotted
        candidates = [qualified]
        if "." not in dotted:
            # Unqualified name: nested def, then module-level sibling.
            if dotted in fn.nested:
                candidates.insert(0, fn.nested[dotted])
            enclosing = fn.qualname.rsplit(".", 1)[0]
            candidates.append(f"{enclosing}.{dotted}")
            candidates.append(f"{mi.module}.{dotted}")
        elif dotted.startswith("self.") and dotted.count(".") == 1:
            # self.method() inside a class body.
            parts = fn.qualname.split(".")
            if len(parts) >= 2:
                owner = ".".join(parts[:-1])
                candidates.insert(0, f"{owner}.{dotted[5:]}")
        for candidate in candidates:
            resolved = self.resolve_symbol(candidate)
            if resolved:
                return qualified, resolved
        return qualified, None

    def resolve_symbol(self, qualified: str, _hops: int = 0) -> str | None:
        """Project function a qualified name lands on, or None.

        Follows re-export chains (``repro.darshan.load_binary`` →
        ``from .io_binary import load_binary`` → the definition) and
        maps classes to their ``__init__``.
        """
        if _hops > _MAX_RESOLVE_HOPS:
            return None
        if qualified in self.functions:
            return qualified
        if qualified in self.classes:
            init = f"{qualified}.__init__"
            return init if init in self.functions else None
        mod, _, sym = qualified.rpartition(".")
        if sym and mod in self.modules:
            target = self.modules[mod].ctx.imports.get(sym)
            if target and target != qualified:
                return self.resolve_symbol(target, _hops + 1)
        return None

    # -- queries used by the flow rules ---------------------------------
    def function_at(self, qualname: str) -> FunctionInfo | None:
        return self.functions.get(qualname)

    def project_hash(self) -> str:
        """Order-independent hash of every indexed file's content."""
        h = hashlib.sha256()
        for path in sorted(self.by_path):
            mi = self.by_path[path]
            h.update(f"{mi.module}={mi.sha}\n".encode("utf-8"))
        return h.hexdigest()[:24]


def _param_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> tuple[str, ...]:
    args = node.args
    names = [a.arg for a in args.posonlyargs] + [a.arg for a in args.args]
    names += [a.arg for a in args.kwonlyargs]
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return tuple(names)
