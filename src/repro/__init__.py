"""MOSAIC reproduction: detection and categorization of I/O patterns in
HPC applications.

Reproduces Jolivel, Tessier, Monniot & Pallez, "MOSAIC: Detection and
Categorization of I/O Patterns in HPC Applications" (PDSW @ SC 2024).

Quickstart::

    from repro import categorize_trace, generate_fleet, run_pipeline
    from repro.synth import FleetConfig

    fleet = generate_fleet(FleetConfig(n_apps=200))
    result = run_pipeline(fleet.traces)
    for r in result.results[:3]:
        print(r.exe, sorted(c.value for c in r.categories))

Package map (see DESIGN.md for the full inventory):

- :mod:`repro.darshan` — Darshan-equivalent trace substrate
- :mod:`repro.synth` — synthetic Blue Waters corpus with ground truth
- :mod:`repro.merge` / :mod:`repro.segment` — event fusion & segmentation
- :mod:`repro.cluster` — from-scratch Mean Shift
- :mod:`repro.signalproc` — DFT / autocorrelation periodicity baselines
- :mod:`repro.core` — the MOSAIC categorization algorithm & pipeline
- :mod:`repro.parallel` — fault-isolated process-pool engine
- :mod:`repro.analysis` — tables, Jaccard, correlations, accuracy
- :mod:`repro.viz` — ASCII rendering + CSV export
- :mod:`repro.cli` — the ``mosaic`` command
"""

from ._version import __version__
from .core import (
    Category,
    CategorizationResult,
    DEFAULT_CONFIG,
    MosaicConfig,
    PipelineContext,
    PipelineResult,
    categorize_trace,
    run_pipeline,
    run_pipeline_store,
    run_pipeline_stream,
)
from .darshan import (
    DirectorySource,
    FileRecord,
    InMemorySource,
    JobMeta,
    SyntheticSource,
    Trace,
    TraceSource,
)
from .synth import FleetConfig, generate_fleet

__all__ = [
    "__version__",
    "Category",
    "CategorizationResult",
    "DEFAULT_CONFIG",
    "MosaicConfig",
    "PipelineContext",
    "PipelineResult",
    "categorize_trace",
    "run_pipeline",
    "run_pipeline_store",
    "run_pipeline_stream",
    "FileRecord",
    "JobMeta",
    "Trace",
    "TraceSource",
    "DirectorySource",
    "InMemorySource",
    "SyntheticSource",
    "FleetConfig",
    "generate_fleet",
]
