"""The injectable VFS seam: every durable write goes through one object.

HPC filesystems fail in ways a laptop never rehearses: ``ENOSPC`` halfway
through a compile, ``EIO`` from a flaky parallel filesystem, a power cut
between ``write`` and ``fsync``.  The persistence layer therefore never
calls ``open``/``os.replace``/``os.fsync`` directly — it calls them on
the *active* :class:`FaultableIO`, a trivially-subclassable object that
:class:`repro.testing.StorageChaos` replaces in tests to script faults
deterministically (lint rule MOS018 enforces the routing).

Primitives only live here; the durability *policies* built on them —
atomic whole-file replacement and fsync-checkpointed appends — are in
:mod:`repro.io.durable`.

Fault classification:

* **transient** (``EINTR``/``EAGAIN``/``EIO``): retried with bounded
  deterministic exponential backoff by the durable helpers;
* **permanent** (``ENOSPC``, ``EROFS``, permission errors, exhausted
  retries): surfaced as :class:`StorageError`, a typed ``OSError``
  subclass carrying the failed operation and path, so callers and the
  CLI can report *which artifact* could not be persisted instead of
  leaking a raw errno traceback.
"""

from __future__ import annotations

import contextlib
import errno
import os
import time
from dataclasses import dataclass
from typing import IO, Any, Iterator

__all__ = [
    "TRANSIENT_ERRNOS",
    "StorageError",
    "FaultableIO",
    "IORetryPolicy",
    "DEFAULT_RETRY",
    "get_io",
    "set_io",
    "scoped_io",
]

#: Errnos worth retrying: the syscall may succeed if simply re-issued.
#: ``EIO`` is included deliberately — on parallel filesystems a read/
#: write hiccup during failover is transient (PAPERS.md, TraceTracker's
#: block-level view of real storage behavior).
TRANSIENT_ERRNOS = frozenset({errno.EINTR, errno.EAGAIN, errno.EIO})


class StorageError(OSError):
    """A durable artifact could not be written or made persistent.

    Subclasses ``OSError`` so pre-existing ``except OSError`` salvage
    paths (e.g. the lint cache's "a cache that cannot be written is a
    performance loss") keep working, while new code can catch the typed
    failure and report the artifact that was lost.
    """

    def __init__(
        self,
        message: str,
        *,
        op: str = "",
        path: str = "",
        errno_value: int | None = None,
    ) -> None:
        super().__init__(message)
        self.op = op
        self.path = path
        if errno_value is not None:
            self.errno = errno_value


class FaultableIO:
    """Primitive file operations behind one injectable object.

    The default implementation is a thin veneer over the standard
    library.  Tests install :class:`repro.testing.StorageChaos` (via
    :func:`scoped_io`) to script errnos, short writes, and power cuts
    into any primitive without touching the call sites.
    """

    def open(
        self,
        path: str,
        mode: str = "rb",
        *,
        encoding: str | None = None,
        newline: str | None = None,
    ) -> IO[Any]:
        return open(path, mode, encoding=encoding, newline=newline)

    def open_exclusive(self, path: str) -> IO[bytes]:
        """Create ``path`` exclusively (``O_CREAT | O_EXCL``).

        The mutual-exclusion primitive behind lock sidecars: exactly one
        process can win the create; everyone else gets
        ``FileExistsError``.  Returned open for binary write so the
        winner can record its identity (pid) inside.
        """
        fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        try:
            return os.fdopen(fd, "wb")
        except Exception:  # pragma: no cover - fdopen failure is exotic
            os.close(fd)
            raise

    def write(self, fh: IO[Any], data: Any) -> int:
        return int(fh.write(data))

    def flush(self, fh: IO[Any]) -> None:
        fh.flush()

    def fsync(self, fh: IO[Any]) -> None:
        os.fsync(fh.fileno())

    def replace(self, src: str, dst: str) -> None:
        os.replace(src, dst)

    def unlink(self, path: str) -> None:
        os.unlink(path)

    def fsync_dir(self, path: str) -> None:
        """Persist directory-entry changes (renames, creates) under
        ``path``.  Platforms without directory fds skip silently — the
        rename itself already happened; only its power-cut durability
        is weakened."""
        flags = os.O_RDONLY | getattr(os, "O_DIRECTORY", 0)
        try:
            fd = os.open(path or ".", flags)
        except OSError:
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def sleep(self, seconds: float) -> None:
        """Backoff hook; chaos implementations zero it for fast tests."""
        time.sleep(seconds)


@dataclass(slots=True, frozen=True)
class IORetryPolicy:
    """Bounded retry for transient storage errnos.

    Deterministic (no jitter): storage-chaos schedules are scripted per
    call index, and a randomized backoff would make the op census differ
    between the counting run and the injection run.
    """

    max_attempts: int = 4
    backoff_base_s: float = 0.005

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be >= 0")

    def backoff_s(self, attempt: int) -> float:
        """Sleep before retry ``attempt`` (0-based): base * 2^attempt."""
        return self.backoff_base_s * (2.0**attempt)


DEFAULT_RETRY = IORetryPolicy()

_DEFAULT_IO = FaultableIO()
_active_io: FaultableIO = _DEFAULT_IO


def get_io() -> FaultableIO:
    """The process-wide active VFS (the chaos injection point)."""
    return _active_io


def set_io(io: FaultableIO | None) -> None:
    """Install ``io`` as the active VFS (``None`` restores the default)."""
    global _active_io
    _active_io = _DEFAULT_IO if io is None else io


@contextlib.contextmanager
def scoped_io(io: FaultableIO) -> Iterator[FaultableIO]:
    """Temporarily install ``io``; always restores the previous VFS."""
    previous = _active_io
    set_io(io)
    try:
        yield io
    finally:
        set_io(previous)
