"""Storage durability layer: the one road to disk.

Every durable artifact the system writes — compiled ``.mosc`` stores,
checkpoint journals, quarantine manifests, lint caches and baselines,
CSV/report exports, result files — goes through this package:

* :class:`FaultableIO` — the injectable VFS seam; tests swap in
  :class:`repro.testing.StorageChaos` to script ENOSPC/EIO/EINTR/
  short-write/power-cut faults deterministically;
* :func:`atomic_write` / :func:`atomic_write_bytes` — temp file +
  fsync + rename + parent-dir fsync: crash leaves old or new artifact,
  never a torn hybrid;
* :func:`durable_append` / :class:`DurableAppender` — flush-per-line,
  fsync-per-checkpoint JSONL appends for the run journal;
* :class:`StorageError` — the typed, operation- and path-carrying
  failure every persistence site raises instead of a raw errno.

Lint rule MOS018 enforces the routing: persistence modules may not call
``open(..., "w")`` or ``os.rename``/``os.replace`` directly.  See
docs/ROBUSTNESS.md ("Storage fault model") for the guarantees per
artifact.
"""

from .durable import (
    DurableAppender,
    atomic_write,
    atomic_write_bytes,
    atomic_write_text,
    durable_append,
)
from .vfs import (
    DEFAULT_RETRY,
    TRANSIENT_ERRNOS,
    FaultableIO,
    IORetryPolicy,
    StorageError,
    get_io,
    scoped_io,
    set_io,
)

__all__ = [
    "DEFAULT_RETRY",
    "TRANSIENT_ERRNOS",
    "DurableAppender",
    "FaultableIO",
    "IORetryPolicy",
    "StorageError",
    "atomic_write",
    "atomic_write_bytes",
    "atomic_write_text",
    "durable_append",
    "get_io",
    "scoped_io",
    "set_io",
]
