"""Durability policies over the VFS seam: atomic writes, durable appends.

Two write shapes cover every artifact the system persists
(docs/ROBUSTNESS.md, "Storage fault model"):

* **whole-file artifacts** (``.mosc`` stores, lint caches, baselines,
  CSV exports, result files, manifests) — :func:`atomic_write` /
  :func:`atomic_write_bytes`: the payload lands at a temp path, is
  fsynced, renamed over the final path, and the parent directory is
  fsynced.  A crash at any instant leaves either the old artifact or
  the new one at the final path — never a torn hybrid;
* **append-only logs** (the checkpoint journal) —
  :class:`DurableAppender`: each line is flushed as written and fsynced
  at checkpoint boundaries, so a power cut loses at most the outcomes
  since the last checkpoint (and the journal loader already tolerates
  one torn trailing line).

Transient errnos (:data:`~repro.io.vfs.TRANSIENT_ERRNOS`) are retried
with deterministic exponential backoff; everything else — and exhausted
retries — raises :class:`~repro.io.vfs.StorageError` naming the
operation and path.  The retried unit is always *replayable*: the
whole in-memory payload for atomic writes, one line for appends (a torn
fragment is newline-terminated first so the retry starts a fresh line
the loader can parse).
"""

from __future__ import annotations

import contextlib
import io as _pyio
import os
from typing import IO, Any, Callable, Iterator

from .vfs import (
    DEFAULT_RETRY,
    TRANSIENT_ERRNOS,
    FaultableIO,
    IORetryPolicy,
    StorageError,
    get_io,
)

__all__ = [
    "atomic_write",
    "atomic_write_bytes",
    "atomic_write_text",
    "durable_append",
    "DurableAppender",
]


def _retry(
    io: FaultableIO,
    policy: IORetryPolicy,
    op: str,
    path: str,
    fn: Callable[..., Any],
    *args: Any,
) -> Any:
    """Run one replayable primitive with transient-errno retry."""
    for attempt in range(policy.max_attempts):
        try:
            return fn(*args)
        except StorageError:
            raise
        except OSError as exc:
            transient = exc.errno in TRANSIENT_ERRNOS
            if transient and attempt + 1 < policy.max_attempts:
                io.sleep(policy.backoff_s(attempt))
                continue
            kind = "transient fault persisted" if transient else "storage fault"
            raise StorageError(
                f"{op} failed for {path!r} ({kind}): {exc}",
                op=op,
                path=path,
                errno_value=exc.errno,
            ) from exc
    raise AssertionError("unreachable")  # pragma: no cover


def _tmp_path(path: str) -> str:
    """Per-process temp name next to the target (same filesystem, so the
    final rename is atomic)."""
    return f"{path}.tmp.{os.getpid()}"


def atomic_write_bytes(
    path: str | os.PathLike[str],
    data: bytes,
    *,
    io: FaultableIO | None = None,
    policy: IORetryPolicy = DEFAULT_RETRY,
    sync: bool = True,
) -> None:
    """Atomically publish ``data`` at ``path`` (temp + fsync + rename +
    parent-dir fsync).

    On any failure the temp file is removed and nothing is visible at
    ``path`` beyond what was there before; the failure is raised as
    :class:`StorageError`.  A failed *write* attempt truncates the temp
    file before the transient retry, so a short write can never leave a
    duplicated prefix in the published artifact.
    """
    io = io or get_io()
    out = os.fspath(path)
    tmp = _tmp_path(out)
    try:
        fh = _retry(io, policy, "open", tmp, io.open, tmp, "wb")
        try:
            _write_all(io, policy, tmp, fh, data)
            if sync:
                _retry(io, policy, "fsync", tmp, io.fsync, fh)
        finally:
            fh.close()
        _retry(io, policy, "replace", out, io.replace, tmp, out)
        if sync:
            _retry(
                io,
                policy,
                "fsync_dir",
                out,
                io.fsync_dir,
                os.path.dirname(out) or ".",
            )
    except BaseException:
        # Best-effort cleanup straight at the os layer: the artifact
        # contract is about the *final* path; a stray temp file is noise
        # an operator can delete, and chaos's power-cut restore is
        # authoritative over it anyway.
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise


def _write_all(
    io: FaultableIO,
    policy: IORetryPolicy,
    tmp: str,
    fh: IO[bytes],
    data: bytes,
) -> None:
    """Write + flush the whole payload, truncating before any retry so a
    partial write is never doubled."""
    for attempt in range(policy.max_attempts):
        try:
            io.write(fh, data)
            io.flush(fh)
            return
        except OSError as exc:
            transient = exc.errno in TRANSIENT_ERRNOS
            if transient and attempt + 1 < policy.max_attempts:
                fh.seek(0)
                fh.truncate()
                io.sleep(policy.backoff_s(attempt))
                continue
            kind = "transient fault persisted" if transient else "storage fault"
            raise StorageError(
                f"write failed for {tmp!r} ({kind}): {exc}",
                op="write",
                path=tmp,
                errno_value=exc.errno,
            ) from exc


def atomic_write_text(
    path: str | os.PathLike[str],
    text: str,
    *,
    encoding: str = "utf-8",
    io: FaultableIO | None = None,
    policy: IORetryPolicy = DEFAULT_RETRY,
    sync: bool = True,
) -> None:
    """Text form of :func:`atomic_write_bytes` (no newline translation,
    matching ``open(..., newline="")`` semantics)."""
    atomic_write_bytes(
        path, text.encode(encoding), io=io, policy=policy, sync=sync
    )


@contextlib.contextmanager
def atomic_write(
    path: str | os.PathLike[str],
    mode: str = "wb",
    *,
    encoding: str = "utf-8",
    io: FaultableIO | None = None,
    policy: IORetryPolicy = DEFAULT_RETRY,
    sync: bool = True,
) -> Iterator[IO[Any]]:
    """Context manager: build a whole-file artifact, publish atomically.

    Yields an in-memory buffer (seekable, like the file the caller used
    to open) and publishes it with :func:`atomic_write_bytes` on clean
    exit — making the retried unit the whole artifact, which is the only
    replayable granularity for caller-driven writes.  If the body
    raises, nothing is written at all.
    """
    if mode not in ("wb", "w"):
        raise ValueError(f"atomic_write supports 'w'/'wb', not {mode!r}")
    buf: IO[Any] = _pyio.BytesIO() if mode == "wb" else _pyio.StringIO()
    yield buf
    data = buf.getvalue()
    if isinstance(data, str):
        data = data.encode(encoding)
    atomic_write_bytes(path, data, io=io, policy=policy, sync=sync)


class DurableAppender:
    """Crash-safe line appender for JSONL logs.

    Every line is written + flushed immediately; the file is fsynced
    every ``sync_interval`` lines (the checkpoint boundary) and on
    close, so a power cut loses at most ``sync_interval - 1`` settled
    lines — with the default of 1, none.  A transient write failure
    newline-terminates whatever fragment may have landed and rewrites
    the whole line: the loader skips the malformed fragment and keeps
    the retried entry.
    """

    def __init__(
        self,
        path: str | os.PathLike[str],
        *,
        append: bool = False,
        sync_interval: int = 1,
        io: FaultableIO | None = None,
        policy: IORetryPolicy = DEFAULT_RETRY,
    ) -> None:
        if sync_interval < 0:
            raise ValueError("sync_interval must be >= 0 (0 = fsync only on close)")
        self.path = os.fspath(path)
        self.sync_interval = sync_interval
        self._io = io or get_io()
        self._policy = policy
        self._since_sync = 0
        mode = "a" if append else "w"
        torn_tail = append and self._ends_mid_line()
        self._fh: IO[str] | None = _retry(
            self._io,
            policy,
            "open",
            self.path,
            lambda: self._io.open(self.path, mode, encoding="utf-8"),
        )
        if torn_tail:
            # A previous writer died mid-line (power cut between write
            # and fsync).  Terminate the fragment so resumed lines start
            # fresh — the loader discards the malformed fragment.
            _retry(self._io, policy, "append", self.path, self._terminate)

    def _ends_mid_line(self) -> bool:
        try:
            with open(self.path, "rb") as fh:  # read path: not the seam
                fh.seek(0, os.SEEK_END)
                if fh.tell() == 0:
                    return False
                fh.seek(-1, os.SEEK_END)
                return fh.read(1) != b"\n"
        except OSError:
            return False

    def _terminate(self) -> None:
        assert self._fh is not None
        self._io.write(self._fh, "\n")
        self._io.flush(self._fh)

    @property
    def closed(self) -> bool:
        return self._fh is None

    def _require_open(self) -> IO[str]:
        if self._fh is None:
            raise ValueError(f"appender for {self.path!r} is closed")
        return self._fh

    def append_line(self, line: str) -> None:
        """Append one complete line (newline added if missing)."""
        fh = self._require_open()
        io, policy = self._io, self._policy
        data = line if line.endswith("\n") else line + "\n"
        for attempt in range(policy.max_attempts):
            try:
                io.write(fh, data)
                io.flush(fh)
                break
            except OSError as exc:
                transient = exc.errno in TRANSIENT_ERRNOS
                if transient and attempt + 1 < policy.max_attempts:
                    # Terminate any torn fragment so the retried line
                    # starts fresh; the loader discards the fragment.
                    with contextlib.suppress(OSError):
                        io.write(fh, "\n")
                        io.flush(fh)
                    io.sleep(policy.backoff_s(attempt))
                    continue
                kind = (
                    "transient fault persisted" if transient else "storage fault"
                )
                raise StorageError(
                    f"append failed for {self.path!r} ({kind}): {exc}",
                    op="append",
                    path=self.path,
                    errno_value=exc.errno,
                ) from exc
        self._since_sync += 1
        if self.sync_interval and self._since_sync >= self.sync_interval:
            self.checkpoint()

    def checkpoint(self) -> None:
        """fsync everything appended so far — the durability boundary."""
        fh = self._require_open()
        _retry(self._io, self._policy, "fsync", self.path, self._io.fsync, fh)
        self._since_sync = 0

    def close(self, *, sync: bool = True) -> None:
        if self._fh is None:
            return
        try:
            if sync and self._since_sync:
                self.checkpoint()
        finally:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "DurableAppender":
        return self

    def __exit__(self, *exc: object) -> None:
        # On an exception path, still try to make what was appended
        # durable; suppress nothing.
        self.close()


def durable_append(
    path: str | os.PathLike[str],
    *,
    append: bool = False,
    sync_interval: int = 1,
    io: FaultableIO | None = None,
    policy: IORetryPolicy = DEFAULT_RETRY,
) -> DurableAppender:
    """Open a :class:`DurableAppender` (functional spelling of the
    constructor, mirroring :func:`atomic_write`)."""
    return DurableAppender(
        path,
        append=append,
        sync_interval=sync_interval,
        io=io,
        policy=policy,
    )
