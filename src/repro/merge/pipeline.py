"""Combined pre-processing pipeline for one direction of one trace.

Chains concurrent fusion (②a) and neighbor merging (②b) and keeps the
stage-by-stage counts that the Fig. 2 rendering and the merging ablation
need.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..darshan.trace import Direction, OperationArray, Trace
from .concurrent import merge_concurrent
from .neighbor import NeighborMergeConfig, merge_neighbors

__all__ = ["MergePipelineResult", "preprocess_operations", "preprocess_trace"]


@dataclass(slots=True, frozen=True)
class MergePipelineResult:
    """Operations after the full fusion pipeline, with stage statistics."""

    ops: OperationArray
    n_raw: int
    n_after_concurrent: int
    n_after_neighbor: int
    neighbor_passes: int

    @property
    def reduction_ratio(self) -> float:
        return self.n_raw / self.n_after_neighbor if self.n_after_neighbor else 1.0


def preprocess_operations(
    ops: OperationArray,
    run_time: float,
    neighbor_config: NeighborMergeConfig | None = None,
    *,
    backend: str | None = None,
) -> MergePipelineResult:
    """Run concurrent + neighbor merging over an operation array."""
    conc = merge_concurrent(ops, backend=backend)
    neigh = merge_neighbors(conc.ops, run_time, neighbor_config, backend=backend)
    return MergePipelineResult(
        ops=neigh.ops,
        n_raw=len(ops),
        n_after_concurrent=conc.n_output,
        n_after_neighbor=neigh.n_output,
        neighbor_passes=neigh.n_passes,
    )


def preprocess_trace(
    trace: Trace,
    direction: Direction,
    neighbor_config: NeighborMergeConfig | None = None,
    *,
    backend: str | None = None,
) -> MergePipelineResult:
    """Extract and pre-process one direction of ``trace``."""
    return preprocess_operations(
        trace.operations(direction),
        trace.meta.run_time,
        neighbor_config,
        backend=backend,
    )
