"""Vectorized interval algebra primitives.

All MOSAIC pre-processing reduces to operations on sets of weighted
intervals ``(start, end, volume)``.  Following the NumPy-first idiom for
this codebase, the hot paths here are expressed as array operations —
union-find style grouping is done with one ``sort`` + one
``maximum.accumulate`` + one ``cumsum`` instead of Python loops, which is
what makes whole-corpus processing tractable on a single node.
"""

from __future__ import annotations

import numpy as np

from ..darshan.trace import OperationArray
from ..kernels import vectorized as _vec

__all__ = [
    "overlap_groups",
    "coalesce_groups",
    "union_length",
    "coverage_fraction",
    "gaps",
    "total_span",
]


def overlap_groups(starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
    """Label each interval with the id of its transitive-overlap group.

    Intervals must be sorted by ``starts``.  Two intervals belong to the
    same group iff they overlap or are chained together by overlapping
    intervals (transitive closure).  Touching intervals count as
    overlapping — two ranks writing back-to-back with no gap are one
    logical operation — and "touching" is judged at clock resolution
    (:data:`~repro.darshan.tolerance.TIME_TOLERANCE_S`), so a
    sub-microsecond gap introduced by float round-trips does not split a
    group.

    Returns an int64 array of group ids, non-decreasing, starting at 0.
    """
    return _vec.overlap_groups(starts, ends)


def coalesce_groups(ops: OperationArray, groups: np.ndarray) -> OperationArray:
    """Collapse each group of operations into a single operation.

    The merged operation spans min(start)→max(end) and carries the summed
    volume — exactly the paper's concurrent-fusion semantics (§III-B2a).
    """
    if len(ops) == 0:
        return OperationArray.empty()
    if len(groups) != len(ops):
        raise ValueError("groups must label every operation")
    starts, ends, volumes = _vec.coalesce_groups(
        ops.starts, ops.ends, ops.volumes, groups
    )
    return OperationArray(starts, ends, volumes)


def union_length(ops: OperationArray) -> float:
    """Total wall-clock time covered by at least one operation."""
    if len(ops) == 0:
        return 0.0
    groups = overlap_groups(ops.starts, ops.ends)
    merged = coalesce_groups(ops, groups)
    return float(np.sum(merged.ends - merged.starts))


def coverage_fraction(ops: OperationArray, run_time: float) -> float:
    """Fraction of the runtime covered by I/O activity (∈ [0, 1])."""
    if run_time <= 0:
        return 0.0
    return min(1.0, union_length(ops) / run_time)


def gaps(ops: OperationArray) -> np.ndarray:
    """Gap durations between consecutive operations (assumes
    non-overlapping, sorted input; negative values expose overlap)."""
    if len(ops) < 2:
        return np.empty(0, dtype=np.float64)
    return ops.starts[1:] - ops.ends[:-1]


def total_span(ops: OperationArray) -> float:
    """Time between the first operation start and the last operation end."""
    if len(ops) == 0:
        return 0.0
    return float(np.max(ops.ends) - float(ops.starts[0]))
