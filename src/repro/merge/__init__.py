"""Event fusion: concurrent-overlap merging and neighbor merging
(workflow step ② of the MOSAIC pipeline)."""

from .intervals import (
    coalesce_groups,
    coverage_fraction,
    gaps,
    overlap_groups,
    total_span,
    union_length,
)
from .concurrent import ConcurrentMergeResult, merge_concurrent
from .neighbor import NeighborMergeConfig, NeighborMergeResult, merge_neighbors
from .pipeline import MergePipelineResult, preprocess_operations, preprocess_trace

__all__ = [
    "coalesce_groups",
    "coverage_fraction",
    "gaps",
    "overlap_groups",
    "total_span",
    "union_length",
    "ConcurrentMergeResult",
    "merge_concurrent",
    "NeighborMergeConfig",
    "NeighborMergeResult",
    "merge_neighbors",
    "MergePipelineResult",
    "preprocess_operations",
    "preprocess_trace",
]
