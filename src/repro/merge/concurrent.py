"""Concurrent operation merging (paper §III-B2a, workflow step ②a).

If two I/O operations overlap in time they are fused into one.  The two
goals stated in the paper are preserved verbatim:

1. *Manage process desynchronization* — several ranks writing the same
   checkpoint slightly out of phase produce one merged operation instead
   of ``nprocs`` shards;
2. *Clarify the trace* so the segmentation stage sees one event per
   logical I/O phase, a precondition for periodicity detection.

Merging is transitive (a chain of pairwise-overlapping operations fuses
into one) and runs in O(n log n) dominated by the sort hidden in
:class:`~repro.darshan.trace.OperationArray` construction.
"""

from __future__ import annotations

from dataclasses import dataclass


from ..darshan.trace import OperationArray
from ..kernels import get_backend

__all__ = ["ConcurrentMergeResult", "merge_concurrent"]


@dataclass(slots=True, frozen=True)
class ConcurrentMergeResult:
    """Merged operations plus bookkeeping for ablation/reporting."""

    ops: OperationArray
    n_input: int
    n_output: int
    #: Number of input operations absorbed into some other operation.
    n_fused: int

    @property
    def reduction_ratio(self) -> float:
        """Input/output size ratio (1.0 = nothing merged)."""
        return self.n_input / self.n_output if self.n_output else 1.0


def merge_concurrent(
    ops: OperationArray, *, backend: str | None = None
) -> ConcurrentMergeResult:
    """Fuse transitively-overlapping operations.

    The merged operation spans the union of its members' windows and
    carries their summed volume.  Input order is irrelevant (the
    OperationArray invariant keeps starts sorted).  ``backend`` selects
    the grouping/coalescing kernels (``None`` = vectorized default).
    """
    n = len(ops)
    if n <= 1:
        return ConcurrentMergeResult(ops=ops, n_input=n, n_output=n, n_fused=0)
    kernels = get_backend(backend)
    groups = kernels.overlap_groups(ops.starts, ops.ends)
    starts, ends, volumes = kernels.coalesce_groups(
        ops.starts, ops.ends, ops.volumes, groups
    )
    merged = OperationArray(starts, ends, volumes)
    return ConcurrentMergeResult(
        ops=merged,
        n_input=n,
        n_output=len(merged),
        n_fused=n - len(merged),
    )
