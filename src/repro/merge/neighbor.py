"""Neighbor merging (paper §III-B2b, workflow step ②b).

After concurrent fusion the trace holds disjoint operations.  MOSAIC then
merges *nearby* operations when the gap between them is negligible:

    "less than 0.1% of the total execution time or less than 1% of the
    duration of the nearby merged operation"

This second pass retains only the data needed for a correct
categorization and absorbs slow process desynchronization: operations
that slid apart until they no longer overlap still fuse if the gap is
small relative to either scale.  "Nearby merged operation" is direction-
agnostic: the gap is compared against the duration of *either* adjacent
operation, so a long checkpoint trailing a short post-write absorbs it
just as a long one leading it does.

The scan repeats until a fixpoint — each pass strictly reduces the
operation count, so the loop terminates in at most ``n`` passes and in
practice in one or two.  The per-pass kernel comes from
:mod:`repro.kernels` (greedy Python reference or chain-merge NumPy
implementation); both converge to the same fixpoint because merging
only ever shrinks gaps and grows the durations the rule tests against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..darshan.trace import OperationArray
from ..kernels import get_backend

__all__ = ["NeighborMergeConfig", "NeighborMergeResult", "merge_neighbors"]


@dataclass(slots=True, frozen=True)
class NeighborMergeConfig:
    """Thresholds of the neighbor-merge rule.

    Defaults are the paper's: a gap is negligible when it is under 0.1% of
    the runtime *or* under 1% of the duration of either nearby operation.
    """

    runtime_fraction: float = 0.001
    op_fraction: float = 0.01
    #: Safety bound on fixpoint iterations (n passes always suffice).
    max_passes: int = 64

    def __post_init__(self) -> None:
        if self.runtime_fraction < 0 or self.op_fraction < 0:
            raise ValueError("merge fractions must be non-negative")
        if self.max_passes < 1:
            raise ValueError("max_passes must be >= 1")


@dataclass(slots=True, frozen=True)
class NeighborMergeResult:
    ops: OperationArray
    n_input: int
    n_output: int
    n_passes: int

    @property
    def n_fused(self) -> int:
        return self.n_input - self.n_output


def merge_neighbors(
    ops: OperationArray,
    run_time: float,
    config: NeighborMergeConfig | None = None,
    *,
    backend: str | None = None,
) -> NeighborMergeResult:
    """Merge operations separated by negligible gaps.

    ``ops`` should already be concurrent-merged (disjoint); overlapping
    input is tolerated and simply fuses.  ``run_time`` anchors the
    absolute gap threshold.  ``backend`` selects the per-pass kernel
    (:func:`repro.kernels.get_backend`; ``None`` = vectorized default).
    """
    cfg = config or NeighborMergeConfig()
    kernel = get_backend(backend).neighbor_pass
    n_input = len(ops)
    if n_input <= 1:
        return NeighborMergeResult(ops=ops, n_input=n_input, n_output=n_input, n_passes=0)

    abs_gap = cfg.runtime_fraction * max(run_time, 0.0)
    starts, ends, volumes = ops.starts, ops.ends, ops.volumes
    passes = 0
    for _ in range(cfg.max_passes):
        starts, ends, volumes, changed = kernel(
            starts, ends, volumes, abs_gap, cfg.op_fraction
        )
        passes += 1
        if not changed or len(starts) == 1:
            break
    merged = OperationArray(
        np.asarray(starts), np.asarray(ends), np.asarray(volumes)
    )
    return NeighborMergeResult(
        ops=merged, n_input=n_input, n_output=len(merged), n_passes=passes
    )
