"""Application catalog sharded by application-key hash.

The online :class:`~repro.core.stream.ApplicationCatalog` is a single
mutable dict guarded by nothing — fine for the one-consumer streaming
mode it was built for, hostile to a server where every in-flight job
folds results concurrently.  One big lock would serialize all of them.

:class:`ShardedCatalog` splits the key space into ``n_shards``
independent catalogs, each with its own lock, routed by a *stable* hash
(CRC-32 of ``uid:exe`` — not :func:`hash`, which is salted per process
and would re-shuffle applications across server restarts).  Traces for
different applications land on different shards and fold in parallel;
traces for the same application serialize on one shard, which is
exactly the ordering the keep-heaviest fold needs.

Aggregate views (``entries``, ``results``, counters) merge across
shards in application-key order, so a sharded catalog is observably
identical to one flat catalog fed the same traces.
"""

from __future__ import annotations

import threading
import zlib
from typing import TYPE_CHECKING, Any

from ..core.stream import AppEntry, ApplicationCatalog
from ..core.thresholds import DEFAULT_CONFIG, MosaicConfig
from ..darshan.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..columnar.store import CorpusStore

__all__ = ["ShardedCatalog", "shard_of"]

DEFAULT_SHARDS = 8


def shard_of(uid: int, exe: str, n_shards: int) -> int:
    """Stable shard index of one application key."""
    return zlib.crc32(f"{uid}:{exe}".encode()) % max(n_shards, 1)


class ShardedCatalog:
    """N independent catalogs behind one catalog-shaped facade."""

    def __init__(
        self,
        n_shards: int = DEFAULT_SHARDS,
        *,
        config: MosaicConfig = DEFAULT_CONFIG,
        min_weight_gain: float = 1.0,
        max_app_failures: int = 2,
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.n_shards = n_shards
        self.config = config
        self._shards = [
            ApplicationCatalog(
                config=config,
                min_weight_gain=min_weight_gain,
                max_app_failures=max_app_failures,
            )
            for _ in range(n_shards)
        ]
        self._locks = [threading.Lock() for _ in range(n_shards)]

    # -- routing -------------------------------------------------------
    def shard_index(self, uid: int, exe: str) -> int:
        return shard_of(uid, exe, self.n_shards)

    # -- ingest --------------------------------------------------------
    def ingest(self, trace: Trace) -> AppEntry | None:
        """Fold one trace into its application's shard (thread-safe)."""
        uid, exe = trace.meta.app_key
        shard = self.shard_index(uid, exe)
        with self._locks[shard]:
            return self._shards[shard].ingest(trace)

    def ingest_store(
        self, store: "CorpusStore", rows: list[int] | None = None
    ) -> int:
        """Bulk-ingest a compiled store, one batched pass per shard.

        Rows are partitioned by application shard and fed to each
        shard's :meth:`~repro.core.stream.ApplicationCatalog.ingest_store`
        — same fold semantics, per-shard locking.
        """
        if rows is None:
            rows = list(range(store.n_traces))
        by_shard: list[list[int]] = [[] for _ in range(self.n_shards)]
        for row in rows:
            uid, exe = store.app_key(row)
            by_shard[self.shard_index(uid, exe)].append(row)
        n_folded = 0
        for shard, shard_rows in enumerate(by_shard):
            if not shard_rows:
                continue
            with self._locks[shard]:
                n_folded += self._shards[shard].ingest_store(store, shard_rows)
        return n_folded

    def fold_result(self, result: Any, *, weight: float) -> AppEntry:
        """Fold one already-computed categorization into its shard.

        The server path: pipeline jobs produce
        :class:`~repro.core.result.CategorizationResult` objects without
        retaining their traces, so the catalog folds the result directly
        — same keep-heaviest and agreement bookkeeping as
        :meth:`~repro.core.stream.ApplicationCatalog.ingest`, minus the
        (already-done) validation and categorization.
        """
        uid, exe = result.app_key
        shard = self.shard_index(uid, exe)
        with self._locks[shard]:
            catalog = self._shards[shard]
            catalog.n_ingested += 1
            entry = catalog._entries.get((uid, exe))
            if entry is not None:
                entry.n_runs += 1
            return catalog._fold((uid, exe), weight, result, entry=entry)

    # -- queries -------------------------------------------------------
    def lookup(self, uid: int, exe: str) -> AppEntry | None:
        shard = self.shard_index(uid, exe)
        with self._locks[shard]:
            return self._shards[shard].lookup(uid, exe)

    def entries(self) -> list[AppEntry]:
        """All entries across shards, in application-key order."""
        keyed: list[tuple[tuple[int, str], AppEntry]] = []
        for shard, catalog in enumerate(self._shards):
            with self._locks[shard]:
                keyed.extend(sorted(catalog._entries.items()))
        keyed.sort(key=lambda kv: kv[0])
        return [entry for _key, entry in keyed]

    def results(self) -> list:
        return [e.result for e in self.entries()]

    def quarantined_apps(self) -> list[tuple[int, str]]:
        out: list[tuple[int, str]] = []
        for shard, catalog in enumerate(self._shards):
            with self._locks[shard]:
                out.extend(catalog.quarantined_apps())
        return sorted(out)

    def __len__(self) -> int:
        return sum(self.shard_sizes())

    def _sum(self, attr: str) -> int:
        return sum(getattr(c, attr) for c in self._shards)

    @property
    def n_ingested(self) -> int:
        return self._sum("n_ingested")

    @property
    def n_rejected(self) -> int:
        return self._sum("n_rejected")

    @property
    def n_failed(self) -> int:
        return self._sum("n_failed")

    @property
    def n_degraded(self) -> int:
        return self._sum("n_degraded")

    @property
    def n_quarantined(self) -> int:
        return self._sum("n_quarantined")

    # -- observability -------------------------------------------------
    def shard_sizes(self) -> list[int]:
        """Applications per shard (index ``i`` = shard ``i``)."""
        sizes = []
        for shard, catalog in enumerate(self._shards):
            with self._locks[shard]:
                sizes.append(len(catalog))
        return sizes

    def stats(self) -> dict[str, Any]:
        """Counter snapshot for ``/metrics``."""
        return {
            "n_shards": self.n_shards,
            "shard_sizes": self.shard_sizes(),
            "n_apps": len(self),
            "n_ingested": self.n_ingested,
            "n_rejected": self.n_rejected,
            "n_failed": self.n_failed,
            "n_degraded": self.n_degraded,
            "n_quarantined": self.n_quarantined,
        }
