"""Mosaic-as-a-service: the async categorization server.

``mosaic serve`` turns the batch pipeline into a long-lived daemon
co-located with the trace drop-box: clients POST jobs naming a
server-visible compiled store (``.mosc``) or trace directory, receive a
job id immediately, and either poll ``/jobs/<id>`` or stream settle
events over SSE.  Results are the byte-identical JSONL the batch CLI
writes — the server *is* :func:`~repro.core.pipeline.run_pipeline_store`
behind HTTP, not a reimplementation.

Stdlib only: one asyncio accept loop speaking minimal HTTP/1.1
(``Connection: close`` per request), with every blocking step —
registry appends, pipeline runs, result-file reads — pushed through
``loop.run_in_executor`` so the event loop never touches disk.  That
contract is linted (MOS019: no blocking I/O in ``repro.service``
coroutines), and every awaited socket read carries a deadline (MOS020)
so a slow-loris client cannot pin a coroutine.

The server is built to stay correct *under* overload and restarts:

* **admission control** (:mod:`.admission`) — the job queue, the
  concurrent-request count, and the summed in-flight body bytes are all
  bounded; beyond them the server sheds with ``429``/``503`` +
  ``Retry-After`` instead of queueing unboundedly, and every shed is
  accounted at ``/metrics``;
* **graceful drain** — SIGTERM flips ``/readyz`` to 503, refuses new
  submissions, lets the running job finish (queued jobs stay durably
  registered for the next incarnation), sends every SSE subscriber a
  terminal ``drain`` event, and exits.  A hard deadline
  (``drain_timeout_s``) escalates to the kill-9-safe resume path: the
  journal has checkpointed every settled trace, so abandoning the
  in-flight job costs only the one trace in flight;
* **durability** — the job registry (``<data>/jobs.jsonl``) is a
  :class:`~repro.io.DurableAppender` log replayed at startup; each
  job's per-trace outcomes live in its own
  :class:`~repro.parallel.jobstore.JobStore` journal, so restart
  resumes exactly where the previous incarnation died; idempotency
  keys persisted with submissions make client resubmission safe.

Routes::

    GET  /healthz             liveness (503 once the job worker died)
    GET  /readyz              readiness (503 while draining/degraded)
    GET  /metrics             queue depth, cache hit rate, shard sizes,
                              admission/shed counters, pipeline counters
    POST /jobs                {"store": path} | {"traces": path}
                              [+ "repair", "budget", "idempotency_key"]
                              -> 202 {job_id} | 200 (deduplicated)
    GET  /jobs                all jobs (registry order)
    GET  /jobs/<id>           one job's status
    GET  /jobs/<id>/results   JSONL (chunked) | 202 pending | 404 |
                              500 failed | 507 storage-failed
    GET  /jobs/<id>/events    SSE settle stream until terminal; settle
                              events carry ``id:`` so ``Last-Event-ID``
                              resumes from the journal

A job that dies with :class:`~repro.io.StorageError` (disk full, torn
device) is reported as HTTP 507 Insufficient Storage, matching the
batch CLI's dedicated exit code 3.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import functools
import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any

from ..core.governor import ResourceBudget
from ..core.pipeline import (
    PipelineContext,
    PipelineResult,
    run_pipeline_store,
    run_pipeline_stream,
)
from ..core.result import save_results_jsonl
from ..core.thresholds import DEFAULT_CONFIG, MosaicConfig
from ..darshan.errors import TraceFormatError
from ..darshan.source import DirectorySource
from ..io import DurableAppender, StorageError, atomic_write_text
from ..parallel.executor import ParallelConfig
from ..parallel.jobstore import replay_settles
from .admission import AdmissionControl, AdmissionLimits
from .cache import ResultCache, config_namespace
from .shards import ShardedCatalog

__all__ = ["JobRecord", "MosaicServer", "result_weight"]

#: Largest request body accepted by the default limits (submissions are
#: tiny JSON documents).  Kept as a module constant for callers that
#: sized payloads against the pre-admission-control server.
MAX_BODY_BYTES = AdmissionLimits().max_body_bytes

#: Job states.  queued/running are non-terminal; the rest are terminal.
_TERMINAL = frozenset({"done", "failed", "storage-failed"})

#: SSE event names that end a subscription.
_SSE_TERMINAL = frozenset({"finished", "drain"})

#: Exit status of a drain that hit its hard deadline: the process
#: abandons the in-flight executor thread (journal already checkpointed
#: every settled trace) and the supervisor restarts into journal resume.
DRAIN_ESCALATION_EXIT = 75  # EX_TEMPFAIL: transient, retry (restart) works

#: Budget for writing a refusal to a client that may itself be stalled.
_REJECT_SEND_TIMEOUT_S = 5.0

#: Most bytes read-and-dropped to let a rejected client finish sending,
#: so the refusal arrives instead of a connection reset.  Beyond this
#: the connection is simply closed.
_MAX_DISCARD_BYTES = 8 << 20


def result_weight(result: Any) -> float:
    """Catalog keep-heaviest weight of one categorization result.

    Approximates :meth:`~repro.darshan.trace.Trace.io_weight`
    (``total_bytes + total_metadata_ops``) from what the result retains:
    significant directions' chunk volumes plus metadata requests.
    """
    total = float(result.metadata_total)
    for vols in result.chunk_volumes.values():
        if vols:
            total += float(sum(vols))
    return total


class _SlowWorker:
    """Test-only worker wrapper: stretch each task by a fixed delay.

    Enabled via ``MOSAIC_SERVE_TEST_DELAY_S`` so crash tests can land a
    ``kill -9`` mid-journal deterministically.  Module-level and
    state-free, hence picklable for pool workers.
    """

    def __init__(self, fn: Any, delay_s: float) -> None:
        self.fn = fn
        self.delay_s = delay_s

    def __call__(self, item: Any) -> Any:
        time.sleep(self.delay_s)
        return self.fn(item)


class _Reject(Exception):
    """A request refused at the front door (status + payload)."""

    def __init__(
        self, status: int, reason: str, message: str, *, retry_after: bool = False
    ) -> None:
        super().__init__(message)
        self.status = status
        self.reason = reason
        self.message = message
        self.retry_after = retry_after


@dataclass(slots=True)
class _Request:
    """One parsed HTTP request plus its body-budget reservation."""

    method: str
    target: str
    headers: dict[str, str]
    body: bytes
    reserved: int


@dataclass(slots=True)
class JobRecord:
    """One submitted categorization job."""

    job_id: str
    kind: str  # "store" | "traces"
    path: str
    repair: bool = False
    budget: dict[str, Any] | None = None
    idempotency_key: str = ""
    status: str = "queued"
    error: str = ""
    n_results: int = -1
    n_failures: int = -1
    metrics: dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "job_id": self.job_id,
            "kind": self.kind,
            "path": self.path,
            "repair": self.repair,
            "status": self.status,
        }
        if self.budget:
            out["budget"] = self.budget
        if self.idempotency_key:
            out["idempotency_key"] = self.idempotency_key
        if self.error:
            out["error"] = self.error
        if self.n_results >= 0:
            out["n_results"] = self.n_results
            out["n_failures"] = self.n_failures
            out["metrics"] = self.metrics
        return out


class MosaicServer:
    """The service: job queue, registry, cache, catalog, HTTP front."""

    def __init__(
        self,
        data_dir: str | os.PathLike[str],
        *,
        config: MosaicConfig = DEFAULT_CONFIG,
        workers: int = 0,
        n_shards: int = 8,
        host: str = "127.0.0.1",
        port: int = 8377,
        limits: AdmissionLimits | None = None,
        sse_keepalive_s: float = 15.0,
    ) -> None:
        self.data_dir = os.fspath(data_dir)
        self.config = config
        self.workers = workers
        self.host = host
        self.port = port
        self.admission = AdmissionControl(limits)
        self.sse_keepalive_s = sse_keepalive_s
        self.jobs_dir = os.path.join(self.data_dir, "jobs")
        os.makedirs(self.jobs_dir, exist_ok=True)
        self.catalog = ShardedCatalog(n_shards, config=config)
        self._caches: dict[str, ResultCache] = {}
        self.jobs: dict[str, JobRecord] = {}
        self._order: list[str] = []
        self._seq = 0
        #: idempotency key -> job_id (rebuilt from the registry).
        self._idem_keys: dict[str, str] = {}
        #: Aggregated PipelineResult.metrics across finished jobs.
        self.pipeline_metrics: dict[str, int] = {}
        self._metrics_lock = threading.Lock()
        self._registry_path = os.path.join(self.data_dir, "jobs.jsonl")
        resumed = self._replay_registry()
        self._registry = DurableAppender(
            self._registry_path,
            append=os.path.exists(self._registry_path),
        )
        self._queue: asyncio.Queue[JobRecord] | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._drain: asyncio.Event | None = None
        #: True from the moment drain is requested; flips /readyz.
        self.draining = False
        #: True when the drain hard deadline passed with a job still
        #: running — ``serve_forever`` then exits without waiting for
        #: the abandoned executor thread (journal resume covers it).
        self.drain_escalated = False
        self._worker_task: asyncio.Task | None = None
        self._worker_exited_clean = False
        #: In-flight connection handler tasks, for clean teardown.
        self._conn_tasks: set[asyncio.Task] = set()
        #: job_id -> SSE subscriber queues.
        self._subscribers: dict[str, list[asyncio.Queue]] = {}
        #: Jobs run on a dedicated executor so an abandoned (escalated)
        #: job never blocks ``loop.shutdown_default_executor``.
        self._job_executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="mosaic-job"
        )
        self._resumed_at_start = resumed
        delay = os.environ.get("MOSAIC_SERVE_TEST_DELAY_S")
        self._test_delay_s = float(delay) if delay else 0.0

    # -- registry ------------------------------------------------------
    def _replay_registry(self) -> list[JobRecord]:
        """Rebuild job state from the append-only registry.

        Returns the non-terminal jobs (submitted, never finished) — the
        ones a previous incarnation died holding, to be re-queued.
        """
        try:
            with open(self._registry_path, "r", encoding="utf-8") as fh:
                lines = fh.readlines()
        except OSError:
            return []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail from a crashed append
            if event.get("event") == "submitted":
                job = JobRecord(
                    job_id=str(event["job_id"]),
                    kind=str(event["kind"]),
                    path=str(event["path"]),
                    repair=bool(event.get("repair", False)),
                    budget=event.get("budget"),
                    idempotency_key=str(event.get("idempotency_key", "")),
                )
                self.jobs[job.job_id] = job
                self._order.append(job.job_id)
                if job.idempotency_key:
                    self._idem_keys[job.idempotency_key] = job.job_id
                num = job.job_id.rsplit("-", 1)[-1]
                if num.isdigit():
                    self._seq = max(self._seq, int(num))
            elif event.get("event") == "finished":
                job = self.jobs.get(str(event.get("job_id", "")))
                if job is not None:
                    job.status = str(event.get("status", "failed"))
                    job.error = str(event.get("error", ""))
                    job.n_results = int(event.get("n_results", -1))
                    job.n_failures = int(event.get("n_failures", -1))
        return [j for j in self.jobs.values() if j.status not in _TERMINAL]

    def _register(self, event: dict[str, Any]) -> None:
        """Durably append one registry event (executor thread only)."""
        self._registry.append_line(json.dumps(event, separators=(",", ":")))

    # -- jobs ----------------------------------------------------------
    def cache_for(self, repair: bool) -> ResultCache:
        """The (config, repair)-namespaced result cache, memoized so hit
        counters survive across jobs."""
        ns = config_namespace(self.config, repair)
        if ns not in self._caches:
            self._caches[ns] = ResultCache(
                os.path.join(self.data_dir, "cache"), namespace=ns
            )
        return self._caches[ns]

    def _job_dir(self, job_id: str) -> str:
        return os.path.join(self.jobs_dir, job_id)

    def _job_config(self, job: JobRecord) -> MosaicConfig:
        if not job.budget:
            return self.config
        budget = ResourceBudget(**job.budget)
        return self.config.with_overrides(budget=budget)

    def _execute(self, job: JobRecord) -> PipelineResult:
        """Run one job's pipeline to completion (executor thread).

        The journal makes this restartable: when a journal already
        exists at the job's path, a previous incarnation died mid-job
        and the run resumes from its settled outcomes.
        """
        job_dir = self._job_dir(job.job_id)
        os.makedirs(job_dir, exist_ok=True)
        journal = os.path.join(job_dir, "journal.jsonl")
        resume = os.path.exists(journal)
        config = self._job_config(job)

        def on_settle(
            kind: str, trace_job_id: int, record: dict[str, Any], seq: int
        ) -> None:
            self._publish(
                job.job_id,
                {"event": kind, "trace_job_id": trace_job_id, "seq": seq},
            )

        ctx = PipelineContext(
            config=config,
            parallel=ParallelConfig(max_workers=self.workers),
            repair=job.repair,
            result_cache=self.cache_for(job.repair) if job.kind == "store" else None,
            on_settle=on_settle,
        )
        if self._test_delay_s > 0:
            delay = self._test_delay_s
            ctx.wrap_worker = lambda fn: _SlowWorker(fn, delay)
        try:
            if job.kind == "store":
                result = run_pipeline_store(
                    job.path,
                    context=ctx,
                    journal_path=journal,
                    resume=resume,
                )
            else:
                result = run_pipeline_stream(
                    DirectorySource(job.path),
                    context=ctx,
                    journal_path=journal,
                    resume=resume,
                )
        except TraceFormatError as exc:
            # an unreadable/corrupt submission is this job's failure,
            # re-raised as the typed error the job worker reports
            raise ValueError(f"unreadable {job.kind}: {exc}") from exc
        for r in result.results:
            self.catalog.fold_result(r, weight=result_weight(r))
        save_results_jsonl(
            result.results, os.path.join(job_dir, "results.jsonl")
        )
        job.n_results = result.n_categorized
        job.n_failures = result.n_failures
        job.metrics = dict(result.metrics)
        with self._metrics_lock:
            for key, value in result.metrics.items():
                self.pipeline_metrics[key] = (
                    self.pipeline_metrics.get(key, 0) + value
                )
        return result

    # -- SSE plumbing --------------------------------------------------
    def _publish(self, job_id: str, event: dict[str, Any]) -> None:
        """Push one event to a job's SSE subscribers (any thread)."""
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        loop.call_soon_threadsafe(self._publish_on_loop, job_id, event)

    def _publish_on_loop(self, job_id: str, event: dict[str, Any]) -> None:
        for queue in self._subscribers.get(job_id, []):
            queue.put_nowait(event)

    def _publish_all_on_loop(self, event: dict[str, Any]) -> None:
        """Broadcast one event to every SSE subscriber (loop side)."""
        for queues in self._subscribers.values():
            for queue in queues:
                queue.put_nowait(event)

    # -- async job machinery -------------------------------------------
    def _admit(self, job: JobRecord) -> None:
        """Make one admitted job visible and queued — synchronous, so
        the caller's admit-check and this insertion are one atomic step
        from the event loop's point of view."""
        assert self._queue is not None
        self.jobs[job.job_id] = job
        self._order.append(job.job_id)
        if job.idempotency_key:
            self._idem_keys[job.idempotency_key] = job.job_id
        self._queue.put_nowait(job)

    async def _register_submission(self, job: JobRecord) -> None:
        """Durably append the submitted event (event-loop side)."""
        assert self._loop is not None
        await self._loop.run_in_executor(
            None,
            self._register,
            {
                "event": "submitted",
                "job_id": job.job_id,
                "kind": job.kind,
                "path": job.path,
                "repair": job.repair,
                **(
                    {"idempotency_key": job.idempotency_key}
                    if job.idempotency_key
                    else {}
                ),
                **({"budget": job.budget} if job.budget else {}),
            },
        )

    async def _job_worker(self) -> None:
        """Drain the queue: one pipeline at a time per worker task."""
        assert self._loop is not None and self._queue is not None
        while True:
            job = await self._queue.get()
            if self.draining:
                # Not picked up: the job stays durably registered as
                # submitted-but-unfinished, so the next incarnation
                # re-queues it — "checkpointed", not lost.
                self._queue.task_done()
                continue
            job.status = "running"
            self._publish(job.job_id, {"event": "running"})
            try:
                await self._loop.run_in_executor(
                    self._job_executor, self._execute, job
                )
                job.status = "done"
            except StorageError as exc:
                job.status = "storage-failed"
                job.error = str(exc)
            except Exception as exc:  # noqa: BLE001 - job isolation
                job.status = "failed"
                job.error = f"{type(exc).__name__}: {exc}"
            await self._loop.run_in_executor(
                None,
                self._register,
                {
                    "event": "finished",
                    "job_id": job.job_id,
                    "status": job.status,
                    "error": job.error,
                    "n_results": job.n_results,
                    "n_failures": job.n_failures,
                },
            )
            self._publish(
                job.job_id, {"event": "finished", "status": job.status}
            )
            self._queue.task_done()

    # -- health ---------------------------------------------------------
    def worker_alive(self) -> bool:
        """True while the queue consumer task is running."""
        task = self._worker_task
        return task is not None and not task.done()

    def _worker_died(self) -> bool:
        """True when the queue consumer died *unexpectedly* — a done
        worker task during normal teardown is not a death."""
        task = self._worker_task
        return (
            task is not None
            and task.done()
            and not self._worker_exited_clean
            and not (self._stop is not None and self._stop.is_set())
        )

    # -- metrics -------------------------------------------------------
    def queue_depth(self) -> int:
        return sum(
            1 for j in self.jobs.values() if j.status in ("queued", "running")
        )

    def metrics(self) -> dict[str, Any]:
        by_status: dict[str, int] = {}
        for job in self.jobs.values():
            by_status[job.status] = by_status.get(job.status, 0) + 1
        caches = [c.stats() for c in self._caches.values()]
        hits = sum(c["hits"] for c in caches)
        misses = sum(c["misses"] for c in caches)
        with self._metrics_lock:
            pipeline = dict(self.pipeline_metrics)
        return {
            "queue_depth": self.queue_depth(),
            "draining": self.draining,
            "worker_alive": self.worker_alive(),
            "jobs": by_status,
            "admission": self.admission.snapshot(),
            "cache": {
                "hits": hits,
                "misses": misses,
                "hit_rate": round(hits / (hits + misses), 4)
                if hits + misses
                else 0.0,
                "namespaces": caches,
            },
            "catalog": self.catalog.stats(),
            "pipeline": pipeline,
        }

    # -- HTTP ----------------------------------------------------------
    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> _Request | None:
        """Parse one request under the admission deadlines and bounds.

        Returns ``None`` when the client hung up or sent garbage;
        raises :class:`_Reject` for every refusal the client should see
        (431 oversized headers, 413 oversized body, 503 body budget,
        408 slow-loris deadline).
        """
        limits = self.admission.limits
        loop = asyncio.get_running_loop()
        deadline = loop.time() + limits.header_timeout_s
        header_bytes = 0
        try:
            request_line = await asyncio.wait_for(
                reader.readline(), limits.header_timeout_s
            )
        except asyncio.TimeoutError:
            self.admission.header_timeouts += 1
            raise _Reject(
                408, "Request Timeout", "header read deadline exceeded"
            ) from None
        except ValueError:
            # the StreamReader line limit tripped: an unbounded request
            # line was refused at the transport buffer, not accumulated
            self.admission.shed_oversized_headers += 1
            raise _Reject(
                431,
                "Request Header Fields Too Large",
                f"request line exceeds {limits.max_header_bytes} bytes",
            ) from None
        if not request_line:
            return None
        header_bytes += len(request_line)
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return None
        method, target = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        while True:
            remaining = deadline - loop.time()
            if remaining <= 0:
                self.admission.header_timeouts += 1
                raise _Reject(
                    408, "Request Timeout", "header read deadline exceeded"
                )
            try:
                line = await asyncio.wait_for(reader.readline(), remaining)
            except asyncio.TimeoutError:
                self.admission.header_timeouts += 1
                raise _Reject(
                    408, "Request Timeout", "header read deadline exceeded"
                ) from None
            except ValueError:
                self.admission.shed_oversized_headers += 1
                raise _Reject(
                    431,
                    "Request Header Fields Too Large",
                    f"header line exceeds {limits.max_header_bytes} bytes",
                ) from None
            if line in (b"\r\n", b"\n", b""):
                break
            header_bytes += len(line)
            if header_bytes > limits.max_header_bytes:
                self.admission.shed_oversized_headers += 1
                raise _Reject(
                    431,
                    "Request Header Fields Too Large",
                    f"header section exceeds {limits.max_header_bytes} bytes",
                )
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            length = 0
        if length > limits.max_body_bytes:
            self.admission.shed_oversized_body += 1
            await self._discard_body(reader, length)
            raise _Reject(
                413,
                "Payload Too Large",
                f"body exceeds {limits.max_body_bytes} bytes",
            )
        body = b""
        reserved = 0
        if length > 0:
            if not self.admission.try_reserve_body(length):
                await self._discard_body(reader, length)
                raise _Reject(
                    503,
                    "Service Unavailable",
                    "in-flight request body budget exhausted; retry shortly",
                    retry_after=True,
                )
            reserved = length
            try:
                body = await asyncio.wait_for(
                    reader.readexactly(length), limits.body_timeout_s
                )
            except asyncio.TimeoutError:
                self.admission.body_timeouts += 1
                self.admission.release_body(reserved)
                raise _Reject(
                    408, "Request Timeout", "body read deadline exceeded"
                ) from None
            except asyncio.IncompleteReadError:
                self.admission.release_body(reserved)
                return None
        return _Request(method, target, headers, body, reserved)

    async def _discard_body(
        self, reader: asyncio.StreamReader, length: int
    ) -> None:
        """Read and drop a rejected body (bounded, never buffered whole).

        Closing with the client mid-send would reset the connection
        before the refusal arrives; draining its bytes — chunked, under
        the body deadline — lets the status code land.
        """
        assert self._loop is not None
        budget = min(length, _MAX_DISCARD_BYTES)
        deadline = self._loop.time() + self.admission.limits.body_timeout_s
        while budget > 0:
            remaining = deadline - self._loop.time()
            if remaining <= 0:
                return
            try:
                chunk = await asyncio.wait_for(
                    reader.read(min(budget, 64 * 1024)), remaining
                )
            except (asyncio.TimeoutError, ConnectionError, OSError):
                return
            if not chunk:
                return
            budget -= len(chunk)

    @staticmethod
    def _response(
        status: int,
        reason: str,
        body: bytes,
        content_type: str = "application/json",
        extra_headers: tuple[tuple[str, str], ...] = (),
    ) -> bytes:
        lines = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
        ]
        lines.extend(f"{name}: {value}" for name, value in extra_headers)
        lines.append("Connection: close")
        return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body

    async def _send_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        reason: str,
        payload: dict[str, Any],
        *,
        retry_after: bool = False,
    ) -> None:
        body = (json.dumps(payload, separators=(",", ":")) + "\n").encode()
        extra: tuple[tuple[str, str], ...] = ()
        if retry_after:
            extra = (
                ("Retry-After", str(self.admission.limits.retry_after_s)),
            )
        writer.write(self._response(status, reason, body, extra_headers=extra))
        await writer.drain()

    async def _send_reject(
        self, writer: asyncio.StreamWriter, reject: _Reject
    ) -> None:
        """Best-effort refusal to a client that may itself be stalled."""
        try:
            await asyncio.wait_for(
                self._send_json(
                    writer,
                    reject.status,
                    reject.reason,
                    {"error": reject.message},
                    retry_after=reject.retry_after,
                ),
                _REJECT_SEND_TIMEOUT_S,
            )
        except (asyncio.TimeoutError, ConnectionError, OSError):
            pass

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        if not self.admission.try_acquire_request():
            # shed without reading: the listener stays responsive while
            # refusing to buffer what it cannot serve
            try:
                await self._send_reject(
                    writer,
                    _Reject(
                        503,
                        "Service Unavailable",
                        "too many in-flight requests; retry shortly",
                        retry_after=True,
                    ),
                )
            finally:
                if task is not None:
                    self._conn_tasks.discard(task)
                await self._close_writer(writer)
            return
        request: _Request | None = None
        try:
            try:
                request = await self._read_request(reader)
            except _Reject as reject:
                await self._send_reject(writer, reject)
                return
            if request is None:
                return
            await self._route(request, writer)
        except (
            asyncio.TimeoutError,
            asyncio.IncompleteReadError,
            ConnectionError,
        ):
            pass
        except asyncio.CancelledError:
            # Teardown cancelled us mid-stream. Finish cleanly instead
            # of re-raising: on 3.11 the stream protocol's done-callback
            # calls task.exception() on a cancelled task, which would
            # re-raise into the loop's exception handler.
            pass
        finally:
            if request is not None and request.reserved:
                self.admission.release_body(request.reserved)
            self.admission.release_request()
            if task is not None:
                self._conn_tasks.discard(task)
            await self._close_writer(writer)

    async def _close_writer(self, writer: asyncio.StreamWriter) -> None:
        """Close one connection without ever blocking teardown.

        Normal path: close and flush, bounded — a peer that stops
        reading cannot pin the handler on its own unflushed bytes.
        Stop path: abort outright; the loop is exiting and a flush
        against a dead or idle peer would hang the teardown gather.
        """
        if self._stop is not None and self._stop.is_set():
            try:
                writer.transport.abort()
            except (ConnectionError, OSError):
                pass
            return
        try:
            writer.close()
            await asyncio.wait_for(writer.wait_closed(), 5.0)
        except (asyncio.TimeoutError, asyncio.CancelledError) as exc:
            try:
                writer.transport.abort()
            except (ConnectionError, OSError):
                pass
            if isinstance(exc, asyncio.CancelledError):
                raise
        except (ConnectionError, OSError):
            pass

    async def _route(
        self, request: _Request, writer: asyncio.StreamWriter
    ) -> None:
        method, target = request.method, request.target
        body = request.body
        path = target.split("?", 1)[0].rstrip("/") or "/"
        if method == "GET" and path == "/healthz":
            if self._worker_died():
                await self._send_json(
                    writer,
                    503,
                    "Service Unavailable",
                    {
                        "status": "degraded",
                        "error": "job worker task has died; "
                        "queued jobs will not run",
                    },
                )
            else:
                await self._send_json(writer, 200, "OK", {"status": "ok"})
        elif method == "GET" and path == "/readyz":
            if self.draining:
                await self._send_json(
                    writer,
                    503,
                    "Service Unavailable",
                    {"status": "draining"},
                    retry_after=True,
                )
            elif self._worker_died():
                await self._send_json(
                    writer,
                    503,
                    "Service Unavailable",
                    {"status": "degraded", "error": "job worker task has died"},
                )
            else:
                await self._send_json(writer, 200, "OK", {"status": "ready"})
        elif method == "GET" and path == "/metrics":
            await self._send_json(writer, 200, "OK", self.metrics())
        elif method == "GET" and path == "/catalog":
            await self._send_json(writer, 200, "OK", self._catalog_payload())
        elif method == "POST" and path == "/jobs":
            await self._handle_submit(body, writer)
        elif method == "GET" and path == "/jobs":
            await self._send_json(
                writer,
                200,
                "OK",
                {"jobs": [self.jobs[j].to_dict() for j in self._order]},
            )
        elif method == "GET" and path.startswith("/jobs/"):
            rest = path[len("/jobs/") :]
            if rest.endswith("/results"):
                await self._handle_results(rest[: -len("/results")], writer)
            elif rest.endswith("/events"):
                await self._handle_events(
                    rest[: -len("/events")], request.headers, writer
                )
            else:
                job = self.jobs.get(rest)
                if job is None:
                    await self._send_json(
                        writer, 404, "Not Found", {"error": f"no job {rest!r}"}
                    )
                elif job.status == "storage-failed":
                    await self._send_json(
                        writer, 507, "Insufficient Storage", job.to_dict()
                    )
                else:
                    await self._send_json(writer, 200, "OK", job.to_dict())
        else:
            await self._send_json(
                writer,
                404,
                "Not Found",
                {"error": f"no route {method} {path}"},
            )

    def _catalog_payload(self) -> dict[str, Any]:
        entries = self.catalog.entries()
        return {
            "n_apps": len(entries),
            "shard_sizes": self.catalog.shard_sizes(),
            "apps": [
                {
                    "uid": e.result.uid,
                    "exe": e.result.exe,
                    "categories": sorted(c.value for c in e.result.categories),
                    "n_runs": e.n_runs,
                    "stability": round(e.stability, 4),
                }
                for e in entries
            ],
        }

    async def _handle_submit(
        self, body: bytes, writer: asyncio.StreamWriter
    ) -> None:
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except (json.JSONDecodeError, UnicodeDecodeError):
            await self._send_json(
                writer, 400, "Bad Request", {"error": "body is not JSON"}
            )
            return
        store = payload.get("store")
        traces = payload.get("traces")
        if bool(store) == bool(traces):
            await self._send_json(
                writer,
                400,
                "Bad Request",
                {"error": "exactly one of 'store' or 'traces' is required"},
            )
            return
        idem_key = payload.get("idempotency_key", "")
        if not isinstance(idem_key, str) or len(idem_key) > 200:
            await self._send_json(
                writer,
                400,
                "Bad Request",
                {"error": "idempotency_key must be a string of <= 200 chars"},
            )
            return
        if idem_key:
            # a resubmission of work this server already holds is served
            # from the existing job — never shed, never duplicated
            existing_id = self._idem_keys.get(idem_key)
            existing = self.jobs.get(existing_id) if existing_id else None
            if existing is not None and existing.status not in (
                "failed",
                "storage-failed",
            ):
                await self._send_json(
                    writer,
                    200,
                    "OK",
                    {
                        "job_id": existing.job_id,
                        "status": existing.status,
                        "deduplicated": True,
                    },
                )
                return
        if self.draining:
            self.admission.shed_draining += 1
            await self._send_json(
                writer,
                503,
                "Service Unavailable",
                {"error": "server is draining; resubmit after restart"},
                retry_after=True,
            )
            return
        assert self._loop is not None
        kind = "store" if store else "traces"
        source = str(store or traces)
        probe = os.path.isfile if kind == "store" else os.path.isdir
        exists = await self._loop.run_in_executor(None, probe, source)
        if not exists:
            await self._send_json(
                writer,
                400,
                "Bad Request",
                {"error": f"no {kind} at {source!r} on the server"},
            )
            return
        budget = payload.get("budget")
        if budget is not None:
            try:
                ResourceBudget(**budget)
            except (TypeError, ValueError) as exc:
                await self._send_json(
                    writer, 400, "Bad Request", {"error": f"bad budget: {exc}"}
                )
                return
        # admit-check and job insertion with no await in between, so
        # concurrent submissions cannot all observe the pre-burst depth
        if not self.admission.admit_job(self.queue_depth()):
            await self._send_json(
                writer,
                429,
                "Too Many Requests",
                {
                    "error": "job queue is full "
                    f"({self.admission.limits.max_queue_depth} pending); "
                    "retry shortly",
                },
                retry_after=True,
            )
            return
        self._seq += 1
        job = JobRecord(
            job_id=f"job-{self._seq:06d}",
            kind=kind,
            path=source,
            repair=bool(payload.get("repair", False)),
            budget=budget,
            idempotency_key=idem_key,
        )
        self._admit(job)
        await self._register_submission(job)
        await self._send_json(
            writer, 202, "Accepted", {"job_id": job.job_id, "status": "queued"}
        )

    async def _handle_results(
        self, job_id: str, writer: asyncio.StreamWriter
    ) -> None:
        assert self._loop is not None
        job = self.jobs.get(job_id)
        if job is None:
            await self._send_json(
                writer, 404, "Not Found", {"error": f"no job {job_id!r}"}
            )
            return
        if job.status in ("queued", "running"):
            await self._send_json(writer, 202, "Accepted", job.to_dict())
            return
        if job.status == "storage-failed":
            await self._send_json(
                writer, 507, "Insufficient Storage", job.to_dict()
            )
            return
        if job.status == "failed":
            await self._send_json(
                writer, 500, "Internal Server Error", job.to_dict()
            )
            return
        results_path = os.path.join(self._job_dir(job_id), "results.jsonl")
        data = await self._loop.run_in_executor(
            None, self._read_results, results_path
        )
        if data is None:
            await self._send_json(
                writer,
                500,
                "Internal Server Error",
                {"error": f"results for {job_id!r} are missing on disk"},
            )
            return
        # Chunked JSONL: clients see lines as they are flushed.
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/jsonl\r\n"
            b"Transfer-Encoding: chunked\r\n"
            b"Connection: close\r\n\r\n"
        )
        for start in range(0, len(data), 64 * 1024):
            chunk = data[start : start + 64 * 1024]
            writer.write(f"{len(chunk):x}\r\n".encode() + chunk + b"\r\n")
            await writer.drain()
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    @staticmethod
    def _read_results(path: str) -> bytes | None:
        try:
            with open(path, "rb") as fh:
                return fh.read()
        except OSError:
            return None

    # -- SSE -------------------------------------------------------------
    @staticmethod
    def _sse_frame(event: dict[str, Any]) -> bytes:
        """One SSE frame; settle events carry their journal seq as ``id:``
        so clients can resume with ``Last-Event-ID``."""
        data = json.dumps(event, separators=(",", ":"))
        if "seq" in event:
            return f"id: {event['seq']}\ndata: {data}\n\n".encode()
        return f"data: {data}\n\n".encode()

    async def _handle_events(
        self,
        job_id: str,
        headers: dict[str, str],
        writer: asyncio.StreamWriter,
    ) -> None:
        assert self._loop is not None
        job = self.jobs.get(job_id)
        if job is None:
            await self._send_json(
                writer, 404, "Not Found", {"error": f"no job {job_id!r}"}
            )
            return
        after: int | None = None
        raw_last = headers.get("last-event-id")
        if raw_last is not None:
            try:
                after = max(0, int(raw_last))
            except ValueError:
                after = 0
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n\r\n"
        )
        sent = after or 0
        queue: asyncio.Queue | None = None
        if job.status not in _TERMINAL and not self.draining:
            # subscribe *before* replaying the journal so nothing
            # settles unseen in the gap; the live loop drops events
            # whose seq the replay already delivered
            queue = asyncio.Queue()
            self._subscribers.setdefault(job_id, []).append(queue)
        try:
            if queue is not None:
                writer.write(
                    self._sse_frame(
                        {"event": "subscribed", "status": job.status}
                    )
                )
                await writer.drain()
            if after is not None:
                journal = os.path.join(self._job_dir(job_id), "journal.jsonl")
                replayed = await self._loop.run_in_executor(
                    None, functools.partial(replay_settles, journal, after=after)
                )
                for seq, kind, entry in replayed:
                    writer.write(
                        self._sse_frame(
                            {
                                "event": kind,
                                "trace_job_id": int(entry["job_id"]),
                                "seq": seq,
                            }
                        )
                    )
                    sent = seq
                await writer.drain()
            if queue is None:
                # terminal (or draining) at subscribe time: replay above
                # is all there is — finish with the terminal event
                terminal = (
                    {"event": "finished", "status": job.status}
                    if job.status in _TERMINAL
                    else {"event": "drain"}
                )
                writer.write(self._sse_frame(terminal))
                await writer.drain()
                return
            while True:
                try:
                    event = await asyncio.wait_for(
                        queue.get(), timeout=self.sse_keepalive_s
                    )
                except asyncio.TimeoutError:
                    # heartbeat: keeps idle proxies from severing the
                    # stream and lets dead peers surface as write errors
                    writer.write(b": keepalive\n\n")
                    await writer.drain()
                    continue
                seq = event.get("seq")
                if seq is not None and seq <= sent:
                    continue  # already delivered by the journal replay
                writer.write(self._sse_frame(event))
                await writer.drain()
                if seq is not None:
                    sent = seq
                if event.get("event") in _SSE_TERMINAL:
                    return
        finally:
            if queue is not None:
                self._subscribers[job_id].remove(queue)
                if not self._subscribers[job_id]:
                    del self._subscribers[job_id]

    # -- lifecycle -----------------------------------------------------
    def _write_endpoint_file(self, host: str, port: int) -> None:
        """Publish the bound endpoint (``--port 0`` discovery)."""
        atomic_write_text(
            os.path.join(self.data_dir, "server.json"),
            json.dumps({"host": host, "port": port, "pid": os.getpid()}) + "\n",
        )

    def request_stop(self) -> None:
        """Immediate stop (second SIGTERM, SIGINT, tests)."""
        if self._stop is not None:
            self._stop.set()

    def request_drain(self) -> None:
        """Enter the draining state (first SIGTERM).

        Repeated calls escalate to an immediate stop — a second SIGTERM
        is the operator saying "now", and the journal makes that safe.
        """
        if self._drain is None:
            return
        if self.draining:
            self.request_stop()
            return
        self.draining = True
        self._drain.set()

    async def _graceful_drain(self) -> None:
        """Let in-flight work finish under the drain hard deadline."""
        assert self._loop is not None
        self.draining = True
        # every SSE subscriber gets a terminal drain event: consumers
        # reconnect after restart and resume via Last-Event-ID
        self._publish_all_on_loop({"event": "drain"})
        deadline = self._loop.time() + self.admission.limits.drain_timeout_s
        while any(j.status == "running" for j in self.jobs.values()):
            if self._stop is not None and self._stop.is_set():
                return
            if self._loop.time() >= deadline:
                # hard-deadline escalation: abandon the executor thread;
                # the job's journal has checkpointed every settled trace,
                # so the restart resumes it (the kill-9-safe path)
                self.drain_escalated = True
                return
            await asyncio.sleep(0.05)
        # the running job (if any) finished; give open streams a moment
        # to flush their terminal events before teardown cancels them
        while self._conn_tasks:
            if (
                (self._stop is not None and self._stop.is_set())
                or self._loop.time() >= deadline
            ):
                return
            await asyncio.sleep(0.02)

    async def run(self) -> None:
        """Serve until stop/drain (:meth:`request_stop`,
        :meth:`request_drain`, or a signal handler) fires."""
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue()
        self._stop = asyncio.Event()
        self._drain = asyncio.Event()
        for job in self._resumed_at_start:
            job.status = "queued"
            await self._queue.put(job)
        self._worker_exited_clean = False
        self._worker_task = asyncio.ensure_future(self._job_worker())
        server = await asyncio.start_server(
            self._handle_client,
            self.host,
            self.port,
            limit=self.admission.limits.max_header_bytes,
        )
        host, port = server.sockets[0].getsockname()[:2]
        await self._loop.run_in_executor(
            None, self._write_endpoint_file, host, port
        )
        stop_wait = asyncio.ensure_future(self._stop.wait())
        drain_wait = asyncio.ensure_future(self._drain.wait())
        try:
            async with server:
                await asyncio.wait(
                    {stop_wait, drain_wait},
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if self._drain.is_set() and not self._stop.is_set():
                    await self._graceful_drain()
        finally:
            for waiter in (stop_wait, drain_wait):
                waiter.cancel()
            await asyncio.gather(stop_wait, drain_wait, return_exceptions=True)
        # teardown: the queue consumer and every in-flight connection
        # are cancelled and awaited, so writers close cleanly and no
        # ConnectionResetError leaks into the loop's exception handler
        self._worker_exited_clean = True
        self._worker_task.cancel()
        conn_tasks = [t for t in self._conn_tasks if not t.done()]
        for task in conn_tasks:
            task.cancel()
        await asyncio.gather(
            self._worker_task, *conn_tasks, return_exceptions=True
        )
        try:
            await self._loop.run_in_executor(None, self._registry.close)
        except RuntimeError:
            # the executor pool is gone (interpreter finalizing under a
            # late teardown): close inline rather than skip the fsync
            self._registry.close()
        # never wait for an in-flight job here: a stop is the kill-like
        # path and the journal resumes whatever was abandoned.  (On a
        # normal process exit the interpreter still joins the executor
        # thread; an escalated drain bypasses that via serve_forever.)
        self._job_executor.shutdown(wait=False, cancel_futures=True)

    def serve_forever(self) -> None:
        """Blocking entry point used by ``mosaic serve``.

        SIGTERM drains gracefully (a second SIGTERM, or SIGINT, stops
        immediately).  A drain that exceeds its hard deadline exits with
        :data:`DRAIN_ESCALATION_EXIT` without waiting for the abandoned
        job — its journal resumes it on restart.
        """
        import signal

        async def _main() -> None:
            loop = asyncio.get_running_loop()
            try:
                loop.add_signal_handler(signal.SIGTERM, self.request_drain)
                loop.add_signal_handler(signal.SIGINT, self.request_stop)
            except (NotImplementedError, RuntimeError, ValueError):
                # no signal support here (non-main thread, exotic
                # loop): Ctrl-C still lands as KeyboardInterrupt
                pass
            await self.run()

        asyncio.run(_main())
        if self.drain_escalated:
            # the abandoned executor thread would otherwise keep the
            # interpreter alive past the hard deadline it just enforced
            os._exit(DRAIN_ESCALATION_EXIT)
