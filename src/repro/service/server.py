"""Mosaic-as-a-service: the async categorization server.

``mosaic serve`` turns the batch pipeline into a long-lived daemon
co-located with the trace drop-box: clients POST jobs naming a
server-visible compiled store (``.mosc``) or trace directory, receive a
job id immediately, and either poll ``/jobs/<id>`` or stream settle
events over SSE.  Results are the byte-identical JSONL the batch CLI
writes — the server *is* :func:`~repro.core.pipeline.run_pipeline_store`
behind HTTP, not a reimplementation.

Stdlib only: one asyncio accept loop speaking minimal HTTP/1.1
(``Connection: close`` per request), with every blocking step —
registry appends, pipeline runs, result-file reads — pushed through
``loop.run_in_executor`` so the event loop never touches disk.  That
contract is linted (MOS019: no blocking I/O in ``repro.service``
coroutines).

Durability is delegated to layers that already earn it:

* the **job registry** (``<data>/jobs.jsonl``) is a
  :class:`~repro.io.DurableAppender` log of ``submitted``/``finished``
  events, replayed at startup (torn tail tolerated).  A job submitted
  but never finished is re-queued with ``resume=True``;
* each job's per-trace outcomes live in its own
  :class:`~repro.parallel.jobstore.JobStore` journal
  (``<data>/jobs/<id>/journal.jsonl``), so a ``kill -9`` mid-job
  resumes exactly where it died — the journal lock's stale-pid
  detection clears the dead server's sidecar;
* results already categorized anywhere (this server, a previous
  incarnation, the batch CLI sharing the cache dir) are served from the
  content-addressed :class:`~repro.service.cache.ResultCache`.

Routes::

    GET  /healthz             liveness
    GET  /metrics             queue depth, cache hit rate, shard sizes,
                              aggregated pipeline counters
    POST /jobs                {"store": path} | {"traces": path}
                              [+ "repair", "budget"] -> 202 {job_id}
    GET  /jobs                all jobs (registry order)
    GET  /jobs/<id>           one job's status
    GET  /jobs/<id>/results   JSONL (chunked) | 202 pending | 404 |
                              500 failed | 507 storage-failed
    GET  /jobs/<id>/events    SSE settle stream until terminal
    GET  /catalog             sharded application catalog snapshot

A job that dies with :class:`~repro.io.StorageError` (disk full, torn
device) is reported as HTTP 507 Insufficient Storage, matching the
batch CLI's dedicated exit code 3.
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any

from ..core.governor import ResourceBudget
from ..core.pipeline import (
    PipelineContext,
    PipelineResult,
    run_pipeline_store,
    run_pipeline_stream,
)
from ..core.result import save_results_jsonl
from ..core.thresholds import DEFAULT_CONFIG, MosaicConfig
from ..darshan.errors import TraceFormatError
from ..darshan.source import DirectorySource
from ..io import DurableAppender, StorageError, atomic_write_text
from ..parallel.executor import ParallelConfig
from .cache import ResultCache, config_namespace
from .shards import ShardedCatalog

__all__ = ["JobRecord", "MosaicServer", "result_weight"]

#: Largest request body accepted (submissions are tiny JSON documents).
MAX_BODY_BYTES = 1 << 20

#: Job states.  queued/running are non-terminal; the rest are terminal.
_TERMINAL = frozenset({"done", "failed", "storage-failed"})

#: Seconds an idle SSE subscriber waits between keepalive comments.
_SSE_KEEPALIVE_S = 15.0


def result_weight(result: Any) -> float:
    """Catalog keep-heaviest weight of one categorization result.

    Approximates :meth:`~repro.darshan.trace.Trace.io_weight`
    (``total_bytes + total_metadata_ops``) from what the result retains:
    significant directions' chunk volumes plus metadata requests.
    """
    total = float(result.metadata_total)
    for vols in result.chunk_volumes.values():
        if vols:
            total += float(sum(vols))
    return total


class _SlowWorker:
    """Test-only worker wrapper: stretch each task by a fixed delay.

    Enabled via ``MOSAIC_SERVE_TEST_DELAY_S`` so crash tests can land a
    ``kill -9`` mid-journal deterministically.  Module-level and
    state-free, hence picklable for pool workers.
    """

    def __init__(self, fn: Any, delay_s: float) -> None:
        self.fn = fn
        self.delay_s = delay_s

    def __call__(self, item: Any) -> Any:
        time.sleep(self.delay_s)
        return self.fn(item)


@dataclass(slots=True)
class JobRecord:
    """One submitted categorization job."""

    job_id: str
    kind: str  # "store" | "traces"
    path: str
    repair: bool = False
    budget: dict[str, Any] | None = None
    status: str = "queued"
    error: str = ""
    n_results: int = -1
    n_failures: int = -1
    metrics: dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "job_id": self.job_id,
            "kind": self.kind,
            "path": self.path,
            "repair": self.repair,
            "status": self.status,
        }
        if self.budget:
            out["budget"] = self.budget
        if self.error:
            out["error"] = self.error
        if self.n_results >= 0:
            out["n_results"] = self.n_results
            out["n_failures"] = self.n_failures
            out["metrics"] = self.metrics
        return out


class MosaicServer:
    """The service: job queue, registry, cache, catalog, HTTP front."""

    def __init__(
        self,
        data_dir: str | os.PathLike[str],
        *,
        config: MosaicConfig = DEFAULT_CONFIG,
        workers: int = 0,
        n_shards: int = 8,
        host: str = "127.0.0.1",
        port: int = 8377,
    ) -> None:
        self.data_dir = os.fspath(data_dir)
        self.config = config
        self.workers = workers
        self.host = host
        self.port = port
        self.jobs_dir = os.path.join(self.data_dir, "jobs")
        os.makedirs(self.jobs_dir, exist_ok=True)
        self.catalog = ShardedCatalog(n_shards, config=config)
        self._caches: dict[str, ResultCache] = {}
        self.jobs: dict[str, JobRecord] = {}
        self._order: list[str] = []
        self._seq = 0
        #: Aggregated PipelineResult.metrics across finished jobs.
        self.pipeline_metrics: dict[str, int] = {}
        self._metrics_lock = threading.Lock()
        self._registry_path = os.path.join(self.data_dir, "jobs.jsonl")
        resumed = self._replay_registry()
        self._registry = DurableAppender(
            self._registry_path,
            append=os.path.exists(self._registry_path),
        )
        self._queue: asyncio.Queue[JobRecord] | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        #: job_id -> SSE subscriber queues.
        self._subscribers: dict[str, list[asyncio.Queue]] = {}
        self._resumed_at_start = resumed
        delay = os.environ.get("MOSAIC_SERVE_TEST_DELAY_S")
        self._test_delay_s = float(delay) if delay else 0.0

    # -- registry ------------------------------------------------------
    def _replay_registry(self) -> list[JobRecord]:
        """Rebuild job state from the append-only registry.

        Returns the non-terminal jobs (submitted, never finished) — the
        ones a previous incarnation died holding, to be re-queued.
        """
        try:
            with open(self._registry_path, "r", encoding="utf-8") as fh:
                lines = fh.readlines()
        except OSError:
            return []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail from a crashed append
            if event.get("event") == "submitted":
                job = JobRecord(
                    job_id=str(event["job_id"]),
                    kind=str(event["kind"]),
                    path=str(event["path"]),
                    repair=bool(event.get("repair", False)),
                    budget=event.get("budget"),
                )
                self.jobs[job.job_id] = job
                self._order.append(job.job_id)
                num = job.job_id.rsplit("-", 1)[-1]
                if num.isdigit():
                    self._seq = max(self._seq, int(num))
            elif event.get("event") == "finished":
                job = self.jobs.get(str(event.get("job_id", "")))
                if job is not None:
                    job.status = str(event.get("status", "failed"))
                    job.error = str(event.get("error", ""))
                    job.n_results = int(event.get("n_results", -1))
                    job.n_failures = int(event.get("n_failures", -1))
        return [j for j in self.jobs.values() if j.status not in _TERMINAL]

    def _register(self, event: dict[str, Any]) -> None:
        """Durably append one registry event (executor thread only)."""
        self._registry.append_line(json.dumps(event, separators=(",", ":")))

    # -- jobs ----------------------------------------------------------
    def cache_for(self, repair: bool) -> ResultCache:
        """The (config, repair)-namespaced result cache, memoized so hit
        counters survive across jobs."""
        ns = config_namespace(self.config, repair)
        if ns not in self._caches:
            self._caches[ns] = ResultCache(
                os.path.join(self.data_dir, "cache"), namespace=ns
            )
        return self._caches[ns]

    def _job_dir(self, job_id: str) -> str:
        return os.path.join(self.jobs_dir, job_id)

    def _job_config(self, job: JobRecord) -> MosaicConfig:
        if not job.budget:
            return self.config
        budget = ResourceBudget(**job.budget)
        return self.config.with_overrides(budget=budget)

    def _execute(self, job: JobRecord) -> PipelineResult:
        """Run one job's pipeline to completion (executor thread).

        The journal makes this restartable: when a journal already
        exists at the job's path, a previous incarnation died mid-job
        and the run resumes from its settled outcomes.
        """
        job_dir = self._job_dir(job.job_id)
        os.makedirs(job_dir, exist_ok=True)
        journal = os.path.join(job_dir, "journal.jsonl")
        resume = os.path.exists(journal)
        config = self._job_config(job)

        def on_settle(kind: str, trace_job_id: int, record: dict[str, Any]) -> None:
            self._publish(
                job.job_id, {"event": kind, "trace_job_id": trace_job_id}
            )

        ctx = PipelineContext(
            config=config,
            parallel=ParallelConfig(max_workers=self.workers),
            repair=job.repair,
            result_cache=self.cache_for(job.repair) if job.kind == "store" else None,
            on_settle=on_settle,
        )
        if self._test_delay_s > 0:
            delay = self._test_delay_s
            ctx.wrap_worker = lambda fn: _SlowWorker(fn, delay)
        try:
            if job.kind == "store":
                result = run_pipeline_store(
                    job.path,
                    context=ctx,
                    journal_path=journal,
                    resume=resume,
                )
            else:
                result = run_pipeline_stream(
                    DirectorySource(job.path),
                    context=ctx,
                    journal_path=journal,
                    resume=resume,
                )
        except TraceFormatError as exc:
            # an unreadable/corrupt submission is this job's failure,
            # re-raised as the typed error the job worker reports
            raise ValueError(f"unreadable {job.kind}: {exc}") from exc
        for r in result.results:
            self.catalog.fold_result(r, weight=result_weight(r))
        save_results_jsonl(
            result.results, os.path.join(job_dir, "results.jsonl")
        )
        job.n_results = result.n_categorized
        job.n_failures = result.n_failures
        job.metrics = dict(result.metrics)
        with self._metrics_lock:
            for key, value in result.metrics.items():
                self.pipeline_metrics[key] = (
                    self.pipeline_metrics.get(key, 0) + value
                )
        return result

    # -- SSE plumbing --------------------------------------------------
    def _publish(self, job_id: str, event: dict[str, Any]) -> None:
        """Push one event to a job's SSE subscribers (any thread)."""
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        loop.call_soon_threadsafe(self._publish_on_loop, job_id, event)

    def _publish_on_loop(self, job_id: str, event: dict[str, Any]) -> None:
        for queue in self._subscribers.get(job_id, []):
            queue.put_nowait(event)

    # -- async job machinery -------------------------------------------
    async def _submit(self, job: JobRecord) -> None:
        """Register and enqueue one job (event-loop side)."""
        assert self._loop is not None and self._queue is not None
        self.jobs[job.job_id] = job
        self._order.append(job.job_id)
        await self._loop.run_in_executor(
            None,
            self._register,
            {
                "event": "submitted",
                "job_id": job.job_id,
                "kind": job.kind,
                "path": job.path,
                "repair": job.repair,
                **({"budget": job.budget} if job.budget else {}),
            },
        )
        await self._queue.put(job)

    async def _job_worker(self) -> None:
        """Drain the queue: one pipeline at a time per worker task."""
        assert self._loop is not None and self._queue is not None
        while True:
            job = await self._queue.get()
            job.status = "running"
            self._publish(job.job_id, {"event": "running"})
            try:
                await self._loop.run_in_executor(None, self._execute, job)
                job.status = "done"
            except StorageError as exc:
                job.status = "storage-failed"
                job.error = str(exc)
            except Exception as exc:  # noqa: BLE001 - job isolation
                job.status = "failed"
                job.error = f"{type(exc).__name__}: {exc}"
            await self._loop.run_in_executor(
                None,
                self._register,
                {
                    "event": "finished",
                    "job_id": job.job_id,
                    "status": job.status,
                    "error": job.error,
                    "n_results": job.n_results,
                    "n_failures": job.n_failures,
                },
            )
            self._publish(
                job.job_id, {"event": "finished", "status": job.status}
            )
            self._queue.task_done()

    # -- metrics -------------------------------------------------------
    def queue_depth(self) -> int:
        return sum(
            1 for j in self.jobs.values() if j.status in ("queued", "running")
        )

    def metrics(self) -> dict[str, Any]:
        by_status: dict[str, int] = {}
        for job in self.jobs.values():
            by_status[job.status] = by_status.get(job.status, 0) + 1
        caches = [c.stats() for c in self._caches.values()]
        hits = sum(c["hits"] for c in caches)
        misses = sum(c["misses"] for c in caches)
        with self._metrics_lock:
            pipeline = dict(self.pipeline_metrics)
        return {
            "queue_depth": self.queue_depth(),
            "jobs": by_status,
            "cache": {
                "hits": hits,
                "misses": misses,
                "hit_rate": round(hits / (hits + misses), 4)
                if hits + misses
                else 0.0,
                "namespaces": caches,
            },
            "catalog": self.catalog.stats(),
            "pipeline": pipeline,
        }

    # -- HTTP ----------------------------------------------------------
    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, bytes | None] | None:
        """Parse one request; ``body=None`` signals an oversized body."""
        request_line = await reader.readline()
        if not request_line:
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return None
        method, target = parts[0].upper(), parts[1]
        length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    length = 0
        if length > MAX_BODY_BYTES:
            return method, target, None
        body = await reader.readexactly(length) if length else b""
        return method, target, body

    @staticmethod
    def _response(
        status: int,
        reason: str,
        body: bytes,
        content_type: str = "application/json",
    ) -> bytes:
        return (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        ).encode("latin-1") + body

    async def _send_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        reason: str,
        payload: dict[str, Any],
    ) -> None:
        body = (json.dumps(payload, separators=(",", ":")) + "\n").encode()
        writer.write(self._response(status, reason, body))
        await writer.drain()

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await asyncio.wait_for(
                self._read_request(reader), timeout=30.0
            )
            if request is None:
                return
            method, target, body = request
            if body is None:
                await self._send_json(
                    writer,
                    413,
                    "Payload Too Large",
                    {"error": f"body exceeds {MAX_BODY_BYTES} bytes"},
                )
                return
            await self._route(method, target, body, writer)
        except (
            asyncio.TimeoutError,
            asyncio.IncompleteReadError,
            ConnectionError,
        ):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _route(
        self,
        method: str,
        target: str,
        body: bytes,
        writer: asyncio.StreamWriter,
    ) -> None:
        path = target.split("?", 1)[0].rstrip("/") or "/"
        if method == "GET" and path == "/healthz":
            await self._send_json(writer, 200, "OK", {"status": "ok"})
        elif method == "GET" and path == "/metrics":
            await self._send_json(writer, 200, "OK", self.metrics())
        elif method == "GET" and path == "/catalog":
            await self._send_json(writer, 200, "OK", self._catalog_payload())
        elif method == "POST" and path == "/jobs":
            await self._handle_submit(body, writer)
        elif method == "GET" and path == "/jobs":
            await self._send_json(
                writer,
                200,
                "OK",
                {"jobs": [self.jobs[j].to_dict() for j in self._order]},
            )
        elif method == "GET" and path.startswith("/jobs/"):
            rest = path[len("/jobs/") :]
            if rest.endswith("/results"):
                await self._handle_results(rest[: -len("/results")], writer)
            elif rest.endswith("/events"):
                await self._handle_events(rest[: -len("/events")], writer)
            else:
                job = self.jobs.get(rest)
                if job is None:
                    await self._send_json(
                        writer, 404, "Not Found", {"error": f"no job {rest!r}"}
                    )
                elif job.status == "storage-failed":
                    await self._send_json(
                        writer, 507, "Insufficient Storage", job.to_dict()
                    )
                else:
                    await self._send_json(writer, 200, "OK", job.to_dict())
        else:
            await self._send_json(
                writer,
                404,
                "Not Found",
                {"error": f"no route {method} {path}"},
            )

    def _catalog_payload(self) -> dict[str, Any]:
        entries = self.catalog.entries()
        return {
            "n_apps": len(entries),
            "shard_sizes": self.catalog.shard_sizes(),
            "apps": [
                {
                    "uid": e.result.uid,
                    "exe": e.result.exe,
                    "categories": sorted(c.value for c in e.result.categories),
                    "n_runs": e.n_runs,
                    "stability": round(e.stability, 4),
                }
                for e in entries
            ],
        }

    async def _handle_submit(
        self, body: bytes, writer: asyncio.StreamWriter
    ) -> None:
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except (json.JSONDecodeError, UnicodeDecodeError):
            await self._send_json(
                writer, 400, "Bad Request", {"error": "body is not JSON"}
            )
            return
        store = payload.get("store")
        traces = payload.get("traces")
        if bool(store) == bool(traces):
            await self._send_json(
                writer,
                400,
                "Bad Request",
                {"error": "exactly one of 'store' or 'traces' is required"},
            )
            return
        assert self._loop is not None
        kind = "store" if store else "traces"
        source = str(store or traces)
        probe = os.path.isfile if kind == "store" else os.path.isdir
        exists = await self._loop.run_in_executor(None, probe, source)
        if not exists:
            await self._send_json(
                writer,
                400,
                "Bad Request",
                {"error": f"no {kind} at {source!r} on the server"},
            )
            return
        budget = payload.get("budget")
        if budget is not None:
            try:
                ResourceBudget(**budget)
            except (TypeError, ValueError) as exc:
                await self._send_json(
                    writer, 400, "Bad Request", {"error": f"bad budget: {exc}"}
                )
                return
        self._seq += 1
        job = JobRecord(
            job_id=f"job-{self._seq:06d}",
            kind=kind,
            path=source,
            repair=bool(payload.get("repair", False)),
            budget=budget,
        )
        await self._submit(job)
        await self._send_json(
            writer, 202, "Accepted", {"job_id": job.job_id, "status": "queued"}
        )

    async def _handle_results(
        self, job_id: str, writer: asyncio.StreamWriter
    ) -> None:
        assert self._loop is not None
        job = self.jobs.get(job_id)
        if job is None:
            await self._send_json(
                writer, 404, "Not Found", {"error": f"no job {job_id!r}"}
            )
            return
        if job.status in ("queued", "running"):
            await self._send_json(writer, 202, "Accepted", job.to_dict())
            return
        if job.status == "storage-failed":
            await self._send_json(
                writer, 507, "Insufficient Storage", job.to_dict()
            )
            return
        if job.status == "failed":
            await self._send_json(
                writer, 500, "Internal Server Error", job.to_dict()
            )
            return
        results_path = os.path.join(self._job_dir(job_id), "results.jsonl")
        data = await self._loop.run_in_executor(
            None, self._read_results, results_path
        )
        if data is None:
            await self._send_json(
                writer,
                500,
                "Internal Server Error",
                {"error": f"results for {job_id!r} are missing on disk"},
            )
            return
        # Chunked JSONL: clients see lines as they are flushed.
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/jsonl\r\n"
            b"Transfer-Encoding: chunked\r\n"
            b"Connection: close\r\n\r\n"
        )
        for start in range(0, len(data), 64 * 1024):
            chunk = data[start : start + 64 * 1024]
            writer.write(f"{len(chunk):x}\r\n".encode() + chunk + b"\r\n")
            await writer.drain()
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    @staticmethod
    def _read_results(path: str) -> bytes | None:
        try:
            with open(path, "rb") as fh:
                return fh.read()
        except OSError:
            return None

    async def _handle_events(
        self, job_id: str, writer: asyncio.StreamWriter
    ) -> None:
        job = self.jobs.get(job_id)
        if job is None:
            await self._send_json(
                writer, 404, "Not Found", {"error": f"no job {job_id!r}"}
            )
            return
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n\r\n"
        )

        def sse(event: dict[str, Any]) -> bytes:
            return f"data: {json.dumps(event, separators=(',', ':'))}\n\n".encode()

        if job.status in _TERMINAL:
            writer.write(sse({"event": "finished", "status": job.status}))
            await writer.drain()
            return
        queue: asyncio.Queue = asyncio.Queue()
        self._subscribers.setdefault(job_id, []).append(queue)
        try:
            writer.write(sse({"event": "subscribed", "status": job.status}))
            await writer.drain()
            while True:
                try:
                    event = await asyncio.wait_for(
                        queue.get(), timeout=_SSE_KEEPALIVE_S
                    )
                except asyncio.TimeoutError:
                    writer.write(b": keepalive\n\n")
                    await writer.drain()
                    continue
                writer.write(sse(event))
                await writer.drain()
                if event.get("event") == "finished":
                    return
        finally:
            self._subscribers[job_id].remove(queue)
            if not self._subscribers[job_id]:
                del self._subscribers[job_id]

    # -- lifecycle -----------------------------------------------------
    def _write_endpoint_file(self, host: str, port: int) -> None:
        """Publish the bound endpoint (``--port 0`` discovery)."""
        atomic_write_text(
            os.path.join(self.data_dir, "server.json"),
            json.dumps({"host": host, "port": port, "pid": os.getpid()}) + "\n",
        )

    def request_stop(self) -> None:
        if self._stop is not None:
            self._stop.set()

    async def run(self) -> None:
        """Serve until :meth:`request_stop` (or a signal handler) fires."""
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue()
        self._stop = asyncio.Event()
        for job in self._resumed_at_start:
            job.status = "queued"
            await self._queue.put(job)
        worker = asyncio.ensure_future(self._job_worker())
        server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        host, port = server.sockets[0].getsockname()[:2]
        await self._loop.run_in_executor(
            None, self._write_endpoint_file, host, port
        )
        async with server:
            await self._stop.wait()
        worker.cancel()
        await asyncio.gather(worker, return_exceptions=True)
        await self._loop.run_in_executor(None, self._registry.close)

    def serve_forever(self) -> None:
        """Blocking entry point used by ``mosaic serve``."""
        import signal

        async def _main() -> None:
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(sig, self.request_stop)
                except (NotImplementedError, RuntimeError, ValueError):
                    # no signal support here (non-main thread, exotic
                    # loop): Ctrl-C still lands as KeyboardInterrupt

                    pass
            await self.run()

        asyncio.run(_main())
