"""Mosaic-as-a-service: async categorization server plus its storage.

The service layer packages the batch pipeline for long-lived operation
(``mosaic serve``): an asyncio HTTP front end (:mod:`.server`) over the
shared journal-backed :class:`~repro.parallel.jobstore.JobStore`, a
content-addressed result cache (:mod:`.cache`) keyed on ``.mosc`` v2
per-trace CRC chains, and an application catalog sharded by app-key
hash (:mod:`.shards`) for concurrent scheduler queries.

Coroutines in this package must never block the event loop — every
filesystem or pipeline call goes through ``run_in_executor``.  The
contract is enforced statically by lint rule MOS019.
"""

from .admission import AdmissionControl, AdmissionLimits
from .cache import ResultCache, config_namespace
from .client import (
    CircuitBreaker,
    ClientRetryPolicy,
    MosaicClient,
    MosaicClientError,
    idempotency_key_for,
)
from .server import JobRecord, MosaicServer, result_weight
from .shards import ShardedCatalog, shard_of

__all__ = [
    "AdmissionControl",
    "AdmissionLimits",
    "CircuitBreaker",
    "ClientRetryPolicy",
    "JobRecord",
    "MosaicClient",
    "MosaicClientError",
    "MosaicServer",
    "ResultCache",
    "ShardedCatalog",
    "config_namespace",
    "idempotency_key_for",
    "result_weight",
    "shard_of",
]
