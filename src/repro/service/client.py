"""Resilient stdlib client for the categorization service.

The batch CLI talks to local disks; ``mosaic submit``/``mosaic watch``
talk to a server across a network that resets connections, stalls
mid-body, and restarts daemons.  This client makes that path as
deterministic as the batch one:

* **deterministic retries** — :class:`ClientRetryPolicy` mirrors
  :class:`repro.io.vfs.IORetryPolicy`: exponential backoff with no
  jitter, so a scripted fault sequence replays identically in tests.
  ``Retry-After`` hints from a shedding server are honored (the larger
  of hint and backoff wins).
* **circuit breaker** — :class:`CircuitBreaker` stops hammering a dead
  or shedding server: after ``failure_threshold`` consecutive transport
  failures the circuit opens and calls fail fast with
  :class:`CircuitOpenError` until ``reset_timeout_s`` passes; the next
  (half-open) probe closes it on success.
* **idempotent resubmission** — every submission carries an idempotency
  key derived from the ``.mosc`` per-trace CRC chain (plus repair flag
  and budget), so a retry of a ``POST /jobs`` whose response was lost
  dedups server-side instead of double-running the corpus
  (:func:`idempotency_key_for`).
* **SSE resume** — :meth:`MosaicClient.watch` records the ``id:`` of
  every settle event and reconnects with ``Last-Event-ID``, so a
  severed stream resumes from the server's journal without replaying
  (or dropping) settles.  A terminal ``drain`` event is treated as a
  planned disconnect: the client backs off and reconnects to the
  restarted server, which re-queues the job from its durable registry.

Transport is ``http.client`` only — the client must work in the same
no-third-party-deps envelope as the rest of the reproduction.
"""

from __future__ import annotations

import hashlib
import http.client
import json
import os
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterator

__all__ = [
    "CircuitBreaker",
    "CircuitOpenError",
    "ClientRetryPolicy",
    "MosaicClient",
    "MosaicClientError",
    "ServerUnavailable",
    "idempotency_key_for",
]

#: Job states the watch/wait loops stop on (mirrors the server's).
TERMINAL_STATUSES = frozenset({"done", "failed", "storage-failed"})

#: What "the transport failed" means: socket errors, timeouts, and
#: ``http.client`` protocol failures — a truncated chunked body raises
#: ``IncompleteRead`` and a severed status line ``BadStatusLine``, both
#: ``HTTPException`` rather than ``OSError``, and both retryable.
_TRANSPORT_ERRORS = (
    ConnectionError,
    TimeoutError,
    OSError,
    http.client.HTTPException,
)


class MosaicClientError(Exception):
    """Base class for client-side failures."""


class ServerUnavailable(MosaicClientError):
    """Retries exhausted without a usable response."""


class CircuitOpenError(MosaicClientError):
    """The circuit breaker is open; the call was not attempted."""


@dataclass(frozen=True, slots=True)
class ClientRetryPolicy:
    """Deterministic retry envelope (IORetryPolicy's shape, HTTP-sized).

    ``backoff_s(attempt)`` for attempt 0, 1, 2... is ``base * 2**attempt``
    capped at ``backoff_cap_s`` — no jitter, so chaos tests replay
    byte-identically.
    """

    max_attempts: int = 5
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff values must be >= 0")

    def backoff_s(self, attempt: int) -> float:
        return min(self.backoff_cap_s, self.backoff_base_s * (2**attempt))


class CircuitBreaker:
    """Consecutive-failure circuit: closed -> open -> half-open -> closed.

    ``failure_threshold`` consecutive transport failures open the
    circuit; while open, :meth:`allow` is ``False`` until
    ``reset_timeout_s`` passes, after which exactly one half-open probe
    is allowed — success closes the circuit, failure re-opens it.  The
    clock is injectable so tests never sleep.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout_s: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout_s <= 0:
            raise ValueError("reset_timeout_s must be > 0")
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self._clock = clock
        self.state = "closed"
        self.failures = 0
        self.opened_at = 0.0
        #: Times the circuit tripped open (observability/tests).
        self.n_opens = 0

    def allow(self) -> bool:
        if self.state == "closed":
            return True
        if self.state == "open":
            if self._clock() - self.opened_at >= self.reset_timeout_s:
                self.state = "half-open"
                return True
            return False
        return True  # half-open: the probe in flight

    def record_success(self) -> None:
        self.state = "closed"
        self.failures = 0

    def record_failure(self) -> None:
        self.failures += 1
        if self.state == "half-open" or self.failures >= self.failure_threshold:
            if self.state != "open":
                self.n_opens += 1
            self.state = "open"
            self.opened_at = self._clock()


def idempotency_key_for(
    kind: str,
    path: str | os.PathLike[str],
    *,
    repair: bool = False,
    budget: dict[str, Any] | None = None,
) -> str:
    """Content-derived submission key: same corpus, same key.

    For a ``.mosc`` store the key digests the version-2 per-trace CRC
    chain section (the same chain the server's result cache is
    addressed by), so a re-compile that produces identical bytes keeps
    the key and a changed corpus changes it.  A version-1 store (no
    CRC chain) digests the header's section CRCs instead.  A trace
    directory — no content manifest without reading every file —
    digests the sorted (name, size) listing.

    The repair flag and budget are mixed in: they change the output, so
    they must change the key.
    """
    path = os.fspath(path)
    h = hashlib.sha256()
    h.update(f"kind={kind}|repair={bool(repair)}|".encode())
    h.update(
        json.dumps(budget or {}, sort_keys=True, separators=(",", ":")).encode()
    )
    h.update(b"|")
    if kind == "store":
        from ..columnar.format import HEADER_SIZE, unpack_header

        with open(path, "rb") as fh:
            header = unpack_header(fh.read(HEADER_SIZE))
            crc_section = header["sections"].get("trace_crcs")
            if crc_section is not None and crc_section[1] > 0:
                offset, length, _crc = crc_section
                fh.seek(offset)
                h.update(b"crc-chain:")
                h.update(fh.read(length))
            else:
                h.update(b"section-crcs:")
                for name in sorted(header["sections"]):
                    _off, _len, crc = header["sections"][name]
                    h.update(f"{name}={crc:08x};".encode())
    else:
        h.update(b"listing:")
        try:
            names = sorted(os.listdir(path))
        except OSError:
            names = []
        for name in names:
            try:
                size = os.path.getsize(os.path.join(path, name))
            except OSError:
                size = -1
            h.update(f"{name}={size};".encode())
    return h.hexdigest()[:40]


def _parse_sse(lines: Iterator[bytes]) -> Iterator[tuple[str | None, dict]]:
    """Yield ``(event_id, event_dict)`` from an SSE byte-line stream.

    Comment lines (keepalive heartbeats) are skipped; an ``id:`` field
    applies to the event whose ``data:`` line follows it, matching the
    server's framing.
    """
    event_id: str | None = None
    for raw in lines:
        line = raw.rstrip(b"\r\n")
        if not line:
            continue
        if line.startswith(b":"):
            continue  # keepalive comment
        if line.startswith(b"id:"):
            event_id = line[3:].strip().decode("ascii", "replace")
            continue
        if line.startswith(b"data:"):
            try:
                payload = json.loads(line[5:].strip().decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError):
                continue
            yield event_id, payload
            event_id = None


class MosaicClient:
    """Retrying, breaker-guarded, resume-capable service client."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        retry: ClientRetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        timeout_s: float = 30.0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.host = host
        self.port = port
        self.retry = retry or ClientRetryPolicy()
        self.breaker = breaker or CircuitBreaker()
        self.timeout_s = timeout_s
        self._sleep = sleep
        # -- observability ---------------------------------------------
        self.n_retries = 0
        self.n_reconnects = 0
        self.n_resumed_events = 0
        self.n_shed_responses = 0

    # -- transport -----------------------------------------------------
    def _one_request(
        self,
        method: str,
        target: str,
        body: bytes | None,
        headers: dict[str, str],
    ) -> tuple[int, dict[str, str], bytes]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        try:
            conn.request(method, target, body=body, headers=headers)
            resp = conn.getresponse()
            data = resp.read()
            return resp.status, {k.lower(): v for k, v in resp.getheaders()}, data
        finally:
            conn.close()

    def request(
        self,
        method: str,
        target: str,
        *,
        payload: dict[str, Any] | None = None,
        idempotent: bool = True,
    ) -> tuple[int, bytes]:
        """One logical request under retry + breaker.

        Transport failures and shed responses (429/503 with
        ``Retry-After``) are retried up to the policy; anything else is
        returned to the caller as-is.  ``idempotent=False`` disables
        retry after a transport failure *past the request send* cannot
        be ruled out — submissions always carry an idempotency key, so
        the CLI never needs it.
        """
        body = None
        headers: dict[str, str] = {}
        if payload is not None:
            body = json.dumps(payload, separators=(",", ":")).encode()
            headers["Content-Type"] = "application/json"
        last_error = "no attempt made"
        for attempt in range(self.retry.max_attempts):
            if attempt:
                self.n_retries += 1
            if not self.breaker.allow():
                raise CircuitOpenError(
                    f"circuit open after {self.breaker.failures} consecutive "
                    f"failures; retry after {self.breaker.reset_timeout_s}s"
                )
            try:
                status, resp_headers, data = self._one_request(
                    method, target, body, headers
                )
            except _TRANSPORT_ERRORS as exc:
                self.breaker.record_failure()
                last_error = f"{type(exc).__name__}: {exc}"
                if not idempotent:
                    raise ServerUnavailable(
                        f"{method} {target} failed mid-flight and is not "
                        f"idempotent: {last_error}"
                    ) from exc
                self._sleep(self.retry.backoff_s(attempt))
                continue
            if status < 400 and not (
                "content-length" in resp_headers
                or "transfer-encoding" in resp_headers
            ):
                # a response severed inside its header section parses
                # as a framing-less success with a read-to-EOF body —
                # indistinguishable from truncation, so retry it; the
                # real server always frames its responses
                self.breaker.record_failure()
                last_error = f"HTTP {status} without framing headers"
                self._sleep(self.retry.backoff_s(attempt))
                continue
            if status in (429, 503):
                # shed, not broken: honor Retry-After but keep the
                # breaker informed — a shedding server is still a
                # server we should stop hammering
                self.n_shed_responses += 1
                self.breaker.record_failure()
                last_error = f"HTTP {status}: {data[:200]!r}"
                try:
                    hint = float(resp_headers.get("retry-after", "0"))
                except ValueError:
                    hint = 0.0
                self._sleep(max(hint, self.retry.backoff_s(attempt)))
                continue
            self.breaker.record_success()
            return status, data
        raise ServerUnavailable(
            f"{method} {target} failed after "
            f"{self.retry.max_attempts} attempts: {last_error}"
        )

    # -- API -----------------------------------------------------------
    def submit(
        self,
        *,
        store: str | None = None,
        traces: str | None = None,
        repair: bool = False,
        budget: dict[str, Any] | None = None,
        idempotency_key: str | None = None,
    ) -> dict[str, Any]:
        """Submit one job; returns ``{"job_id", "status"[, "deduplicated"]}``.

        The idempotency key is derived from content when not given, so
        retried/resubmitted identical work dedups server-side.
        """
        if bool(store) == bool(traces):
            raise ValueError("exactly one of store/traces is required")
        kind = "store" if store else "traces"
        path = str(store or traces)
        if idempotency_key is None:
            idempotency_key = idempotency_key_for(
                kind, path, repair=repair, budget=budget
            )
        payload: dict[str, Any] = {
            kind: path,
            "repair": repair,
            "idempotency_key": idempotency_key,
        }
        if budget:
            payload["budget"] = budget
        status, data = self.request("POST", "/jobs", payload=payload)
        if status not in (200, 202):
            raise MosaicClientError(
                f"submission rejected: HTTP {status}: {data.decode(errors='replace')}"
            )
        return json.loads(data)

    def job(self, job_id: str) -> dict[str, Any]:
        status, data = self.request("GET", f"/jobs/{job_id}")
        if status == 404:
            raise MosaicClientError(f"no job {job_id!r} on the server")
        return json.loads(data)

    def results(self, job_id: str) -> bytes:
        """The job's results JSONL, byte-identical to the batch CLI's.

        The results file is immutable once the job is done, so a
        truncated read simply retries the whole GET.
        """
        status, data = self.request("GET", f"/jobs/{job_id}/results")
        if status != 200:
            raise MosaicClientError(
                f"results for {job_id!r} not servable: HTTP {status}: "
                f"{data.decode(errors='replace')}"
            )
        return data

    def wait(
        self, job_id: str, *, poll_s: float = 0.2, timeout_s: float = 600.0
    ) -> dict[str, Any]:
        """Poll until the job is terminal; returns the final record."""
        deadline = time.monotonic() + timeout_s
        while True:
            job = self.job(job_id)
            if job.get("status") in TERMINAL_STATUSES:
                return job
            if time.monotonic() >= deadline:
                raise ServerUnavailable(
                    f"{job_id} still {job.get('status')!r} after {timeout_s}s"
                )
            self._sleep(poll_s)

    # -- SSE watch -----------------------------------------------------
    def _open_event_stream(
        self, job_id: str, last_event_id: int
    ) -> tuple[Any, Any]:
        """One SSE connection (returns (conn, response)); caller closes."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        headers = {"Accept": "text/event-stream"}
        if last_event_id > 0:
            headers["Last-Event-ID"] = str(last_event_id)
        conn.request("GET", f"/jobs/{job_id}/events", headers=headers)
        resp = conn.getresponse()
        if resp.status != 200:
            data = resp.read()
            conn.close()
            raise MosaicClientError(
                f"event stream for {job_id!r} refused: HTTP {resp.status}: "
                f"{data.decode(errors='replace')}"
            )
        return conn, resp

    def watch(
        self,
        job_id: str,
        *,
        timeout_s: float = 600.0,
        on_event: Callable[[dict[str, Any]], None] | None = None,
    ) -> dict[str, Any]:
        """Follow the job's settle stream to a terminal state.

        Severed streams (reset, stall, truncation) reconnect with
        ``Last-Event-ID`` so settles are neither dropped nor duplicated;
        a ``drain`` event means the server is restarting — the client
        keeps reconnecting (the job survives in the durable registry)
        until the job is terminal or ``timeout_s`` passes.  Returns the
        final job record.
        """
        deadline = time.monotonic() + timeout_s
        last_seq = 0
        attempt = 0
        while time.monotonic() < deadline:
            if not self.breaker.allow():
                self._sleep(self.breaker.reset_timeout_s / 2)
                continue
            try:
                conn, resp = self._open_event_stream(job_id, last_seq)
            except MosaicClientError:
                raise
            except _TRANSPORT_ERRORS:
                self.breaker.record_failure()
                self.n_reconnects += 1
                self._sleep(self.retry.backoff_s(attempt))
                attempt = min(attempt + 1, 16)
                continue
            self.breaker.record_success()
            made_progress = False
            try:
                for event_id, event in _parse_sse(iter(resp.readline, b"")):
                    made_progress = True
                    if event_id is not None:
                        try:
                            seq = int(event_id)
                        except ValueError:
                            seq = 0
                        if seq and seq <= last_seq:
                            continue  # replayed overlap after resume
                        if seq:
                            if last_seq:
                                self.n_resumed_events += 1
                            last_seq = seq
                    if on_event is not None:
                        on_event(event)
                    name = event.get("event")
                    if name == "finished":
                        return self.job(job_id)
                    if name == "drain":
                        break  # planned server restart: reconnect
            except _TRANSPORT_ERRORS:
                pass  # severed mid-stream: reconnect below
            finally:
                conn.close()
            self.n_reconnects += 1
            # a stream that delivered events resets the backoff ladder;
            # one that died instantly climbs it
            attempt = 0 if made_progress else min(attempt + 1, 16)
            self._sleep(self.retry.backoff_s(attempt))
        raise ServerUnavailable(f"{job_id} not terminal after {timeout_s}s")
