"""Admission control: the server's overload contract.

A categorization server in front of a fleet-scale trace drop-box sees
three distinct kinds of overload, and each one needs a different
refusal:

* **too many jobs** — pipeline runs are minutes long; an unbounded job
  queue is an unbounded promise.  Beyond :attr:`AdmissionLimits.max_queue_depth`
  pending jobs, submissions are shed with ``429 Too Many Requests`` and
  a ``Retry-After`` hint.  Already-accepted work is never dropped.
* **too many sockets** — every accepted connection pins a coroutine and
  its buffers.  Beyond :attr:`AdmissionLimits.max_inflight_requests`
  concurrent requests, new ones get an immediate ``503`` without their
  request even being read.
* **too many bytes** — request bodies are buffered while parsed, so the
  *sum* of in-flight body bytes is bounded
  (:attr:`AdmissionLimits.max_inflight_body_bytes`); a burst of maximal
  bodies degrades to ``503`` instead of an OOM kill.

Per-request reads additionally carry deadlines
(:attr:`AdmissionLimits.header_timeout_s`,
:attr:`AdmissionLimits.body_timeout_s`) so a slow-loris client
trickling one header byte per second cannot pin a coroutine forever —
the read is abandoned and the slot freed.  Oversized header sections
are rejected with ``431`` before they are buffered
(:attr:`AdmissionLimits.max_header_bytes`).

Every refusal increments a named counter in :class:`AdmissionControl`;
``/metrics`` exposes the lot, so "how much did we shed and why" is one
GET — the degrade-don't-die ladder's observability rule, applied to the
front door.  All mutation happens on the event loop, so plain ints
suffice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["AdmissionControl", "AdmissionLimits"]


@dataclass(slots=True, frozen=True)
class AdmissionLimits:
    """Bounds and deadlines the server enforces at its front door.

    The zero-cost defaults suit a single-operator deployment; a fleet
    front-end tightens them per capacity.  All values are validated at
    construction so a bad flag fails at startup, not mid-overload.
    """

    #: Pending jobs (queued + running) beyond which submissions shed 429.
    max_queue_depth: int = 64
    #: Concurrent in-flight HTTP requests beyond which connections shed 503.
    max_inflight_requests: int = 128
    #: Summed Content-Length of bodies currently buffered; beyond it 503.
    max_inflight_body_bytes: int = 8 << 20
    #: Single-request body bound (413 beyond; submissions are tiny JSON).
    max_body_bytes: int = 1 << 20
    #: Request-line + header section bound (431 beyond).
    max_header_bytes: int = 16 << 10
    #: Wall-clock budget for reading the request line and headers.
    header_timeout_s: float = 10.0
    #: Wall-clock budget for reading the request body.
    body_timeout_s: float = 30.0
    #: Retry-After hint (seconds) sent with every 429/503 shed.
    retry_after_s: int = 1
    #: Graceful-drain budget: seconds the server waits for the running
    #: job to finish after SIGTERM before escalating to the
    #: kill-9-safe journal-resume path.
    drain_timeout_s: float = 30.0

    def __post_init__(self) -> None:
        for name in (
            "max_queue_depth",
            "max_inflight_requests",
            "max_inflight_body_bytes",
            "max_body_bytes",
            "max_header_bytes",
        ):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        for name in ("header_timeout_s", "body_timeout_s", "drain_timeout_s"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be > 0")
        if self.retry_after_s < 1:
            raise ValueError("retry_after_s must be >= 1")


class AdmissionControl:
    """Counters and slot accounting behind the limits.

    One instance per server, mutated only from the event loop.  The
    ``shed_*`` counters are the acceptance signal: every refused
    request increments exactly one of them, so the sum of sheds equals
    the number of non-2xx refusals the server issued under load.
    """

    def __init__(self, limits: AdmissionLimits | None = None) -> None:
        self.limits = limits or AdmissionLimits()
        self.inflight_requests = 0
        self.inflight_body_bytes = 0
        #: Peak concurrency observed, for capacity planning.
        self.peak_inflight_requests = 0
        self.accepted_requests = 0
        # -- sheds, one counter per refusal class ----------------------
        self.shed_jobs = 0  # 429: job queue full
        self.shed_connections = 0  # 503: too many in-flight requests
        self.shed_body_bytes = 0  # 503: in-flight body budget exhausted
        self.shed_oversized_headers = 0  # 431
        self.shed_oversized_body = 0  # 413
        self.shed_draining = 0  # 503: submission during drain
        self.header_timeouts = 0  # slow-loris header reads abandoned
        self.body_timeouts = 0  # slow-loris body reads abandoned

    # -- connection slots ----------------------------------------------
    def try_acquire_request(self) -> bool:
        """Claim an in-flight request slot; ``False`` sheds the request."""
        if self.inflight_requests >= self.limits.max_inflight_requests:
            self.shed_connections += 1
            return False
        self.inflight_requests += 1
        self.peak_inflight_requests = max(
            self.peak_inflight_requests, self.inflight_requests
        )
        self.accepted_requests += 1
        return True

    def release_request(self) -> None:
        self.inflight_requests = max(0, self.inflight_requests - 1)

    # -- body budget ----------------------------------------------------
    def try_reserve_body(self, n_bytes: int) -> bool:
        """Reserve buffer budget for one request body."""
        if (
            self.inflight_body_bytes + n_bytes
            > self.limits.max_inflight_body_bytes
        ):
            self.shed_body_bytes += 1
            return False
        self.inflight_body_bytes += n_bytes
        return True

    def release_body(self, n_bytes: int) -> None:
        self.inflight_body_bytes = max(0, self.inflight_body_bytes - n_bytes)

    # -- job queue -------------------------------------------------------
    def admit_job(self, queue_depth: int) -> bool:
        """True when a new job fits under the queue bound."""
        if queue_depth >= self.limits.max_queue_depth:
            self.shed_jobs += 1
            return False
        return True

    # -- observability ---------------------------------------------------
    def total_shed(self) -> int:
        return (
            self.shed_jobs
            + self.shed_connections
            + self.shed_body_bytes
            + self.shed_oversized_headers
            + self.shed_oversized_body
            + self.shed_draining
        )

    def snapshot(self) -> dict[str, Any]:
        """The ``/metrics`` admission section."""
        return {
            "limits": {
                "max_queue_depth": self.limits.max_queue_depth,
                "max_inflight_requests": self.limits.max_inflight_requests,
                "max_inflight_body_bytes": self.limits.max_inflight_body_bytes,
                "max_body_bytes": self.limits.max_body_bytes,
                "max_header_bytes": self.limits.max_header_bytes,
            },
            "inflight_requests": self.inflight_requests,
            "peak_inflight_requests": self.peak_inflight_requests,
            "inflight_body_bytes": self.inflight_body_bytes,
            "accepted_requests": self.accepted_requests,
            "shed": {
                "jobs_429": self.shed_jobs,
                "connections_503": self.shed_connections,
                "body_budget_503": self.shed_body_bytes,
                "draining_503": self.shed_draining,
                "oversized_headers_431": self.shed_oversized_headers,
                "oversized_body_413": self.shed_oversized_body,
                "total": self.total_shed(),
            },
            "header_timeouts": self.header_timeouts,
            "body_timeouts": self.body_timeouts,
        }
