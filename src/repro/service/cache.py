"""Content-addressed categorization result cache.

At service scale the same trace arrives more than once: a tracer
front-end re-submits a corpus after a crash, a scheduler re-queries last
week's fleet, two users share a benchmark.  Categorization is
deterministic — same bytes, same config, same result — so identical
traces should be categorized exactly once.

The address is the trace's *content*, not its path: the per-trace CRC
chain the ``.mosc`` v2 store records at compile time
(:func:`repro.columnar.format.trace_crc32` — covering the index row,
record slab, operation slabs, and every referenced heap string), mixed
with a namespace digest of the :class:`~repro.core.thresholds.MosaicConfig`
repr and the repair flag, since either changes the output.  Entries are
one JSON file per key, fanned out by the key's first byte
(``<root>/<k[:2]>/<k>.json``), written atomically through
:mod:`repro.io` so a crash never publishes a torn entry.

The cache is a performance artifact, like the lint cache: a miss, a
torn entry, or a failed write must never fail the categorization that
consulted it — reads degrade to misses and writes are dropped (counted
in :attr:`ResultCache.put_errors`).  Served payloads are the exact JSON
the pipeline journaled when the trace was first categorized, so a cache
hit is byte-identical to a re-run.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any

from ..io import StorageError, atomic_write_text

__all__ = ["ResultCache", "config_namespace"]


def config_namespace(config: Any, repair: bool = False) -> str:
    """Digest of everything besides trace content that shapes a result.

    ``config`` is hashed by ``repr`` — :class:`MosaicConfig` is a frozen
    dataclass whose repr enumerates every threshold, so any knob change
    re-namespaces the cache instead of serving results computed under
    different thresholds.
    """
    digest = hashlib.sha256(
        f"{config!r}|repair={bool(repair)}".encode()
    ).hexdigest()
    return digest[:16]


class ResultCache:
    """Directory-backed content-addressed store of result payloads.

    Implements the duck-typed protocol
    :attr:`repro.core.pipeline.PipelineContext.result_cache` consumes:
    :meth:`trace_key`, :meth:`get`, :meth:`put`.  Hit/miss counters feed
    the service's ``/metrics`` endpoint.
    """

    def __init__(self, root: str | os.PathLike[str], *, namespace: str = "") -> None:
        self.root = os.fspath(root)
        self.namespace = namespace
        self.hits = 0
        self.misses = 0
        self.put_errors = 0

    @classmethod
    def for_config(
        cls,
        root: str | os.PathLike[str],
        config: Any,
        *,
        repair: bool = False,
    ) -> "ResultCache":
        """Cache namespaced to one (config, repair) combination."""
        return cls(root, namespace=config_namespace(config, repair))

    # -- keying --------------------------------------------------------
    def trace_key(self, trace_crc: int) -> str:
        """Cache key of one trace: content CRC chain + namespace."""
        digest = hashlib.sha256(
            f"{self.namespace}:{trace_crc & 0xFFFFFFFF:08x}".encode()
        ).hexdigest()
        return digest[:40]

    def entry_path(self, key: str) -> str:
        """Where ``key``'s payload lives (two-level fan-out)."""
        return os.path.join(self.root, key[:2], f"{key}.json")

    # -- protocol ------------------------------------------------------
    def get(self, key: str) -> dict[str, Any] | None:
        """Saved payload for ``key``, or ``None`` (counted as a miss).

        Unreadable or torn entries degrade to misses: the pipeline
        recomputes, and the next :meth:`put` heals the entry.
        """
        try:
            with open(self.entry_path(key), "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError, ValueError):
            self.misses += 1
            return None
        if not isinstance(payload, dict):
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, key: str, payload: dict[str, Any]) -> None:
        """Persist ``payload`` under ``key`` (atomic, best-effort).

        A cache that cannot be written is a performance loss, not a
        failure: storage errors are counted and swallowed so the
        categorization that produced ``payload`` still succeeds.
        """
        path = self.entry_path(key)
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            atomic_write_text(
                path,
                json.dumps(payload, separators=(",", ":"), sort_keys=False)
                + "\n",
            )
        except (StorageError, OSError):
            self.put_errors += 1

    # -- observability -------------------------------------------------
    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict[str, Any]:
        """Counter snapshot for ``/metrics``."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
            "put_errors": self.put_errors,
            "namespace": self.namespace,
        }
