"""Deterministic fault injection: the chaos harness.

The resilient execution layer claims to survive worker crashes, hangs,
and transient errors; this module makes those failures *injectable on a
seeded schedule* so the claim is testable — in unit tests, in CI, and
end-to-end from the CLI (``mosaic report --chaos SEED``).

A :class:`ChaosInjector` wraps the worker function shipped to the
process pool.  For each item it derives a stable key
(:func:`item_key` — ``trace.meta.job_id`` for traces), decides the
item's fate either from explicit key sets (tests) or from a seeded hash
of the key (fleet-scale chaos), and then:

* **crash** — ``os._exit(...)``: the worker dies exactly like an OOM
  kill or segfault, without unwinding or pickling anything back;
* **hang** — sleeps far past any sane deadline, exercising the
  timeout/recycle path;
* **flaky** — raises ``OSError`` on the item's first execution and
  succeeds on retry.  First-ness must survive the process boundary
  (the retry lands in a fresh worker), so it is tracked with marker
  files under ``state_dir``.

Everything is deterministic: the same seed, keys, and ``state_dir``
produce the same fault schedule, which is what lets a killed chaos run
be resumed and compared byte-for-byte against an uninterrupted one.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from typing import Any, Callable

__all__ = ["ChaosInjector", "item_key", "FAULT_CRASH", "FAULT_HANG", "FAULT_FLAKY"]

FAULT_CRASH = "crash"
FAULT_HANG = "hang"
FAULT_FLAKY = "flaky"
FAULT_NONE = "none"


def item_key(item: Any) -> str:
    """Stable identity of one work item across processes and runs.

    Traces key by job id; scalars key by value; everything else falls
    back to a repr digest (stable for value-like objects).
    """
    meta = getattr(item, "meta", None)
    job_id = getattr(meta, "job_id", None)
    if job_id is not None:
        return f"job:{job_id}"
    if isinstance(item, (int, str)):
        return f"val:{item}"
    return "repr:" + hashlib.sha256(repr(item).encode()).hexdigest()[:16]


def _roll(seed: int, key: str) -> float:
    """Deterministic uniform draw in [0, 1) for (seed, key)."""
    digest = hashlib.sha256(f"{seed}:{key}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(slots=True, frozen=True)
class ChaosInjector:
    """Picklable worker-function wrapper that injects scheduled faults.

    Explicit key sets take precedence; when an item's key is in none of
    them, the seeded rates decide (``crash_rate`` band first, then
    ``hang_rate``, then ``flaky_rate``).  All rates 0 and all sets empty
    → a transparent wrapper.
    """

    inner: Callable[[Any], Any]
    seed: int = 0
    crash_rate: float = 0.0
    hang_rate: float = 0.0
    flaky_rate: float = 0.0
    crash_keys: frozenset[str] = frozenset()
    hang_keys: frozenset[str] = frozenset()
    flaky_keys: frozenset[str] = frozenset()
    #: How long a hung item sleeps; keep well above the task deadline.
    hang_seconds: float = 3600.0
    #: Directory for flaky first-execution markers.  Empty → flaky
    #: faults never recover (every execution raises).
    state_dir: str = ""
    #: Worker exit status for crash faults.
    exit_code: int = 23

    def __post_init__(self) -> None:
        for name in ("crash_rate", "hang_rate", "flaky_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate!r}")
        if self.crash_rate + self.hang_rate + self.flaky_rate > 1.0:
            raise ValueError("fault rates must sum to <= 1")
        if self.hang_seconds <= 0:
            raise ValueError("hang_seconds must be positive")

    # ------------------------------------------------------------------
    def fault_for(self, key: str) -> str:
        """The scheduled fate of one item key (deterministic)."""
        if key in self.crash_keys:
            return FAULT_CRASH
        if key in self.hang_keys:
            return FAULT_HANG
        if key in self.flaky_keys:
            return FAULT_FLAKY
        u = _roll(self.seed, key)
        if u < self.crash_rate:
            return FAULT_CRASH
        if u < self.crash_rate + self.hang_rate:
            return FAULT_HANG
        if u < self.crash_rate + self.hang_rate + self.flaky_rate:
            return FAULT_FLAKY
        return FAULT_NONE

    def _flaky_marker(self, key: str) -> str:
        digest = hashlib.sha256(key.encode()).hexdigest()[:24]
        return os.path.join(self.state_dir, f"flaky-{digest}")

    def __call__(self, item: Any) -> Any:
        key = item_key(item)
        fault = self.fault_for(key)
        if fault == FAULT_CRASH:
            # Simulate an OOM kill/segfault: no unwinding, no goodbye.
            os._exit(self.exit_code)
        elif fault == FAULT_HANG:
            time.sleep(self.hang_seconds)
        elif fault == FAULT_FLAKY:
            if not self.state_dir:
                raise OSError(f"injected transient fault for {key}")
            marker = self._flaky_marker(key)
            if not os.path.exists(marker):
                with open(marker, "w", encoding="utf-8") as fh:
                    fh.write(key + "\n")
                raise OSError(f"injected transient fault for {key}")
        return self.inner(item)
