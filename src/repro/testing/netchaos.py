"""Deterministic network chaos: a scripted TCP fault proxy.

The resilient service client (:mod:`repro.service.client`) claims to
survive connection resets, mid-body stalls, truncated responses, and
slow-trickle servers.  Like the process-chaos harness
(:mod:`.faults`) and the storage-fault VFS (:mod:`.storage`), this
module makes those failures *injectable on a seeded schedule* so the
claim is testable, replayable, and CI-sized.

:class:`NetChaosProxy` is a threaded TCP proxy in front of a real
``mosaic serve`` instance.  Every accepted connection is numbered, and
its fate comes from a :class:`NetChaosSchedule` — either derived from a
seed (same seed, same per-connection fault sequence) or replayed from
an explicit script list (the failure artifact CI saves).  Faults:

``reset``
    Forward ``after_bytes`` of the scripted direction, then hard-close
    with ``SO_LINGER(1, 0)`` so the peer sees ``ECONNRESET`` — the
    mid-flight daemon crash.
``stall``
    Forward ``after_bytes``, hold the connection silent for
    ``stall_s``, then resume — the overloaded or GC-pausing server.
    Clients with a read timeout shorter than the stall abandon the
    connection; patient ones succeed slowly.
``truncate``
    Forward ``after_bytes`` of the response, then FIN cleanly — the
    short body a dying proxy delivers.
``trickle``
    Forward the response ``chunk_size`` bytes at a time with
    ``delay_s`` pauses — the congested path that tests patience
    without severing anything.
``refuse``
    Reset the client immediately on accept — the listener that died.
``none``
    Pass through untouched.

Progress guarantee: a seeded schedule forces every
``clean_every``-th connection fault-free, so a retrying client always
converges no matter the seed — chaos changes *how long* convergence
takes, never *whether*.  The proxy records every decision in
:attr:`NetChaosProxy.applied`; :meth:`NetChaosProxy.dump_script` emits
it as JSON, which is the artifact CI attaches to a failing run and the
input that replays it exactly.
"""

from __future__ import annotations

import hashlib
import json
import os
import socket
import struct
import threading
import time
from dataclasses import asdict, dataclass, field
from typing import Any

__all__ = [
    "FAULT_KINDS",
    "ConnectionScript",
    "NetChaosProxy",
    "NetChaosSchedule",
]

FAULT_NONE = "none"
FAULT_RESET = "reset"
FAULT_STALL = "stall"
FAULT_TRUNCATE = "truncate"
FAULT_TRICKLE = "trickle"
FAULT_REFUSE = "refuse"

FAULT_KINDS = (
    FAULT_NONE,
    FAULT_RESET,
    FAULT_STALL,
    FAULT_TRUNCATE,
    FAULT_TRICKLE,
    FAULT_REFUSE,
)

#: Pump read size; also the granularity at which fault offsets land.
_RECV_BYTES = 65536

#: Safety net so a scripted stall can never wedge a test run.
_SOCKET_TIMEOUT_S = 60.0


@dataclass(frozen=True, slots=True)
class ConnectionScript:
    """One connection's scripted fate.

    ``direction`` selects which pump the fault applies to:
    ``"response"`` (server -> client, the common case) or
    ``"request"`` (client -> server, e.g. resetting a submission
    mid-body).
    """

    kind: str = FAULT_NONE
    direction: str = "response"
    after_bytes: int = 0
    stall_s: float = 0.0
    chunk_size: int = 256
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r} (one of {FAULT_KINDS})"
            )
        if self.direction not in ("request", "response"):
            raise ValueError("direction must be 'request' or 'response'")
        if self.after_bytes < 0 or self.chunk_size < 1:
            raise ValueError("after_bytes must be >= 0, chunk_size >= 1")

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)


def _draw(seed: int, index: int, salt: str) -> float:
    """Deterministic uniform draw in [0, 1) for (seed, connection)."""
    digest = hashlib.sha256(f"netchaos:{seed}:{index}:{salt}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


class NetChaosSchedule:
    """Per-connection fault decisions: seeded, or replayed from a script.

    Seeded mode draws a fault kind and its parameters from
    ``sha256(seed, connection_index)`` — no RNG state, so concurrent
    connections cannot perturb each other's fates.  ``scripts`` mode
    replays an explicit list (connections beyond its end are clean),
    which is how a CI failure artifact reproduces byte-for-byte.
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        fault_rate: float = 0.6,
        clean_every: int = 3,
        stall_s: float = 0.4,
        scripts: list[ConnectionScript] | None = None,
    ) -> None:
        if not 0.0 <= fault_rate <= 1.0:
            raise ValueError("fault_rate must be within [0, 1]")
        if clean_every < 2:
            raise ValueError("clean_every must be >= 2 (progress guarantee)")
        self.seed = seed
        self.fault_rate = fault_rate
        self.clean_every = clean_every
        self.stall_s = stall_s
        self.scripts = scripts

    def script_for(self, index: int) -> ConnectionScript:
        if self.scripts is not None:
            if index < len(self.scripts):
                return self.scripts[index]
            return ConnectionScript()
        if index % self.clean_every == self.clean_every - 1:
            return ConnectionScript()  # the guaranteed-clean slot
        if _draw(self.seed, index, "gate") >= self.fault_rate:
            return ConnectionScript()
        kinds = (FAULT_RESET, FAULT_STALL, FAULT_TRUNCATE, FAULT_TRICKLE,
                 FAULT_REFUSE)
        kind = kinds[int(_draw(self.seed, index, "kind") * len(kinds))]
        after = int(_draw(self.seed, index, "after") * 600)
        direction = (
            "request"
            if kind == FAULT_RESET and _draw(self.seed, index, "dir") < 0.25
            else "response"
        )
        return ConnectionScript(
            kind=kind,
            direction=direction,
            after_bytes=after,
            stall_s=self.stall_s,
            chunk_size=64 + int(_draw(self.seed, index, "chunk") * 192),
            delay_s=0.002,
        )


def _hard_close(sock: socket.socket) -> None:
    """Close with SO_LINGER(1, 0): the peer sees RST, not FIN.

    The fd is closed via ``detach`` + ``os.close`` because a plain
    ``socket.close()`` is *deferred* by CPython while another thread
    (the opposite pump) is blocked in ``recv`` on the same object —
    the RST would never reach the wire until that recv timed out.
    The ``SHUT_RD`` first wakes exactly such a reader *without* putting
    a FIN on the wire: a recv syscall in flight holds the kernel file
    reference, so even ``os.close`` cannot emit the RST until the
    reader returns.
    """
    try:
        sock.setsockopt(
            socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
        )
    except OSError:
        pass
    try:
        sock.shutdown(socket.SHUT_RD)
    except OSError:
        pass
    try:
        os.close(sock.detach())
    except OSError:
        pass


def _soft_close(sock: socket.socket) -> None:
    """FIN both directions, then close.

    ``shutdown`` acts on the live fd immediately even when the opposite
    pump thread is blocked in ``recv`` on this socket (and unblocks it);
    relying on ``close`` alone would defer the FIN — see `_hard_close`.
    """
    try:
        sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    try:
        sock.close()
    except OSError:
        pass


class NetChaosProxy:
    """Scripted-fault TCP proxy in front of one upstream endpoint.

    Use as a context manager::

        with NetChaosProxy(host, port, schedule=NetChaosSchedule(7)) as p:
            client = MosaicClient(*p.endpoint)
            ...

    Threaded, stdlib-only, and bounded: every proxied socket carries a
    hard timeout so no scripted fault can outlive the test that
    injected it.
    """

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        *,
        schedule: NetChaosSchedule | None = None,
        host: str = "127.0.0.1",
    ) -> None:
        self.upstream = (upstream_host, upstream_port)
        self.schedule = schedule or NetChaosSchedule()
        self.host = host
        self.port = 0
        #: Decision log: one entry per accepted connection, in order.
        self.applied: list[dict[str, Any]] = []
        self._lock = threading.Lock()
        self._n_connections = 0
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._open_sockets: set[socket.socket] = set()
        self._stopping = False

    # -- lifecycle -----------------------------------------------------
    @property
    def endpoint(self) -> tuple[str, int]:
        return self.host, self.port

    def start(self) -> "NetChaosProxy":
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, 0))
        listener.listen(64)
        self.port = listener.getsockname()[1]
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="netchaos-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        self._stopping = True
        if self._listener is not None:
            _soft_close(self._listener)
        with self._lock:
            pending = list(self._open_sockets)
        for sock in pending:
            _hard_close(sock)
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)

    def __enter__(self) -> "NetChaosProxy":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    def dump_script(self) -> str:
        """The applied decisions as JSON — CI's failure artifact, and
        valid ``scripts`` input for an exact replay."""
        with self._lock:
            return json.dumps(
                {"seed": self.schedule.seed, "connections": self.applied},
                indent=2,
            )

    # -- proxying ------------------------------------------------------
    def _track(self, sock: socket.socket) -> None:
        with self._lock:
            self._open_sockets.add(sock)

    def _untrack(self, sock: socket.socket) -> None:
        with self._lock:
            self._open_sockets.discard(sock)

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stopping:
            try:
                client, _addr = self._listener.accept()
            except OSError:
                return  # listener closed by stop()
            with self._lock:
                index = self._n_connections
                self._n_connections += 1
            threading.Thread(
                target=self._handle,
                args=(client, index),
                name=f"netchaos-conn-{index}",
                daemon=True,
            ).start()

    def _handle(self, client: socket.socket, index: int) -> None:
        script = self.schedule.script_for(index)
        with self._lock:
            self.applied.append({"connection": index, **script.to_dict()})
        client.settimeout(_SOCKET_TIMEOUT_S)
        self._track(client)
        if script.kind == FAULT_REFUSE:
            self._untrack(client)
            _hard_close(client)
            return
        try:
            upstream = socket.create_connection(
                self.upstream, timeout=_SOCKET_TIMEOUT_S
            )
        except OSError:
            self._untrack(client)
            _hard_close(client)
            return
        self._track(upstream)
        request_fault = script if script.direction == "request" else None
        response_fault = script if script.direction == "response" else None
        request_pump = threading.Thread(
            target=self._pump,
            args=(client, upstream, request_fault, upstream),
            name=f"netchaos-req-{index}",
            daemon=True,
        )
        request_pump.start()
        self._pump(upstream, client, response_fault, client)
        request_pump.join(timeout=_SOCKET_TIMEOUT_S)
        for sock in (client, upstream):
            self._untrack(sock)
            _soft_close(sock)

    def _pump(
        self,
        src: socket.socket,
        dst: socket.socket,
        fault: ConnectionScript | None,
        victim: socket.socket,
    ) -> None:
        """Forward src -> dst, applying ``fault`` at its byte offset.

        ``victim`` is the socket the fault lands on (the client for
        response faults, the upstream for request faults) — resets are
        delivered there so the *peer under test* observes them.
        """
        forwarded = 0
        fault_pending = fault is not None and fault.kind != FAULT_NONE
        trickling = False
        try:
            while True:
                try:
                    data = src.recv(_RECV_BYTES)
                except OSError:
                    return
                if not data:
                    try:
                        dst.shutdown(socket.SHUT_WR)
                    except OSError:
                        pass
                    return
                if fault_pending and forwarded + len(data) > fault.after_bytes:
                    split = max(0, fault.after_bytes - forwarded)
                    head, tail = data[:split], data[split:]
                    if head:
                        dst.sendall(head)
                        forwarded += len(head)
                    fault_pending = False
                    if fault.kind == FAULT_RESET:
                        _hard_close(victim)
                        _soft_close(dst if dst is not victim else src)
                        return
                    if fault.kind == FAULT_TRUNCATE:
                        _soft_close(victim)
                        return
                    if fault.kind == FAULT_STALL:
                        time.sleep(fault.stall_s)
                        dst.sendall(tail)
                        forwarded += len(tail)
                        continue
                    if fault.kind == FAULT_TRICKLE:
                        trickling = True
                        self._trickle(dst, tail, fault)
                        forwarded += len(tail)
                        continue
                if trickling:
                    self._trickle(dst, data, fault)
                else:
                    dst.sendall(data)
                forwarded += len(data)
        except OSError:
            return

    @staticmethod
    def _trickle(
        dst: socket.socket, data: bytes, fault: ConnectionScript
    ) -> None:
        for start in range(0, len(data), fault.chunk_size):
            dst.sendall(data[start : start + fault.chunk_size])
            time.sleep(fault.delay_s)
