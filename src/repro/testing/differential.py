"""Differential-testing oracle for the kernel backends.

The vectorized NumPy kernels in :mod:`repro.kernels.vectorized` only get
to be the default because they are *provably interchangeable* with the
pure-Python references on adversarial input: seeded generators produce
operation streams and activity signals exercising every degenerate shape
the corpus throws at the pipeline — zero-duration operations, negative
gaps (overlapping input), fully-contained operations, heavy-tailed
volumes, constant signals — and every kernel pair is asserted equivalent
to tolerance on thousands of cases.

The oracle is a *triplet*, not a pair: every check compares the
pure-Python reference against a candidate backend name, and the sweep
runs once per candidate (``"vectorized"`` and ``"batched"`` — the
segmented cross-trace twins of :mod:`repro.kernels.batched`).  The
``segmented_*`` entries additionally exercise the batch shape itself:
several adversarial traces are concatenated under one offsets array, the
segmented kernel runs in a single dispatch, and each trace's output
slice is held equal to the per-trace reference — proving segment walls
are hard and no merge, group, or bin ever leaks across traces.

A divergence surfaced here is, by construction, either a vectorization
bug or a latent reference bug; both kinds found while building the
backends were fixed and carry named regression tests (the one-sided
neighbor-merge gap rule, the ACF decay-shoulder latch).

The module is deliberately dependency-light so both the test suite
(``tests/kernels/``) and ad-hoc debugging sessions can drive it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cluster.meanshift import mean_shift
from ..darshan.trace import OperationArray
from ..kernels import get_backend
from ..merge.neighbor import NeighborMergeConfig, merge_neighbors
from ..segment.op_segments import segment_operations
from ..signalproc.activity import build_activity_signal
from ..signalproc.autocorr import detect_periodicity_autocorr
from ..signalproc.dft import detect_periodicity_dft

__all__ = [
    "Divergence",
    "DifferentialReport",
    "KERNEL_PAIRS",
    "CANDIDATE_BACKENDS",
    "adversarial_ops",
    "adversarial_signal",
    "adversarial_batch",
    "run_differential",
    "run_all",
]

#: Relative tolerance for float comparisons between backends.  Volume
#: sums and weighted means may associate differently across backends;
#: anything beyond accumulated round-off is a real divergence.
RTOL = 1e-9
ATOL = 1e-12

OP_PROFILES = (
    "disjoint",
    "zero_duration",
    "overlapping",
    "contained",
    "heavy_tailed",
    "boundary_gaps",
)

SIGNAL_PROFILES = (
    "constant",
    "zeros",
    "pulse_train",
    "noise",
    "decay",
    "mixture",
)

#: Backends each sweep compares against the pure-Python reference.
CANDIDATE_BACKENDS = ("vectorized", "batched")


@dataclass(slots=True, frozen=True)
class Divergence:
    """One reference/candidate-backend disagreement."""

    kernel: str
    case: int
    seed: int
    profile: str
    message: str
    backend: str = "vectorized"


@dataclass(slots=True)
class DifferentialReport:
    """Outcome of a differential sweep over one kernel pair."""

    kernel: str
    backend: str = "vectorized"
    n_cases: int = 0
    divergences: list[Divergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def summary(self) -> str:
        state = "ok" if self.ok else f"{len(self.divergences)} divergences"
        return f"{self.kernel}[{self.backend}]: {self.n_cases} cases, {state}"


# ---------------------------------------------------------------------------
# adversarial generators


def adversarial_ops(
    rng: np.random.Generator, profile: str, max_n: int = 60
) -> OperationArray:
    """A seeded adversarial operation stream of the given profile."""
    n = int(rng.integers(0, max_n + 1))
    if n == 0:
        return OperationArray.empty()
    if profile == "disjoint":
        gaps = rng.exponential(20.0, n)
        durs = rng.exponential(10.0, n)
        starts = np.cumsum(gaps + np.concatenate(([0.0], durs[:-1])))
        ends = starts + durs
        vols = rng.exponential(1e8, n)
    elif profile == "zero_duration":
        starts = np.sort(rng.uniform(0.0, 1000.0, n))
        durs = np.where(rng.random(n) < 0.5, 0.0, rng.exponential(5.0, n))
        ends = starts + durs
        vols = rng.exponential(1e7, n)
    elif profile == "overlapping":
        starts = np.sort(rng.uniform(0.0, 500.0, n))
        ends = starts + rng.exponential(40.0, n)  # long tails overlap
        vols = rng.exponential(1e8, n)
    elif profile == "contained":
        starts = np.sort(rng.uniform(0.0, 500.0, n))
        ends = starts + rng.exponential(10.0, n)
        if n >= 2:
            # make some ops strict sub-windows of their predecessor
            inner = rng.random(n) < 0.4
            inner[0] = False
            prev = np.roll(starts, 1)
            prev_end = np.roll(ends, 1)
            frac0 = rng.uniform(0.0, 0.5, n)
            frac1 = rng.uniform(0.5, 1.0, n)
            span = np.maximum(prev_end - prev, 0.0)
            starts = np.where(inner, prev + frac0 * span, starts)
            ends = np.where(inner, prev + frac1 * span, ends)
            ends = np.maximum(ends, starts)
        vols = rng.exponential(1e8, n)
    elif profile == "heavy_tailed":
        starts = np.sort(rng.uniform(0.0, 10_000.0, n))
        ends = starts + rng.pareto(1.1, n) * 2.0
        vols = rng.pareto(0.9, n) * 1e6 + 1.0
    elif profile == "boundary_gaps":
        # Gaps engineered to sit exactly on / a hair around the merge
        # thresholds (1% of a 100 s op = 1 s; 0.1% of runtime scales).
        durs = np.full(n, 100.0)
        wiggle = rng.choice([-1e-9, 0.0, 1e-9], n)
        gaps = np.where(rng.random(n) < 0.5, 1.0 + wiggle, 5.0 + wiggle)
        starts = np.empty(n)
        starts[0] = 0.0
        for i in range(1, n):
            starts[i] = starts[i - 1] + durs[i - 1] + gaps[i]
        ends = starts + durs
        vols = rng.exponential(1e8, n)
    else:
        raise ValueError(f"unknown op profile: {profile!r}")
    return OperationArray(starts, ends, vols)


def adversarial_signal(
    rng: np.random.Generator, profile: str, max_n: int = 512
) -> np.ndarray:
    """A seeded adversarial activity signal of the given profile."""
    n = int(rng.integers(8, max_n + 1))
    if profile == "constant":
        return np.full(n, float(rng.exponential(10.0)) + 1.0)
    if profile == "zeros":
        return np.zeros(n)
    if profile == "pulse_train":
        period = int(rng.integers(3, max(4, n // 4)))
        duty = int(rng.integers(1, max(2, period // 2)))
        x = np.zeros(n)
        for k in range(0, n, period):
            x[k : k + duty] = rng.exponential(100.0)
        return x
    if profile == "noise":
        return np.abs(rng.normal(0.0, 1.0, n))
    if profile == "decay":
        # Positively-autocorrelated monotone decay: the shape whose ACF
        # shoulder the plateau test used to latch onto.
        return np.exp(-np.arange(n) / max(n / 4.0, 1.0)) * (
            1.0 + 0.01 * rng.random(n)
        )
    if profile == "mixture":
        p1 = int(rng.integers(3, max(4, n // 6)))
        p2 = int(rng.integers(3, max(4, n // 6)))
        t = np.arange(n)
        return (
            np.abs(np.sin(2 * np.pi * t / p1))
            + np.abs(np.sin(2 * np.pi * t / p2))
            + 0.1 * rng.random(n)
        )
    raise ValueError(f"unknown signal profile: {profile!r}")


# ---------------------------------------------------------------------------
# per-pair comparators


def _close(a: np.ndarray, b: np.ndarray) -> bool:
    return bool(
        np.allclose(np.asarray(a), np.asarray(b), rtol=RTOL, atol=ATOL)
    )


def _compare_ops(
    ref: OperationArray, vec: OperationArray
) -> str | None:
    if len(ref) != len(vec):
        return f"op count {len(ref)} != {len(vec)}"
    if not np.array_equal(ref.starts, vec.starts):
        return "starts differ"
    if not np.array_equal(ref.ends, vec.ends):
        return "ends differ"
    if not _close(ref.volumes, vec.volumes):
        return "volumes differ beyond tolerance"
    return None


def _check_neighbor(
    rng: np.random.Generator, profile: str, backend: str
) -> str | None:
    arr = adversarial_ops(rng, profile)
    run_time = float(rng.choice([0.0, 100.0, 10_000.0, 1e6]))
    cfg = NeighborMergeConfig(
        runtime_fraction=float(rng.choice([0.0, 0.001, 0.05])),
        op_fraction=float(rng.choice([0.0, 0.01, 0.2])),
    )
    ref = merge_neighbors(arr, run_time, cfg, backend="reference")
    vec = merge_neighbors(arr, run_time, cfg, backend=backend)
    return _compare_ops(ref.ops, vec.ops)


def _check_concurrent(
    rng: np.random.Generator, profile: str, backend: str
) -> str | None:
    arr = adversarial_ops(rng, profile)
    ref_k, vec_k = get_backend("reference"), get_backend(backend)
    g_ref = ref_k.overlap_groups(arr.starts, arr.ends)
    g_vec = vec_k.overlap_groups(arr.starts, arr.ends)
    if not np.array_equal(g_ref, g_vec):
        return "group labels differ"
    if len(arr) == 0:
        return None
    c_ref = ref_k.coalesce_groups(arr.starts, arr.ends, arr.volumes, g_ref)
    c_vec = vec_k.coalesce_groups(arr.starts, arr.ends, arr.volumes, g_vec)
    for name, a, b in zip(("starts", "ends"), c_ref[:2], c_vec[:2]):
        if not np.array_equal(a, b):
            return f"coalesced {name} differ"
    if not _close(c_ref[2], c_vec[2]):
        return "coalesced volumes differ beyond tolerance"
    return None


def _check_segment(
    rng: np.random.Generator, profile: str, backend: str
) -> str | None:
    arr = adversarial_ops(rng, profile)
    run_time = float(rng.choice([0.0, 500.0, 1e5]))
    ref = segment_operations(arr, run_time, backend="reference")
    vec = segment_operations(arr, run_time, backend=backend)
    for name in ("starts", "durations", "volumes", "busy"):
        if not np.array_equal(getattr(ref, name), getattr(vec, name)):
            return f"segment {name} differ"
    return None


def _check_meanshift(
    rng: np.random.Generator, profile: str, backend: str
) -> str | None:
    n = int(rng.integers(0, 40))
    if profile in ("constant", "zeros"):
        X = np.full((n, 2), 3.0)
    else:
        X = rng.normal(0.0, 1.0, (n, 2)) * rng.choice([1.0, 10.0])
    kernel = "flat" if rng.random() < 0.7 else "gaussian"
    bandwidth = float(rng.choice([0.3, 1.0, 3.0]))
    if n:
        seeds = X.copy()
        step_ref = get_backend("reference").shift_step(seeds, X, bandwidth, kernel)
        step_vec = get_backend(backend).shift_step(seeds, X, bandwidth, kernel)
        if not _close(step_ref, step_vec):
            return "shift step differs beyond tolerance"
    ref = mean_shift(X, bandwidth, kernel=kernel, backend="reference")
    vec = mean_shift(X, bandwidth, kernel=kernel, backend=backend)
    if not np.array_equal(ref.labels, vec.labels):
        return "cluster labels differ"
    if not _close(ref.modes, vec.modes):
        return "modes differ beyond tolerance"
    return None


def _check_acf(
    rng: np.random.Generator, profile: str, backend: str
) -> str | None:
    from ..signalproc.activity import ActivitySignal

    x = adversarial_signal(rng, profile)
    sig = ActivitySignal(values=x, bin_width=float(rng.choice([0.5, 1.0, 7.3])))
    ref = detect_periodicity_autocorr(sig, backend="reference")
    vec = detect_periodicity_autocorr(sig, backend=backend)
    if ref.periodic != vec.periodic or ref.lag != vec.lag:
        return f"detection differs: ref lag {ref.lag}, vec lag {vec.lag}"
    if ref.periodic and not (
        _close(np.array([ref.period]), np.array([vec.period]))
        and _close(np.array([ref.strength]), np.array([vec.strength]))
    ):
        return "period/strength differ beyond tolerance"
    return None


def _check_dft(
    rng: np.random.Generator, profile: str, backend: str
) -> str | None:
    from ..signalproc.activity import ActivitySignal

    x = adversarial_signal(rng, profile)
    sig = ActivitySignal(values=x, bin_width=float(rng.choice([0.5, 1.0, 7.3])))
    ref = detect_periodicity_dft(sig, backend="reference")
    vec = detect_periodicity_dft(sig, backend=backend)
    if ref.periodic != vec.periodic:
        return f"detection differs: ref {ref.periodic}, vec {vec.periodic}"
    if ref.periodic and not (
        _close(np.array([ref.period]), np.array([vec.period]))
        and _close(np.array([ref.confidence]), np.array([vec.confidence]))
    ):
        return "period/confidence differ beyond tolerance"
    return None


def _check_bin_activity(
    rng: np.random.Generator, profile: str, backend: str
) -> str | None:
    arr = adversarial_ops(rng, profile)
    run_time = float(rng.choice([100.0, 1000.0, 123_456.7]))
    n_bins = int(rng.choice([1, 7, 64, 511]))
    ref = build_activity_signal(arr, run_time, n_bins=n_bins, backend="reference")
    vec = build_activity_signal(arr, run_time, n_bins=n_bins, backend=backend)
    # The difference-array vectorization carries round-off relative to
    # the *running* volume sum, not the individual bin, so the absolute
    # tolerance scales with the largest bin (triaged as inherent to the
    # cumsum trick — a logic bug shows up at bin scale, orders louder).
    scale = float(ref.values.max()) if len(ref.values) else 0.0
    if not np.allclose(
        ref.values, vec.values, rtol=RTOL, atol=max(RTOL * scale, ATOL)
    ):
        worst = float(np.max(np.abs(ref.values - vec.values)))
        return f"binned values differ beyond tolerance (max abs {worst:g})"
    # Volume conservation for fully in-window streams is a shared
    # invariant worth asserting on both backends at once.
    clipped = np.clip(arr.starts, 0.0, run_time)
    if len(arr) and np.array_equal(clipped, arr.starts) and np.all(arr.ends <= run_time):
        expect = float(arr.volumes[arr.volumes > 0].sum())
        if not np.isclose(vec.total, expect, rtol=1e-6):
            return f"vectorized binning lost volume: {vec.total} != {expect}"
    return None


# ---------------------------------------------------------------------------
# segmented (cross-trace) comparators: one batched dispatch vs. a
# per-trace reference loop.  The batch shape itself is the input under
# test here, so these ignore the candidate-backend name.


def adversarial_batch(
    rng: np.random.Generator, profile: str, max_traces: int = 6
) -> tuple[list[OperationArray], np.ndarray]:
    """Several adversarial traces concatenated under one offsets array.

    Mixes the requested profile with others (and empty traces) so
    neighbouring segments have genuinely different shapes — the layout
    :func:`repro.columnar.batch.categorize_slice` feeds the segmented
    kernels.
    """
    k = int(rng.integers(1, max_traces + 1))
    arrays: list[OperationArray] = []
    for i in range(k):
        p = profile if i == 0 or rng.random() < 0.5 else str(
            rng.choice(OP_PROFILES)
        )
        arrays.append(adversarial_ops(rng, p, max_n=40))
    offsets = np.zeros(k + 1, dtype=np.int64)
    np.cumsum([len(a) for a in arrays], out=offsets[1:])
    return arrays, offsets


def _concat(arrays: list[OperationArray]) -> tuple[np.ndarray, ...]:
    empty = np.empty(0, dtype=np.float64)
    return (
        np.concatenate([a.starts for a in arrays]) if arrays else empty,
        np.concatenate([a.ends for a in arrays]) if arrays else empty,
        np.concatenate([a.volumes for a in arrays]) if arrays else empty,
    )


def _slice_ops(
    starts: np.ndarray,
    ends: np.ndarray,
    volumes: np.ndarray,
    offsets: np.ndarray,
    k: int,
) -> OperationArray:
    lo, hi = int(offsets[k]), int(offsets[k + 1])
    return OperationArray(
        starts[lo:hi].copy(), ends[lo:hi].copy(), volumes[lo:hi].copy()
    )


def _check_neighbor_segmented(
    rng: np.random.Generator, profile: str, backend: str
) -> str | None:
    from ..kernels.batched import neighbor_pass_segmented

    arrays, offsets = adversarial_batch(rng, profile)
    run_times = np.array(
        [float(rng.choice([0.0, 100.0, 10_000.0, 1e6])) for _ in arrays]
    )
    cfg = NeighborMergeConfig(
        runtime_fraction=float(rng.choice([0.0, 0.001, 0.05])),
        op_fraction=float(rng.choice([0.0, 0.01, 0.2])),
    )
    s, e, v = _concat(arrays)
    off = offsets
    abs_gaps = cfg.runtime_fraction * np.maximum(run_times, 0.0)
    for _ in range(cfg.max_passes):
        s, e, v, off, changed = neighbor_pass_segmented(
            s, e, v, off, abs_gaps, cfg.op_fraction
        )
        if not changed:
            break
    for k, arr in enumerate(arrays):
        ref = merge_neighbors(arr, run_times[k], cfg, backend="reference")
        message = _compare_ops(ref.ops, _slice_ops(s, e, v, off, k))
        if message is not None:
            return f"trace {k}/{len(arrays)}: {message}"
    return None


def _check_concurrent_segmented(
    rng: np.random.Generator, profile: str, backend: str
) -> str | None:
    from ..kernels.batched import (
        coalesce_groups,
        group_offsets,
        overlap_groups_segmented,
    )

    arrays, offsets = adversarial_batch(rng, profile)
    s, e, v = _concat(arrays)
    groups = overlap_groups_segmented(s, e, offsets)
    ref_k = get_backend("reference")
    for k, arr in enumerate(arrays):
        lo, hi = int(offsets[k]), int(offsets[k + 1])
        g_ref = ref_k.overlap_groups(arr.starts, arr.ends)
        g_seg = groups[lo:hi]
        if len(g_seg) and not np.array_equal(g_seg - g_seg[0], g_ref):
            return f"trace {k}/{len(arrays)}: group labels differ"
    if len(s) == 0:
        return None
    cs, ce, cv = coalesce_groups(s, e, v, groups)
    goff = group_offsets(groups, offsets)
    for k, arr in enumerate(arrays):
        if len(arr) == 0:
            if goff[k + 1] != goff[k]:
                return f"trace {k}: empty trace produced groups"
            continue
        g_ref = ref_k.overlap_groups(arr.starts, arr.ends)
        r = ref_k.coalesce_groups(arr.starts, arr.ends, arr.volumes, g_ref)
        message = _compare_ops(
            OperationArray(*(np.asarray(x, dtype=np.float64) for x in r)),
            _slice_ops(cs, ce, cv, goff, k),
        )
        if message is not None:
            return f"trace {k}/{len(arrays)}: coalesced {message}"
    return None


def _check_segment_segmented(
    rng: np.random.Generator, profile: str, backend: str
) -> str | None:
    from ..kernels.batched import segment_segmented

    arrays, offsets = adversarial_batch(rng, profile)
    run_times = np.array(
        [float(rng.choice([0.0, 500.0, 1e5])) for _ in arrays]
    )
    s, e, v = _concat(arrays)
    out = segment_segmented(s, e, v, offsets, run_times)
    names = ("starts", "durations", "volumes", "busy")
    for k, arr in enumerate(arrays):
        lo, hi = int(offsets[k]), int(offsets[k + 1])
        ref = segment_operations(arr, run_times[k], backend="reference")
        for name, col in zip(names, out):
            if not np.array_equal(getattr(ref, name), col[lo:hi]):
                return f"trace {k}/{len(arrays)}: segment {name} differ"
    return None


def _check_binning_segmented(
    rng: np.random.Generator, profile: str, backend: str
) -> str | None:
    from ..kernels.batched import bin_events_segmented
    from ..signalproc.activity import bin_events

    arrays, offsets = adversarial_batch(rng, profile)
    run_times = np.array(
        [float(rng.choice([1.0, 100.0, 12_345.6])) for _ in arrays]
    )
    bin_width = float(rng.choice([0.5, 1.0, 7.3]))
    # Event streams from the op profiles: starts as times, small integer
    # request counts (some times land past run_time — both twins clip).
    times, _, _ = _concat(arrays)
    counts = rng.integers(1, 6, len(times)).astype(np.float64)
    values, bin_offsets = bin_events_segmented(
        times, counts, offsets, run_times, bin_width
    )
    for k in range(len(arrays)):
        lo, hi = int(offsets[k]), int(offsets[k + 1])
        ref = bin_events(
            times[lo:hi], counts[lo:hi], run_times[k], bin_width
        )
        got = values[int(bin_offsets[k]) : int(bin_offsets[k + 1])]
        if len(ref) != len(got):
            return f"trace {k}: bin count {len(got)} != {len(ref)}"
        if not np.array_equal(ref, got):
            return f"trace {k}/{len(arrays)}: binned counts differ"
    return None


KERNEL_PAIRS = {
    "neighbor_merge": (_check_neighbor, OP_PROFILES),
    "concurrent_fusion": (_check_concurrent, OP_PROFILES),
    "segmentation": (_check_segment, OP_PROFILES),
    "meanshift_step": (_check_meanshift, SIGNAL_PROFILES),
    "acf_peak_scan": (_check_acf, SIGNAL_PROFILES),
    "dft_comb_scan": (_check_dft, SIGNAL_PROFILES),
    "activity_binning": (_check_bin_activity, OP_PROFILES),
    "segmented_neighbor_merge": (_check_neighbor_segmented, OP_PROFILES),
    "segmented_concurrent_fusion": (_check_concurrent_segmented, OP_PROFILES),
    "segmented_segmentation": (_check_segment_segmented, OP_PROFILES),
    "segmented_event_binning": (_check_binning_segmented, OP_PROFILES),
}


def run_differential(
    kernel: str,
    n_cases: int = 1000,
    seed: int = 0,
    backend: str = "vectorized",
) -> DifferentialReport:
    """Sweep one kernel pair over ``n_cases`` seeded adversarial cases.

    ``backend`` names the candidate compared against the reference
    (``"vectorized"`` or ``"batched"``); the ``segmented_*`` kernels
    always exercise the batched implementations against a per-trace
    reference loop, whatever the name.
    """
    try:
        check, profiles = KERNEL_PAIRS[kernel]
    except KeyError:
        raise ValueError(
            f"unknown kernel pair {kernel!r}; available: "
            + ", ".join(sorted(KERNEL_PAIRS))
        ) from None
    report = DifferentialReport(kernel=kernel, backend=backend)
    for case in range(n_cases):
        profile = profiles[case % len(profiles)]
        rng = np.random.default_rng(seed + case)
        message = check(rng, profile, backend)
        report.n_cases += 1
        if message is not None:
            report.divergences.append(
                Divergence(
                    kernel=kernel,
                    case=case,
                    seed=seed + case,
                    profile=profile,
                    message=message,
                    backend=backend,
                )
            )
    return report


def run_all(
    n_cases: int = 1000,
    seed: int = 0,
    backends: tuple[str, ...] = CANDIDATE_BACKENDS,
) -> list[DifferentialReport]:
    """Sweep every kernel pair against every candidate backend."""
    return [
        run_differential(k, n_cases, seed, backend=b)
        for b in backends
        for k in KERNEL_PAIRS
    ]
