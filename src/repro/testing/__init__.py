"""Test-support utilities shipped with the package: deterministic fault
injection for chaos-testing the resilient execution layer, and the
differential-testing oracle that holds the kernel backends equivalent."""

from .differential import (
    DifferentialReport,
    Divergence,
    run_all,
    run_differential,
)
from .faults import ChaosInjector, item_key

__all__ = [
    "ChaosInjector",
    "item_key",
    "DifferentialReport",
    "Divergence",
    "run_all",
    "run_differential",
]
