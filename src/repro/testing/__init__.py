"""Test-support utilities shipped with the package: deterministic fault
injection for chaos-testing the resilient execution layer, storage-fault
injection for the durability layer, a scripted TCP fault proxy for the
service's client/server resilience, and the differential-testing oracle
that holds the kernel backends equivalent."""

from .differential import (
    DifferentialReport,
    Divergence,
    run_all,
    run_differential,
)
from .faults import ChaosInjector, item_key
from .netchaos import (
    ConnectionScript,
    NetChaosProxy,
    NetChaosSchedule,
)
from .storage import (
    FAULT_POWER_CUT,
    FAULT_SHORT_WRITE,
    PowerCut,
    StorageChaos,
    op_census,
)

__all__ = [
    "ChaosInjector",
    "ConnectionScript",
    "NetChaosProxy",
    "NetChaosSchedule",
    "item_key",
    "DifferentialReport",
    "Divergence",
    "FAULT_POWER_CUT",
    "FAULT_SHORT_WRITE",
    "PowerCut",
    "StorageChaos",
    "op_census",
    "run_all",
    "run_differential",
]
