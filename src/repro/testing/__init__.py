"""Test-support utilities shipped with the package: deterministic fault
injection for chaos-testing the resilient execution layer."""

from .faults import ChaosInjector, item_key

__all__ = ["ChaosInjector", "item_key"]
