"""Deterministic storage-fault injection: chaos for the durability layer.

Where :class:`~repro.testing.faults.ChaosInjector` kills *processes*,
:class:`StorageChaos` breaks *storage*: it is a
:class:`~repro.io.vfs.FaultableIO` whose every primitive can be scripted
to fail with a chosen errno, write short, or simulate a power cut — on
an exact call index or at a seeded rate — so the atomicity and
durability claims of :mod:`repro.io` are testable, not aspirational.

Determinism is the whole design: the same script/seed against the same
code path produces the same fault at the same byte, which is what lets
the acceptance suite enumerate *every* write/fsync/rename a persistence
site performs (:func:`op_census`) and then prove the invariant holds
with a fault injected at each one.

Power-cut model
---------------
``StorageChaos`` keeps a *durable state* per touched path under
``root``: what would survive a power loss right now.

* writes and flushes change the real file but not its durable state
  (they may still sit in the page cache);
* ``fsync`` of a file makes its current content durable;
* ``replace`` takes real effect immediately but stays volatile until
  the parent directory is fsynced (``fsync_dir``) — the classic torn
  rename;
* :meth:`power_cut` restores every touched path to its durable state,
  exactly as if the machine had lost power and rebooted.

This is a file-granular simplification of real crash semantics
(journaling filesystems differ in the details), but it is strictly
*harsher* than ext4's ordered mode for the sequences we use, so code
that survives it survives the real thing.
"""

from __future__ import annotations

import errno as _errno
import hashlib
import os
from collections import Counter
from typing import IO, Any, Callable, Mapping

from ..io.vfs import FaultableIO

__all__ = [
    "FAULT_SHORT_WRITE",
    "FAULT_POWER_CUT",
    "PowerCut",
    "StorageChaos",
    "op_census",
]

#: Script value: write half the payload, then fail with EIO — the flaky
#: parallel-filesystem partial write (transient, so retry paths run).
FAULT_SHORT_WRITE = "short-write"
#: Script value: simulate instantaneous power loss at this call.
FAULT_POWER_CUT = "power-cut"

#: Ops a script/rate may target (one counter per op).
_OPS = (
    "open",
    "open_exclusive",
    "write",
    "flush",
    "fsync",
    "replace",
    "unlink",
    "fsync_dir",
)

#: Modes whose open() mutates the file (tracked for power-cut restore).
_WRITE_MODES = ("w", "a", "x", "+")


class PowerCut(BaseException):
    """The simulated instant of power loss.

    Derives from ``BaseException`` so no ``except OSError``/``except
    Exception`` recovery path can swallow it — a real power cut gives
    the process no chance to recover either.  Tests catch it, call
    :meth:`StorageChaos.power_cut` to roll the filesystem back to its
    durable state, and then assert the crash-consistency invariants.
    """


def _roll(seed: int, key: str) -> float:
    """Deterministic uniform draw in [0, 1) for (seed, key)."""
    digest = hashlib.sha256(f"{seed}:{key}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


class StorageChaos(FaultableIO):
    """Scripted-fault VFS with a power-cut-restorable durable model.

    Parameters
    ----------
    root:
        Only paths under this directory are tracked (and restorable);
        everything else passes through untouched.
    script:
        ``{(op, call_index): fault}`` — fault is an errno ``int``,
        :data:`FAULT_SHORT_WRITE`, or :data:`FAULT_POWER_CUT`.  Call
        indexes are per-op, 0-based, and count every call including
        retries (so a transient EIO at index ``i`` is naturally one-shot:
        the retry arrives at index ``i+1``).
    seed / *_rate:
        Seeded background fault rates for fleet-style chaos; explicit
        script entries take precedence at their index.
    """

    def __init__(
        self,
        root: str | os.PathLike[str],
        *,
        script: Mapping[tuple[str, int], int | str] | None = None,
        seed: int = 0,
        enospc_rate: float = 0.0,
        eio_rate: float = 0.0,
        eintr_rate: float = 0.0,
    ) -> None:
        self.root = os.path.abspath(os.fspath(root))
        self.script = dict(script or {})
        for (op, index), fault in self.script.items():
            if op not in _OPS:
                raise ValueError(f"unknown op {op!r} (expected one of {_OPS})")
            if index < 0:
                raise ValueError(f"negative call index for {op!r}")
            if not isinstance(fault, int) and fault not in (
                FAULT_SHORT_WRITE,
                FAULT_POWER_CUT,
            ):
                raise ValueError(f"unknown fault {fault!r} for ({op}, {index})")
        for name, rate in (
            ("enospc_rate", enospc_rate),
            ("eio_rate", eio_rate),
            ("eintr_rate", eintr_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate!r}")
        self.seed = seed
        self.enospc_rate = enospc_rate
        self.eio_rate = eio_rate
        self.eintr_rate = eintr_rate
        #: per-op call counters (index of the *next* call).
        self.counts: Counter[str] = Counter()
        #: chronological (op, path) census of every primitive call.
        self.ops_log: list[tuple[str, str]] = []
        #: faults actually injected: (op, index, fault).
        self.injected: list[tuple[str, int, int | str]] = []
        #: path -> durable content (bytes) or None (durably absent).
        self._durable: dict[str, bytes | None] = {}

    # -- durable model --------------------------------------------------
    def _tracked(self, path: str) -> str | None:
        p = os.path.abspath(path)
        if p == self.root or p.startswith(self.root + os.sep):
            return p
        return None

    def _read_raw(self, path: str) -> bytes | None:
        try:
            with open(path, "rb") as fh:  # raw os layer, not the seam
                return fh.read()
        except OSError:
            return None

    def _track(self, path: str) -> None:
        """Record the pre-mutation durable baseline of ``path``."""
        p = self._tracked(path)
        if p is not None and p not in self._durable:
            self._durable[p] = self._read_raw(p)

    def _mark_durable(self, path: str) -> None:
        p = self._tracked(path)
        if p is not None:
            self._durable[p] = self._read_raw(p)

    def power_cut(self) -> None:
        """Roll every tracked path back to its durable state — the disk
        as a reboot would find it."""
        for path, state in self._durable.items():
            if state is None:
                if os.path.exists(path):
                    os.unlink(path)
            else:
                with open(path, "wb") as fh:  # raw restore, not the seam
                    fh.write(state)

    def durable_content(self, path: str | os.PathLike[str]) -> bytes | None:
        """What ``path`` would hold after a power cut (None = absent).
        Untracked paths report their current on-disk content."""
        p = os.path.abspath(os.fspath(path))
        if p in self._durable:
            return self._durable[p]
        return self._read_raw(p)

    # -- fault engine ---------------------------------------------------
    def _next_index(self, op: str, path: str) -> int:
        index = self.counts[op]
        self.counts[op] = index + 1
        self.ops_log.append((op, path))
        return index

    def _fault_for(self, op: str, index: int) -> int | str | None:
        fault = self.script.get((op, index))
        if fault is not None:
            return fault
        if self.enospc_rate or self.eio_rate or self.eintr_rate:
            u = _roll(self.seed, f"{op}:{index}")
            if u < self.enospc_rate:
                return _errno.ENOSPC
            if u < self.enospc_rate + self.eio_rate:
                return _errno.EIO
            if u < self.enospc_rate + self.eio_rate + self.eintr_rate:
                return _errno.EINTR
        return None

    def _check(self, op: str, path: str) -> int | str | None:
        """Count the call; raise its scripted fault (short-write faults
        are returned for the caller to act out)."""
        index = self._next_index(op, path)
        fault = self._fault_for(op, index)
        if fault is None:
            return None
        self.injected.append((op, index, fault))
        if fault == FAULT_POWER_CUT:
            raise PowerCut(f"power cut at {op}#{index} on {path!r}")
        if fault == FAULT_SHORT_WRITE:
            return fault
        raise OSError(fault, os.strerror(fault), path)

    # -- FaultableIO primitives ----------------------------------------
    def open(
        self,
        path: str,
        mode: str = "rb",
        *,
        encoding: str | None = None,
        newline: str | None = None,
    ) -> IO[Any]:
        if any(flag in mode for flag in _WRITE_MODES):
            self._track(path)
            self._check("open", path)
        return open(path, mode, encoding=encoding, newline=newline)

    def open_exclusive(self, path: str) -> IO[Any]:
        self._track(path)
        self._check("open_exclusive", path)
        return super().open_exclusive(path)

    def write(self, fh: IO[Any], data: Any) -> int:
        path = getattr(fh, "name", "<fh>")
        fault = self._check("write", str(path))
        if fault == FAULT_SHORT_WRITE:
            fh.write(data[: max(1, len(data) // 2)])
            raise OSError(
                _errno.EIO, "short write: " + os.strerror(_errno.EIO), path
            )
        return int(fh.write(data))

    def flush(self, fh: IO[Any]) -> None:
        self._check("flush", str(getattr(fh, "name", "<fh>")))
        fh.flush()

    def fsync(self, fh: IO[Any]) -> None:
        path = str(getattr(fh, "name", "<fh>"))
        self._check("fsync", path)
        fh.flush()
        os.fsync(fh.fileno())
        self._mark_durable(path)

    def replace(self, src: str, dst: str) -> None:
        self._track(src)
        self._track(dst)
        self._check("replace", dst)
        # Real effect now; durable state of dst unchanged until the
        # parent directory is fsynced (the torn-rename window).
        os.replace(src, dst)

    def unlink(self, path: str) -> None:
        self._track(path)
        self._check("unlink", path)
        os.unlink(path)

    def fsync_dir(self, path: str) -> None:
        self._check("fsync_dir", path)
        super().fsync_dir(path)
        # Entry changes in this directory are now durable: snapshot the
        # current state of every tracked path directly inside it.
        target = os.path.abspath(path)
        for tracked in list(self._durable):
            if os.path.dirname(tracked) == target:
                self._durable[tracked] = self._read_raw(tracked)

    def sleep(self, seconds: float) -> None:
        """Backoff is a no-op under chaos: schedules are index-driven,
        and tests should not spend wall-clock on rehearsed waiting."""


def op_census(
    root: str | os.PathLike[str], action: Callable[[FaultableIO], Any]
) -> list[tuple[str, str]]:
    """Enumerate every VFS primitive ``action`` performs, fault-free.

    Runs ``action`` under a scripted-fault-free :class:`StorageChaos`
    and returns its chronological ``(op, path)`` log — the injection
    plan for an exhaustive per-op fault sweep.  ``action`` receives the
    chaos object but the active VFS is *not* swapped globally; callers
    that exercise code using :func:`repro.io.get_io` should wrap the
    call in :func:`repro.io.scoped_io` themselves.
    """
    chaos = StorageChaos(root)
    action(chaos)
    return list(chaos.ops_log)
