"""Incremental, application-by-application categorization.

Beyond post-mortem corpus analysis, the paper notes MOSAIC "can also be
used for application-by-application categorization to provide
information to a job scheduler" (§IV-E).  This module provides that
online mode: traces arrive one at a time (as jobs finish and their
Darshan logs land), and the catalog maintains, per application, the
categorization of its heaviest run seen so far — the same
keep-heaviest semantics as the batch pipeline, incrementally.

A scheduler queries :meth:`ApplicationCatalog.lookup` at submission time
and receives the latest known categories (or nothing for first-time
applications).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..darshan.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..columnar.store import CorpusStore
from ..darshan.validate import validate_trace
from .categorizer import categorize_trace
from .governor import DegradationLevel
from .result import CategorizationResult
from .thresholds import DEFAULT_CONFIG, MosaicConfig

__all__ = ["AppEntry", "ApplicationCatalog"]


@dataclass(slots=True)
class AppEntry:
    """Catalog state for one (user, executable) application."""

    result: CategorizationResult
    #: io_weight of the trace behind `result` (keep-heaviest criterion).
    weight: float
    #: Valid runs observed so far.
    n_runs: int = 1
    #: Runs whose own categorization agreed with the catalog entry's
    #: categories at ingest time (behaviour-stability estimate, cf. the
    #: paper's 97%-of-LAMMPS observation).
    n_agreeing: int = 1

    @property
    def stability(self) -> float:
        """Fraction of runs matching the catalog categorization."""
        return self.n_agreeing / self.n_runs if self.n_runs else 0.0


@dataclass(slots=True)
class ApplicationCatalog:
    """Online per-application categorization store.

    Ingest is fault-isolated the same way the batch pipeline is (see
    docs/ROBUSTNESS.md): a trace whose categorization raises is counted
    and dropped rather than killing the stream, and an application whose
    traces *keep* failing is quarantined — its runs are rejected at the
    door so one poison producer cannot monopolize the catalog's time.
    """

    config: MosaicConfig = DEFAULT_CONFIG
    #: Re-categorize a run only when it is at least this much heavier
    #: than the catalog entry (avoids churning on equal-weight runs).
    min_weight_gain: float = 1.0
    #: Categorization failures tolerated per application before its
    #: runs are quarantined (mirrors ``RetryPolicy.max_item_crashes``).
    max_app_failures: int = 2
    _entries: dict[tuple[int, str], AppEntry] = field(default_factory=dict)
    _failures: dict[tuple[int, str], int] = field(default_factory=dict)
    _quarantined: set[tuple[int, str]] = field(default_factory=set)
    n_ingested: int = 0
    n_rejected: int = 0
    n_failed: int = 0
    #: Ingested runs whose categorization came back degraded (any
    #: non-FULL rung of the ladder; see :mod:`repro.core.governor`).
    n_degraded: int = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def n_quarantined(self) -> int:
        return len(self._quarantined)

    def quarantined_apps(self) -> list[tuple[int, str]]:
        """Application keys whose ingest keeps failing (sorted)."""
        return sorted(self._quarantined)

    # ------------------------------------------------------------------
    def _record_failure(self, key: tuple[int, str]) -> None:
        self.n_failed += 1
        self._failures[key] = self._failures.get(key, 0) + 1
        if self._failures[key] >= self.max_app_failures:
            self._quarantined.add(key)

    def ingest(self, trace: Trace) -> AppEntry | None:
        """Feed one finished job's trace.

        Corrupted traces are rejected, failing categorizations are
        dropped, and quarantined applications are skipped — all counted,
        never raised: the stream must keep flowing.  Returns the
        application's current entry, or ``None`` if the trace produced
        none.
        """
        self.n_ingested += 1
        if not validate_trace(trace).valid:
            self.n_rejected += 1
            return None

        key = trace.meta.app_key
        if key in self._quarantined:
            self.n_rejected += 1
            return None
        weight = trace.io_weight()
        entry = self._entries.get(key)

        if entry is None:
            try:
                result = categorize_trace(trace, self.config)
            except Exception:
                self._record_failure(key)
                return None
            return self._fold(key, weight, result)

        entry.n_runs += 1
        try:
            result = categorize_trace(trace, self.config)
        except Exception:
            # the catalog still holds a good reference answer for this
            # application; the failed run just doesn't refresh it
            self._record_failure(key)
            return entry
        return self._fold(key, weight, result, entry=entry)

    def _fold(
        self,
        key: tuple[int, str],
        weight: float,
        result: CategorizationResult,
        *,
        entry: AppEntry | None = None,
    ) -> AppEntry:
        """Fold one already-computed categorization into the catalog.

        Shared by :meth:`ingest` (per-trace) and :meth:`ingest_store`
        (batched), so both apply identical keep-heaviest and agreement
        accounting.  ``entry`` must be the key's current entry with
        ``n_runs`` already incremented, or ``None`` for a first run.
        """
        if result.degradation is not DegradationLevel.FULL:
            self.n_degraded += 1
        if entry is None:
            entry = AppEntry(result=result, weight=weight)
            self._entries[key] = entry
            return entry
        if result.categories == entry.result.categories:
            entry.n_agreeing += 1
        if weight >= entry.weight * self.min_weight_gain and weight > entry.weight:
            # heavier run: it becomes the application's reference
            entry.result = result
            entry.weight = weight
        return entry

    def ingest_store(
        self, store: "CorpusStore", rows: list[int] | None = None
    ) -> int:
        """Bulk-ingest a compiled columnar store via the batched path.

        Every valid trace of ``rows`` (default: the whole store) whose
        application is not quarantined at call time is categorized
        through :func:`repro.columnar.batch.categorize_slice` — many
        traces per kernel dispatch — and folded into the catalog with
        exactly the semantics of calling :meth:`ingest` trace by trace
        in row order (validity comes from the compile-time bitmask, the
        same ``validate_trace`` verdict).  Returns the number of runs
        folded in.
        """
        from ..columnar.batch import categorize_slice, plan_slices

        if rows is None:
            rows = list(range(store.n_traces))

        admitted: list[int] = []
        for row in rows:
            self.n_ingested += 1
            if not store.is_valid(row):
                self.n_rejected += 1
                continue
            if store.app_key(row) in self._quarantined:
                self.n_rejected += 1
                continue
            admitted.append(row)

        n_folded = 0
        idx = store.index
        for task in plan_slices(store, admitted, budget=self.config.budget):
            keys = [store.app_key(row) for row in task.rows]
            try:
                results = categorize_slice(task, self.config)
            except Exception:
                for key in keys:
                    entry = self._entries.get(key)
                    if entry is not None:
                        entry.n_runs += 1
                    self._record_failure(key)
                continue
            for row, key, result in zip(task.rows, keys, results):
                entry = self._entries.get(key)
                if entry is not None:
                    entry.n_runs += 1
                self._fold(
                    key, float(idx[row]["io_weight"]), result, entry=entry
                )
                n_folded += 1
        return n_folded

    def lookup(self, uid: int, exe: str) -> AppEntry | None:
        """Scheduler-side query: known categorization of an application."""
        return self._entries.get((uid, exe))

    def entries(self) -> list[AppEntry]:
        """All catalog entries (stable order by application key)."""
        return [self._entries[k] for k in sorted(self._entries)]

    def results(self) -> list[CategorizationResult]:
        """Current reference results, one per application — directly
        consumable by :mod:`repro.analysis`."""
        return [e.result for e in self.entries()]

    def run_weights(self) -> list[int]:
        """Valid-run counts aligned with :meth:`results`."""
        return [e.n_runs for e in self.entries()]
