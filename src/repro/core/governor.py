"""Per-trace resource governance: the soft half of input hardening.

The hard decode caps (:mod:`repro.darshan.limits`) reject payloads that
*lie* about their size; this module governs traces that are honest but
enormous.  Dropping them would bias the corpus statistics (the heaviest
applications are exactly the ones the paper cares about), so instead of
an eviction the pipeline walks a **degradation ladder**:

``FULL``
    The trace fits the budget; every axis runs at paper fidelity.
``COARSE``
    Operation count moderately over budget: operations are
    deterministically stride-subsampled down to ``max_ops`` before event
    fusion (total volume preserved), so temporality is exact and
    periodicity runs on a coarse but unbiased sketch.
``MINIMAL``
    Grossly over budget, or a stage deadline expired: periodicity — the
    super-linear axis — is skipped entirely; temporality and metadata
    (both linear, single-pass) still run.
``FLAGGED``
    Beyond even the minimal multiplier: no axis runs.  The trace yields
    a partial, schema-complete result carrying only identity fields and
    a :attr:`~repro.darshan.validate.Violation.RESOURCE_BUDGET` flag.

Every rung still produces a :class:`~repro.core.result.CategorizationResult`
with its :class:`DegradationLevel` recorded, so downstream aggregation can
filter, weight, or audit degraded entries; nothing silently vanishes.

The default :class:`ResourceBudget` is unlimited (all zeros): governance
is opt-in, and the paper-faithful pipeline is byte-identical to the
ungoverned one unless a budget is set.

See docs/ROBUSTNESS.md ("Input hardening & degradation ladder").
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from enum import Enum

import numpy as np

from ..darshan.trace import OperationArray, Trace

__all__ = [
    "DegradationLevel",
    "ResourceBudget",
    "Governor",
    "subsample_ops",
    "estimate_trace_cost",
]

#: Estimated per-operation working set across the kernel pipeline
#: (start/end/volume float64 columns plus merge/segmentation temporaries).
#: Deliberately generous — the budget is a governance knob, not an
#: allocator accounting ledger.
OP_WORKING_SET_BYTES = 192


class DegradationLevel(str, Enum):
    """How much fidelity a trace's categorization retained.

    Ordered from no degradation to total: ``FULL`` < ``COARSE`` <
    ``MINIMAL`` < ``FLAGGED``.  :meth:`rank` gives the ordering.
    """

    FULL = "full"
    COARSE = "coarse"
    MINIMAL = "minimal"
    FLAGGED = "flagged"

    @property
    def rank(self) -> int:
        return _LEVEL_RANK[self]

    def at_least(self, other: "DegradationLevel") -> bool:
        """True when this level is ``other`` or worse."""
        return self.rank >= other.rank


_LEVEL_RANK = {
    DegradationLevel.FULL: 0,
    DegradationLevel.COARSE: 1,
    DegradationLevel.MINIMAL: 2,
    DegradationLevel.FLAGGED: 3,
}

#: The ladder in escalation order.
LADDER: tuple[DegradationLevel, ...] = (
    DegradationLevel.FULL,
    DegradationLevel.COARSE,
    DegradationLevel.MINIMAL,
    DegradationLevel.FLAGGED,
)


@dataclass(slots=True, frozen=True)
class ResourceBudget:
    """Soft per-trace resource budget enforced by the :class:`Governor`.

    ``0`` means *unlimited* for every field — unlike the hard
    :class:`~repro.darshan.limits.DecodeLimits`, this is governance, not
    a DoS guard, and the default is to govern nothing.
    """

    #: Merged-operation count (per trace, both directions summed) the
    #: full-fidelity pipeline will accept; 0 disables.
    max_ops: int = 0
    #: Estimated working-set bytes the full-fidelity pipeline will
    #: accept; 0 disables.
    max_bytes: int = 0
    #: Soft wall-clock deadline per pipeline stage in seconds; a stage
    #: overrunning it escalates the ladder one rung.  0 disables.
    stage_deadline_s: float = 0.0
    #: Budget-overrun ratio up to which the answer is COARSE
    #: (subsample) rather than MINIMAL (skip periodicity).
    coarse_factor: float = 8.0
    #: Overrun ratio up to which the answer is MINIMAL rather than
    #: FLAGGED (no axis runs at all).
    minimal_factor: float = 64.0

    def __post_init__(self) -> None:
        if self.max_ops < 0:
            raise ValueError("max_ops must be >= 0 (0 disables)")
        if self.max_bytes < 0:
            raise ValueError("max_bytes must be >= 0 (0 disables)")
        if self.stage_deadline_s < 0:
            raise ValueError("stage_deadline_s must be >= 0 (0 disables)")
        if self.coarse_factor <= 1.0:
            raise ValueError("coarse_factor must be > 1")
        if self.minimal_factor <= self.coarse_factor:
            raise ValueError("minimal_factor must exceed coarse_factor")

    @property
    def unlimited(self) -> bool:
        """True when no governed quantity is bounded."""
        return (
            self.max_ops == 0
            and self.max_bytes == 0
            and self.stage_deadline_s == 0
        )

    def overrun_ratio(self, n_ops: int, est_bytes: int) -> float:
        """How far past budget a trace sits (1.0 = exactly at budget)."""
        ratio = 0.0
        if self.max_ops > 0:
            ratio = max(ratio, n_ops / self.max_ops)
        if self.max_bytes > 0:
            ratio = max(ratio, est_bytes / self.max_bytes)
        return ratio

    def assess(self, n_ops: int, est_bytes: int) -> DegradationLevel:
        """Place a trace of the given estimated cost on the ladder."""
        ratio = self.overrun_ratio(n_ops, est_bytes)
        if ratio <= 1.0:
            return DegradationLevel.FULL
        if ratio <= self.coarse_factor:
            return DegradationLevel.COARSE
        if ratio <= self.minimal_factor:
            return DegradationLevel.MINIMAL
        return DegradationLevel.FLAGGED


def estimate_trace_cost(trace: Trace) -> tuple[int, int]:
    """Cheap pre-flight cost estimate: (operation count, working-set bytes).

    One pass over the record list, no array materialization — this is
    what the governor charges against the budget *before* the kernels
    allocate anything.
    """
    n_ops = 0
    for rec in trace.records:
        if rec.has_read:
            n_ops += 1
        if rec.has_write:
            n_ops += 1
    return n_ops, n_ops * OP_WORKING_SET_BYTES


def subsample_ops(ops: OperationArray, target: int) -> OperationArray:
    """Deterministic stride subsample of an operation array.

    Keeps ``target`` operations at evenly spaced ranks (always including
    the first and last, preserving the activity span) and rescales the
    kept volumes so the **total volume is preserved exactly** — the
    significance rule and temporality chunk sums stay unbiased.  A
    no-op when the array already fits.
    """
    n = len(ops)
    if target <= 0 or n <= target:
        return ops
    idx = np.unique(np.linspace(0, n - 1, num=target).round().astype(np.intp))
    total = ops.volumes.sum()
    kept = ops.volumes[idx]
    kept_total = kept.sum()
    if kept_total > 0:
        volumes = kept * (total / kept_total)
    else:  # all-zero volumes: spread nothing evenly
        volumes = kept
    return OperationArray(ops.starts[idx], ops.ends[idx], volumes)


class Governor:
    """Walks one trace down the degradation ladder.

    Created per ``categorize_trace`` call; tracks the current level, the
    reasons for every escalation (surfaced as ``budget_violations`` on
    the result), and a monotonic-clock stage deadline.
    """

    __slots__ = ("budget", "level", "violations", "_stage_started")

    def __init__(self, budget: ResourceBudget) -> None:
        self.budget = budget
        self.level = DegradationLevel.FULL
        self.violations: list[str] = []
        self._stage_started = time.monotonic()

    # -- admission ------------------------------------------------------
    def admit(self, trace: Trace) -> DegradationLevel:
        """Assess the trace's estimated cost and set the starting level."""
        if self.budget.unlimited:
            return self.level
        n_ops, est_bytes = estimate_trace_cost(trace)
        return self.admit_cost(n_ops, est_bytes)

    def admit_cost(self, n_ops: int, est_bytes: int) -> DegradationLevel:
        """Admit from a precomputed cost estimate.

        The store-backed batch path (:mod:`repro.columnar.batch`) reads
        the estimate from the trace index without materializing a
        ``Trace``; sharing this method keeps its escalation messages —
        and therefore journaled results — byte-identical to
        :meth:`admit`.
        """
        if self.budget.unlimited:
            return self.level
        level = self.budget.assess(n_ops, est_bytes)
        if level is not DegradationLevel.FULL:
            ratio = self.budget.overrun_ratio(n_ops, est_bytes)
            self._escalate_to(
                level,
                f"estimated cost {n_ops} ops / {est_bytes} bytes is "
                f"{ratio:.1f}x the budget",
            )
        return self.level

    # -- stage deadline -------------------------------------------------
    def start_stage(self) -> None:
        """Reset the stage clock (call when a pipeline stage begins)."""
        self._stage_started = time.monotonic()

    def check_deadline(self, stage: str) -> DegradationLevel:
        """Escalate one rung if the current stage overran its deadline.

        Polled *between* stages — the governor never interrupts a kernel
        mid-flight; it stops scheduling expensive work after the clock
        shows the trace is slow.
        """
        deadline = self.budget.stage_deadline_s
        if deadline > 0:
            elapsed = time.monotonic() - self._stage_started
            if elapsed > deadline:
                # time is the scarce resource here, so jump straight to
                # skipping the super-linear axis; never to FLAGGED — the
                # trace already paid for its cheap axes, keep the answers
                self._escalate_to(
                    DegradationLevel.MINIMAL,
                    f"stage {stage!r} ran {elapsed:.2f}s past the "
                    f"{deadline:.2f}s deadline",
                )
        self.start_stage()
        return self.level

    # -- queries --------------------------------------------------------
    def allows_periodicity(self) -> bool:
        return self.level.rank < DegradationLevel.MINIMAL.rank

    def allows_axes(self) -> bool:
        return self.level is not DegradationLevel.FLAGGED

    def ops_cap(self) -> int:
        """Per-direction operation cap at the current level (0 = none).

        Applies from COARSE onward: every degraded rung bounds the
        working set the kernels see, not just the axes they run.
        """
        if (
            self.level.at_least(DegradationLevel.COARSE)
            and self.budget.max_ops > 0
        ):
            return self.budget.max_ops
        return 0

    # -- internals ------------------------------------------------------
    def _escalate_to(self, level: DegradationLevel, reason: str) -> None:
        if level.rank > self.level.rank:
            self.level = level
        self.violations.append(reason)
