"""MOSAIC configuration: every threshold of the paper in one place.

The paper fixes most thresholds explicitly (§III-A, §III-B) and sets the
remaining clustering thresholds "empirically ... on one month of traces".
This dataclass records them all; the pipeline takes a config instance so
the amount of I/O activity to categorize can be extended or narrowed, as
the paper notes for the 100 MB rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from ..darshan.tolerance import TIME_TOLERANCE_S, close_to
from ..kernels import available_backends
from ..merge.neighbor import NeighborMergeConfig
from .governor import ResourceBudget

__all__ = [
    "MosaicConfig",
    "DEFAULT_CONFIG",
    "TIME_TOLERANCE_S",
    "close_to",
    "ResourceBudget",
]

MB = 1024 * 1024


@dataclass(slots=True, frozen=True)
class MosaicConfig:
    """All tunables of the MOSAIC categorization algorithm."""

    # -- significance (§III-A) -------------------------------------------
    #: Directions moving fewer bytes than this are `insignificant`
    #: (paper: 100 MB).
    insignificant_bytes: int = 100 * MB
    #: A trace whose metadata operation count is below `nprocs` carries
    #: `metadata_insignificant_load` (paper: "fewer metadata operations
    #: than the number of ranks").
    metadata_min_ops_per_rank: float = 1.0

    # -- event fusion (§III-B2) -------------------------------------------
    merge: NeighborMergeConfig = field(default_factory=NeighborMergeConfig)

    # -- kernel backend (see repro.kernels) --------------------------------
    #: Implementation of the hot per-trace kernels (neighbor merge,
    #: concurrent fusion, segmentation, Mean Shift step, peak scans,
    #: activity binning): "vectorized" (NumPy, the default) or
    #: "reference" (the pure-Python differential-testing oracle).
    kernel_backend: str = "vectorized"

    # -- temporality (§III-B3b) -------------------------------------------
    #: Number of equal temporal chunks (paper: 4 × 25%).
    n_chunks: int = 4
    #: A chunk dominates when it holds more than `dominance_factor` times
    #: the bytes of every other chunk (paper: "more than twice").
    dominance_factor: float = 2.0
    #: Coefficient-of-variation bound under which chunks count as equal
    #: and the direction is `steady` (paper: 25%).
    steady_cv: float = 0.25

    # -- periodicity (§III-B3a; §V for the signal-processing methods) ------
    #: Detection method: "meanshift" is the paper's algorithm;
    #: "dft" / "autocorr" are the frequency-technique baselines of
    #: ref. [24]; "hybrid" runs Mean Shift and falls back to the DFT when
    #: segmentation finds nothing — the integration the paper plans as
    #: short-term future work.
    periodicity_method: str = "meanshift"
    #: Mean Shift bandwidth in log10 feature space over (duration,
    #: volume): segments within this radius share a mode.  0.15 ≈ "same
    #: within ×1.4" — the empirically-set comparability threshold.
    meanshift_bandwidth: float = 0.15
    #: Minimum mode population for a periodic operation (paper: "size
    #: strictly greater than 1"; our calibration keeps 3 as the default —
    #: see periodicity module docstring).
    min_group_size: int = 3
    #: Segments shorter than this (seconds) are clock noise, not periods.
    min_period: float = 1.0
    #: Minimum merged-operation count before the signal-processing
    #: detectors (DFT/autocorrelation) run: they need a handful of
    #: repetitions to see a fundamental, independent of the Mean Shift
    #: group-size rule.
    signal_min_ops: int = 3
    #: Boundaries of period magnitude labels (seconds).
    period_second_max: float = 60.0
    period_minute_max: float = 3600.0
    period_hour_max: float = 86400.0
    #: Activity-rate split between low and high busy-time labels
    #: (paper §IV-D: 96% of periodic writers are busy < 25% of the time).
    busy_time_threshold: float = 0.25

    # -- metadata impact (§III-B3c) ----------------------------------------
    #: Requests/second above which one bin is a *high spike* (paper: 250,
    #: derived from Mistral's ≈3000 req/s saturation point).
    high_spike_rate: float = 250.0
    #: Requests/second for an ordinary spike (paper: 50).
    spike_rate: float = 50.0
    #: Number of spikes required for `multiple_spikes` / `high_density`
    #: (paper: 5).
    min_spikes: int = 5
    #: Average requests/second across the execution for `high_density`
    #: (paper: 50).
    density_rate: float = 50.0
    #: Width of metadata rate bins in seconds (paper reasons per second).
    metadata_bin_seconds: float = 1.0

    # -- corpus execution robustness (extension; see docs/ROBUSTNESS.md) --
    #: Per-trace categorization wall-clock deadline in seconds; a trace
    #: exceeding it is quarantined as TIMEOUT and its worker recycled.
    #: 0 disables deadlines (the batch/offline default).
    task_timeout_s: float = 0.0
    #: Re-executions granted to a trace whose failure class is
    #: transient (I/O errors, format errors on re-read).
    max_retries: int = 2
    #: First retry backoff delay in seconds; doubles per retry, with
    #: deterministic jitter.
    backoff_base_s: float = 0.05
    #: Process-pool rebuilds (crash or timeout recycles) tolerated per
    #: corpus run before the run is declared unhealthy and aborted.
    max_pool_rebuilds: int = 3

    # -- per-trace resource governance (extension; docs/ROBUSTNESS.md) ----
    #: Soft per-trace budget driving the degradation ladder
    #: (see :mod:`repro.core.governor`).  The default is unlimited:
    #: governance is opt-in and the ungoverned pipeline is unchanged.
    budget: ResourceBudget = field(default_factory=ResourceBudget)

    def __post_init__(self) -> None:
        if self.insignificant_bytes < 0:
            raise ValueError("insignificant_bytes must be >= 0")
        if self.n_chunks < 2:
            raise ValueError("n_chunks must be >= 2")
        if self.dominance_factor <= 1.0:
            raise ValueError("dominance_factor must be > 1")
        if not 0.0 < self.steady_cv < 1.0:
            raise ValueError("steady_cv must be in (0, 1)")
        if self.periodicity_method not in ("meanshift", "dft", "autocorr", "hybrid"):
            raise ValueError(
                f"unknown periodicity_method: {self.periodicity_method!r}"
            )
        if self.kernel_backend not in available_backends():
            raise ValueError(
                f"unknown kernel_backend: {self.kernel_backend!r}; "
                f"available: {', '.join(available_backends())}"
            )
        if self.meanshift_bandwidth <= 0:
            raise ValueError("meanshift_bandwidth must be positive")
        if self.min_group_size < 2:
            raise ValueError("min_group_size must be >= 2 (paper: > 1)")
        if self.signal_min_ops < 2:
            raise ValueError("signal_min_ops must be >= 2")
        if not (
            0
            < self.period_second_max
            < self.period_minute_max
            < self.period_hour_max
        ):
            raise ValueError("period magnitude boundaries must increase")
        if not 0.0 < self.busy_time_threshold < 1.0:
            raise ValueError("busy_time_threshold must be in (0, 1)")
        if self.spike_rate > self.high_spike_rate:
            raise ValueError("spike_rate must not exceed high_spike_rate")
        if self.min_spikes < 1:
            raise ValueError("min_spikes must be >= 1")
        if self.metadata_bin_seconds <= 0:
            raise ValueError("metadata_bin_seconds must be positive")
        if self.task_timeout_s < 0:
            raise ValueError("task_timeout_s must be >= 0 (0 disables)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be >= 0")
        if self.max_pool_rebuilds < 0:
            raise ValueError("max_pool_rebuilds must be >= 0")

    def with_overrides(self, **kwargs: Any) -> "MosaicConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


#: The paper's thresholds.
DEFAULT_CONFIG = MosaicConfig()
