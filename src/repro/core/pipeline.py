"""The full MOSAIC corpus workflow (Fig. 1: ① validity & dedup →
② merging → ③ categorization → ④ output).

The pipeline is *streaming*: :func:`run_pipeline_stream` drives a lazy
:class:`~repro.darshan.source.TraceSource` through two bounded-memory
passes — scan/dedup (pass ①, no trace retained) and categorize (pass ②,
only the selected heaviest traces, loaded with backpressure against the
process pool) — so corpora larger than RAM are categorizable.  The
original batch API, :func:`run_pipeline`, wraps an in-memory source and
materializes the selected traces, preserving its historical contract.

Pass ② runs on the *resilient* executor
(:func:`~repro.parallel.resilient.resilient_imap`): worker crashes
rebuild the pool instead of aborting, hung traces are quarantined as
TIMEOUT, transient read errors are retried with backoff, and inputs
that repeatedly kill workers are quarantined as POISON.  With a
``journal_path``, every per-trace outcome is checkpointed to an
append-only JSONL journal as it completes, so a killed run resumes
(``resume=True``) exactly where it died; quarantined traces are listed
in a ``<journal>.quarantine.json`` manifest.  See docs/ROBUSTNESS.md.

A :class:`PipelineContext` threads configuration, error policy, and
observability (per-stage wall-clock timings plus counters: traces
scanned, bytes read, peak in-flight traces, failures, retries, pool
rebuilds) through the run; both surface on :class:`PipelineResult`.
"""

from __future__ import annotations

import functools
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Union

from ..darshan.errors import (
    TraceFormatError,
    TraceReadError,
    TraceUnavailableError,
)
from ..darshan.source import InMemorySource, TraceSource
from ..darshan.trace import Trace
from ..parallel.executor import (
    MapOutcome,
    ParallelConfig,
    TaskFailure,
    parallel_map,
)
from ..parallel.jobstore import JobStore
from ..parallel.resilient import resilient_imap
from ..parallel.retry import FailureKind, RetryPolicy, backoff_delay
from .categorizer import categorize_trace
from .governor import DegradationLevel
from .preprocess import (
    PreprocessResult,
    SelectedRef,
    SelectionPlan,
    load_selected,
    scan_corpus,
)
from .result import CategorizationResult
from .thresholds import DEFAULT_CONFIG, MosaicConfig

__all__ = [
    "PipelineContext",
    "PipelineResult",
    "run_pipeline",
    "run_pipeline_store",
    "run_pipeline_stream",
]

#: Worker-function decorator slot type (chaos injection, tracing, ...).
WorkerWrapper = Callable[[Callable[[Any], Any]], Callable[[Any], Any]]


def _trace_cost(trace: Trace) -> float:
    """LPT cost estimate: record count dominates categorization time."""
    return float(len(trace.records)) + 1e-9 * trace.total_bytes


def _default_parallel() -> ParallelConfig:
    return ParallelConfig(max_workers=0, cost=_trace_cost)


@dataclass(slots=True)
class PipelineContext:
    """Everything a pipeline run carries besides the corpus itself.

    One context per run: configuration in, per-stage observability out.
    ``error_policy`` decides what a per-trace categorization failure
    does — ``"collect"`` (the paper's behaviour: count it, keep going)
    or ``"raise"`` (abort on first failure; debugging).
    ``wrap_worker`` optionally decorates the picklable worker function
    before it ships to the pool — the chaos harness's injection point.
    """

    config: MosaicConfig = DEFAULT_CONFIG
    parallel: ParallelConfig = field(default_factory=_default_parallel)
    repair: bool = False
    error_policy: str = "collect"
    wrap_worker: WorkerWrapper | None = None
    #: Wall-clock seconds per stage, keyed ``<stage>_s``.
    timings: dict[str, float] = field(default_factory=dict)
    #: Monotonic counters: traces_scanned, bytes_read, n_unreadable,
    #: peak_inflight_traces, dedup_state_size, failures, n_retries,
    #: n_pool_rebuilds, n_timeouts, n_poisoned, n_quarantined, ...
    counters: dict[str, int] = field(default_factory=dict)
    #: Optional content-addressed result cache (duck-typed to keep core
    #: independent of :mod:`repro.service`; see
    #: :class:`repro.service.cache.ResultCache`): ``trace_key(crc)``
    #: derives the cache key from a store row's CRC chain, ``get(key)``
    #: returns a saved result payload or ``None``, ``put(key, payload)``
    #: stores one.  Consulted by :func:`run_pipeline_store` only — the
    #: per-trace CRC that addresses it exists only in ``.mosc`` v2.
    result_cache: Any | None = None
    #: Optional settle hook passed to the journal-backed
    #: :class:`~repro.parallel.jobstore.JobStore`: called as
    #: ``(kind, job_id, record, seq)`` after every durably-journaled
    #: outcome (``kind`` is ``"result"`` or ``"failure"``; ``seq`` is
    #: the journal settle-event sequence number, stable across
    #: resumes).  The service's SSE live stream; no effect without
    #: ``journal_path``.
    on_settle: Any | None = None

    def __post_init__(self) -> None:
        if self.error_policy not in ("collect", "raise"):
            raise ValueError(
                f"error_policy must be 'collect' or 'raise', "
                f"got {self.error_policy!r}"
            )

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time a pipeline stage; accumulates into :attr:`timings`."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            key = f"{name}_s"
            self.timings[key] = self.timings.get(key, 0.0) + (
                time.perf_counter() - t0
            )

    def count(self, name: str, value: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: int) -> None:
        """Record a high-water mark."""
        if value > self.counters.get(name, 0):
            self.counters[name] = value

    def retry_policy(self) -> RetryPolicy:
        """Effective retry policy: :class:`MosaicConfig` defaults,
        overridden by any explicitly-set :class:`ParallelConfig` field."""
        base = RetryPolicy(
            task_timeout_s=self.config.task_timeout_s,
            max_retries=self.config.max_retries,
            backoff_base_s=self.config.backoff_base_s,
            backoff_cap_s=max(self.config.backoff_base_s, RetryPolicy().backoff_cap_s),
            max_pool_rebuilds=self.config.max_pool_rebuilds,
        )
        return self.parallel.retry_policy(base)


@dataclass(slots=True)
class PipelineResult:
    """Everything produced by one corpus run."""

    preprocess: PreprocessResult
    #: One result per selected (unique-application) trace.
    results: list[CategorizationResult]
    #: Failures captured during categorization (never aborts the corpus).
    n_failures: int
    #: Wall-clock seconds spent per stage.
    timings: dict[str, float] = field(default_factory=dict)
    #: Per-stage counters from the run's :class:`PipelineContext`.
    metrics: dict[str, int] = field(default_factory=dict)

    def run_weights(self) -> list[int]:
        """Valid-run count of each result's application, aligned with
        :attr:`results` — the all-runs weighting of the paper's tables."""
        per_app = self.preprocess.runs_per_app
        return [per_app.get(r.app_key, 1) for r in self.results]

    @property
    def n_categorized(self) -> int:
        return len(self.results)


def _count_degradation(
    ctx: PipelineContext, results: list[CategorizationResult]
) -> None:
    """Surface the degradation ladder in the run metrics: one counter
    per non-FULL rung (``n_degraded_<level>``) plus the total, so a
    governed run is auditable from its metrics alone."""
    total = 0
    for r in results:
        if r.degradation is not DegradationLevel.FULL:
            total += 1
            ctx.count(f"n_degraded_{r.degradation.value}")
    if total:
        ctx.count("n_degraded", total)


def _scan_stage(source: TraceSource, ctx: PipelineContext) -> SelectionPlan:
    """Pass ① plus its bookkeeping."""
    bytes_before = source.bytes_read
    with ctx.stage("scan"):
        plan = scan_corpus(source, repair=ctx.repair)
    ctx.count("traces_scanned", plan.n_input)
    ctx.count("n_corrupted", plan.n_corrupted)
    ctx.count("n_unreadable", plan.n_unreadable)
    ctx.count("n_repaired", plan.n_repaired)
    ctx.count("scan_bytes_read", source.bytes_read - bytes_before)
    # the scan's only retained state: one small ref per application
    ctx.gauge("dedup_state_size", plan.n_selected)
    return plan


# ----------------------------------------------------------------------
# Pass ② payloads.  A selected trace that stays unreadable after the
# parent-side retry budget travels to the worker as a _LoadFailure
# sentinel (keeping stream indexes aligned), where it raises a
# permanent, per-trace error instead of aborting the corpus.


@dataclass(slots=True, frozen=True)
class _LoadFailure:
    """A selected trace whose reload failed even with retries."""

    job_id: int
    error_type: str
    message: str


_Payload = Union[Trace, _LoadFailure]


def _categorize_payload(
    payload: _Payload, config: MosaicConfig
) -> CategorizationResult:
    """Worker-side entry: categorize a trace, or surface its load error."""
    if isinstance(payload, _LoadFailure):
        raise TraceUnavailableError(
            f"trace {payload.job_id} unreadable after retries: "
            f"{payload.error_type}: {payload.message}"
        )
    return categorize_trace(payload, config)


def _load_with_retry(
    source: TraceSource,
    entry: SelectedRef,
    policy: RetryPolicy,
    ctx: PipelineContext,
) -> _Payload:
    """Reload one selected trace, retrying transient read failures.

    The scan already decoded this trace once, so a failure here is
    environmental (file mid-rewrite, I/O hiccup) until proven
    persistent — exactly the ``TraceFormatError``-on-reread class the
    retry policy covers.
    """
    attempts = 0
    while True:
        attempts += 1
        try:
            return load_selected(source, entry)
        except (TraceFormatError, TraceReadError, OSError) as exc:
            if attempts > policy.max_retries:
                return _LoadFailure(
                    job_id=entry.job_id,
                    error_type=type(exc).__name__,
                    message=str(exc),
                )
            ctx.count("n_reload_retries")
            delay = backoff_delay(attempts, policy, key=entry.job_id)
            if delay > 0:
                time.sleep(delay)


def _failure_from_record(record: dict[str, Any], index: int) -> TaskFailure:
    """Rehydrate a journaled failure for a resumed run."""
    raw_kind = str(record.get("failure_kind", FailureKind.EXCEPTION.value))
    try:
        kind = FailureKind(raw_kind)
    except ValueError:
        kind = FailureKind.EXCEPTION
    return TaskFailure(
        index=index,
        error_type=str(record.get("error_type", "")),
        message=str(record.get("message", "")),
        traceback_text="",
        kind=kind,
        qualname=str(record.get("error_type", "")),
        attempts=int(record.get("attempts", 1)),
    )


def _open_jobstore(
    journal_path: str | os.PathLike[str],
    resume: bool,
    n_selected: int,
    ctx: PipelineContext,
) -> tuple[
    JobStore, dict[int, CategorizationResult], dict[int, TaskFailure]
]:
    """Open the journal-backed job store and rehydrate resumed state.

    The core-layer shim over :class:`~repro.parallel.jobstore.JobStore`:
    the parallel layer traffics in plain dicts, so converting journaled
    payloads back into :class:`CategorizationResult`/:class:`TaskFailure`
    happens here, once, for both pipeline paths.
    """
    jobstore = JobStore(journal_path, resume=resume, on_settle=ctx.on_settle)
    state = jobstore.open(n_selected=n_selected)
    resumed_results: dict[int, CategorizationResult] = {}
    resumed_failures: dict[int, TaskFailure] = {}
    if jobstore.resuming:
        resumed_results = {
            job_id: CategorizationResult.from_dict(payload)
            for job_id, payload in state.completed.items()
        }
        resumed_failures = {
            job_id: _failure_from_record(record, index=-1)
            for job_id, record in state.quarantined.items()
        }
        ctx.count("n_journal_malformed", state.n_malformed)
    return jobstore, resumed_results, resumed_failures


def _settle_failure(
    jobstore: JobStore | None,
    ctx: PipelineContext,
    job_id: int,
    outcome: TaskFailure,
    trace_key: str,
) -> None:
    """Count (and, when journaled, durably record) one failed trace."""
    if outcome.kind in (FailureKind.TIMEOUT, FailureKind.POISON):
        ctx.count("n_quarantined")
    if jobstore is not None:
        jobstore.settle_failure(
            job_id,
            failure_kind=outcome.kind.value,
            error_type=outcome.error_type,
            message=outcome.message,
            trace_key=trace_key,
            attempts=outcome.attempts,
        )


def run_pipeline_stream(
    source: TraceSource,
    config: MosaicConfig = DEFAULT_CONFIG,
    parallel: ParallelConfig | None = None,
    *,
    repair: bool = False,
    context: PipelineContext | None = None,
    journal_path: str | os.PathLike[str] | None = None,
    resume: bool = False,
) -> PipelineResult:
    """Run MOSAIC end to end over a lazy trace source, out of core.

    Memory model: pass ① holds one trace at a time plus per-application
    dedup refs; pass ② holds at most
    :meth:`~repro.parallel.executor.ParallelConfig.resolved_pending`
    selected traces in flight (1 when serial).  The full corpus is never
    resident, so corpus size is bounded by disk, not RAM.

    ``journal_path`` checkpoints every per-trace outcome as it completes
    (append-only JSONL); ``resume=True`` reloads an existing journal at
    that path first and skips traces it already settled — completed ones
    contribute their saved results, quarantined (TIMEOUT/POISON) ones
    stay quarantined.  ``context`` may be passed to override error
    policy, inject a worker wrapper, or share one metrics sink across
    runs; otherwise one is built from the arguments.
    """
    ctx = context or PipelineContext(
        config=config,
        parallel=parallel or _default_parallel(),
        repair=repair,
    )
    t0 = time.perf_counter()
    plan = _scan_stage(source, ctx)
    policy = ctx.retry_policy()

    # -- journal / resume bookkeeping (shared JobStore contract) -------
    jobstore: JobStore | None = None
    resumed_results: dict[int, CategorizationResult] = {}
    resumed_failures: dict[int, TaskFailure] = {}
    if journal_path is not None:
        jobstore, resumed_results, resumed_failures = _open_jobstore(
            journal_path, resume, plan.n_selected, ctx
        )

    bytes_before = source.bytes_read
    failures: list[TaskFailure] = []
    slots: list[CategorizationResult | None] = [None] * len(plan.selected)
    try:
        with ctx.stage("categorize"):
            pending: list[tuple[int, SelectedRef]] = []
            for slot, entry in enumerate(plan.selected):
                if entry.job_id in resumed_results:
                    slots[slot] = resumed_results[entry.job_id]
                elif entry.job_id in resumed_failures:
                    failures.append(resumed_failures[entry.job_id])
                else:
                    pending.append((slot, entry))
            ctx.count("n_resumed", len(plan.selected) - len(pending))

            inflight = 0
            peak = 0

            def load_stream() -> Iterator[_Payload]:
                nonlocal inflight, peak
                for _slot, entry in pending:
                    inflight += 1
                    peak = max(peak, inflight)
                    yield _load_with_retry(source, entry, policy, ctx)

            fn: Callable[[Any], Any] = functools.partial(
                _categorize_payload, config=ctx.config
            )
            if ctx.wrap_worker is not None:
                fn = ctx.wrap_worker(fn)
            stream = resilient_imap(
                fn,
                load_stream(),
                ctx.parallel,
                policy=policy,
                on_count=ctx.count,
            )

            for index, outcome in stream:
                inflight -= 1
                slot, entry = pending[index]
                if isinstance(outcome, TaskFailure):
                    if ctx.error_policy == "raise":
                        raise RuntimeError(f"categorization failed: {outcome}")
                    failures.append(outcome)
                    _settle_failure(  # mosaic: disable=MOS016 (bookkeeping, not analysis)
                        jobstore, ctx, entry.job_id, outcome, str(entry.ref.key)
                    )
                else:
                    slots[slot] = outcome
                    if jobstore is not None:
                        jobstore.settle_result(entry.job_id, outcome.to_dict())
    finally:
        if jobstore is not None:
            jobstore.close()

    results = [r for r in slots if r is not None]
    failures.sort(key=lambda f: f.index)

    ctx.count("n_selected", plan.n_selected)
    ctx.count("n_failures", len(failures))
    _count_degradation(ctx, results)
    ctx.count("categorize_bytes_read", source.bytes_read - bytes_before)
    ctx.gauge("peak_inflight_traces", peak)
    ctx.timings["total_s"] = time.perf_counter() - t0
    # historical stage names, kept for dashboards and the benchmarks
    ctx.timings.setdefault("preprocess_s", ctx.timings.get("scan_s", 0.0))

    return PipelineResult(
        preprocess=plan.to_result(None),
        results=results,
        n_failures=len(failures),
        timings=dict(ctx.timings),
        metrics=dict(ctx.counters),
    )


def run_pipeline_store(
    store_path: str | os.PathLike[str],
    config: MosaicConfig = DEFAULT_CONFIG,
    parallel: ParallelConfig | None = None,
    *,
    repair: bool = False,
    context: PipelineContext | None = None,
    journal_path: str | os.PathLike[str] | None = None,
    resume: bool = False,
    slice_ops: int | None = None,
) -> PipelineResult:
    """Run MOSAIC over a compiled columnar store (``repro compile``).

    The store-backed fast path: pass ① replays the eviction funnel from
    the trace index without decoding anything
    (:func:`repro.columnar.scan.scan_store`), and pass ② ships tiny
    ``(store_path, rows)`` descriptors to the pool instead of pickled
    traces — each worker reattaches the store read-only via mmap and
    categorizes whole slices through the segmented batch kernels
    (:func:`repro.columnar.batch.categorize_slice`), which are
    bitwise-equivalent to the per-trace pipeline.

    Journal semantics are unchanged and *per trace*: the journal header,
    per-trace result/failure records, and ``--resume`` behaviour are
    byte-identical to :func:`run_pipeline_stream` over the same corpus —
    a journal started on one path can be resumed on the other.  A whole
    failed slice journals one failure record per member trace.  The
    per-trace ``ResourceBudget`` is enforced per slice: the planner
    bounds each slice's working set by the budget, and each member trace
    still walks its own degradation ladder inside the worker.

    ``repair`` must match how the store was compiled (repair is baked in
    at compile time); a mismatch raises ``ValueError``.
    """
    # Imported lazily: repro.columnar imports from repro.core, so a
    # module-level import would cycle.
    from ..columnar.batch import categorize_slice, plan_slices
    from ..columnar.scan import scan_store
    from ..columnar.store import StoreSlice, attach

    ctx = context or PipelineContext(
        config=config,
        parallel=parallel or _default_parallel(),
        repair=repair,
    )
    t0 = time.perf_counter()
    # Attached via the per-process cache: repeat runs and resumed
    # runs reuse one verified read-only mapping instead of paying
    # open + CRC sweep per invocation; workers reattach the same way.
    store = attach(store_path, verify=True)
    with ctx.stage("scan"):
        plan = scan_store(store, repair=ctx.repair)
    ctx.count("traces_scanned", plan.n_input)
    ctx.count("n_corrupted", plan.n_corrupted)
    ctx.count("n_unreadable", plan.n_unreadable)
    ctx.count("n_repaired", plan.n_repaired)
    ctx.gauge("dedup_state_size", plan.n_selected)
    policy = ctx.retry_policy()

    # -- journal / resume bookkeeping (same contract as the stream
    # path; records stay per trace even though work ships per slice)
    jobstore: JobStore | None = None
    resumed_results: dict[int, CategorizationResult] = {}
    resumed_failures: dict[int, TaskFailure] = {}
    if journal_path is not None:
        jobstore, resumed_results, resumed_failures = _open_jobstore(
            journal_path, resume, plan.n_selected, ctx
        )

    failures: list[TaskFailure] = []
    slots: list[CategorizationResult | None] = [None] * len(plan.selected)
    try:
        with ctx.stage("categorize"):
            pending: list[tuple[int, SelectedRef]] = []
            for slot, entry in enumerate(plan.selected):
                if entry.job_id in resumed_results:
                    slots[slot] = resumed_results[entry.job_id]
                elif entry.job_id in resumed_failures:
                    failures.append(resumed_failures[entry.job_id])
                else:
                    pending.append((slot, entry))
            ctx.count("n_resumed", len(plan.selected) - len(pending))

            # -- content-addressed result cache: a trace whose CRC chain
            # (plus config/repair namespace, baked into the cache) was
            # categorized before is served its saved payload without
            # re-running any kernel.  Hits are still journaled, so
            # resume and byte-identity hold regardless of cache state.
            cache = ctx.result_cache
            trace_crcs = getattr(store, "trace_crcs", None)
            cache_keys: dict[int, str] = {}
            if cache is not None and trace_crcs is not None:
                uncached: list[tuple[int, SelectedRef]] = []
                for slot, entry in pending:
                    row = int(entry.ref.key)
                    key = cache.trace_key(int(trace_crcs[row]))
                    cache_keys[row] = key
                    payload = cache.get(key)
                    if payload is None:
                        ctx.count("n_cache_misses")
                        uncached.append((slot, entry))
                        continue
                    ctx.count("n_cache_hits")
                    slots[slot] = CategorizationResult.from_dict(  # mosaic: disable=MOS016 (rehydration of an already-governed result)
                        payload
                    )
                    if jobstore is not None:
                        jobstore.settle_result(entry.job_id, payload)
                pending = uncached

            by_row = {
                int(entry.ref.key): (slot, entry)
                for slot, entry in pending
            }
            slices = plan_slices(
                store,
                [int(entry.ref.key) for _slot, entry in pending],
                budget=ctx.config.budget,
                **(
                    {"target_ops": slice_ops}
                    if slice_ops is not None
                    else {}
                ),
            )
            ctx.count("n_slices", len(slices))

            inflight = 0
            peak = 0

            def slice_stream() -> Iterator[StoreSlice]:
                nonlocal inflight, peak
                for task in slices:
                    inflight += len(task)
                    peak = max(peak, inflight)
                    yield task

            fn: Callable[[Any], Any] = functools.partial(
                categorize_slice, config=ctx.config
            )
            if ctx.wrap_worker is not None:
                fn = ctx.wrap_worker(fn)
            stream = resilient_imap(
                fn,
                slice_stream(),
                ctx.parallel,
                policy=policy,
                on_count=ctx.count,
            )

            for index, outcome in stream:
                task = slices[index]
                inflight -= len(task)
                if isinstance(outcome, TaskFailure):
                    if ctx.error_policy == "raise":
                        raise RuntimeError(
                            f"categorization failed: {outcome}"
                        )
                    # the slice failed as a unit; journal and count
                    # one per-trace failure for each member
                    for row in task.rows:
                        _slot, entry = by_row[row]
                        failures.append(outcome)
                        _settle_failure(  # mosaic: disable=MOS016 (bookkeeping, not analysis)
                            jobstore,
                            ctx,
                            entry.job_id,
                            outcome,
                            f"{store.path}#{row}",
                        )
                else:
                    for row, result in zip(task.rows, outcome):
                        slot, entry = by_row[row]
                        slots[slot] = result
                        payload = result.to_dict()
                        if jobstore is not None:
                            jobstore.settle_result(entry.job_id, payload)
                        if cache is not None and row in cache_keys:
                            cache.put(cache_keys[row], payload)
    finally:
        if jobstore is not None:
            jobstore.close()

    results = [r for r in slots if r is not None]
    failures.sort(key=lambda f: f.index)

    ctx.count("n_selected", plan.n_selected)
    ctx.count("n_failures", len(failures))
    _count_degradation(ctx, results)
    ctx.gauge("peak_inflight_traces", peak)
    ctx.timings["total_s"] = time.perf_counter() - t0
    ctx.timings.setdefault("preprocess_s", ctx.timings.get("scan_s", 0.0))

    return PipelineResult(
        preprocess=plan.to_result(None),
        results=results,
        n_failures=len(failures),
        timings=dict(ctx.timings),
        metrics=dict(ctx.counters),
    )


def run_pipeline(
    traces: list[Trace],
    config: MosaicConfig = DEFAULT_CONFIG,
    parallel: ParallelConfig | None = None,
    *,
    repair: bool = False,
) -> PipelineResult:
    """Run MOSAIC end to end over an in-memory corpus of traces.

    Thin batch wrapper over the streaming machinery: the corpus is
    wrapped in an :class:`~repro.darshan.source.InMemorySource`, pass ②
    materializes the selected traces (they are already resident), and
    categorization uses the cost-ordered (LPT) batch map.

    ``parallel`` defaults to serial execution (``max_workers=0``), the
    right choice for small corpora and tests; pass
    ``ParallelConfig(max_workers=None)`` to use every core like the
    paper's Dispy deployment.
    """
    source = InMemorySource(traces)
    ctx = PipelineContext(
        config=config,
        parallel=parallel or _default_parallel(),
        repair=repair,
    )
    t0 = time.perf_counter()
    with ctx.stage("preprocess"):
        plan = scan_corpus(source, repair=ctx.repair)
        selected = [load_selected(source, entry) for entry in plan.selected]
    ctx.count("traces_scanned", plan.n_input)
    ctx.count("n_corrupted", plan.n_corrupted)
    ctx.count("n_repaired", plan.n_repaired)
    ctx.count("n_selected", plan.n_selected)

    with ctx.stage("categorize"):
        outcome: MapOutcome[CategorizationResult] = parallel_map(
            functools.partial(categorize_trace, config=ctx.config),
            selected,
            ctx.parallel,
        )
        if ctx.error_policy == "raise":
            outcome.raise_if_failed()
    ctx.count("n_failures", len(outcome.failures))
    _count_degradation(ctx, outcome.successful())
    ctx.timings["total_s"] = time.perf_counter() - t0

    return PipelineResult(
        preprocess=plan.to_result(selected),
        results=outcome.successful(),
        n_failures=len(outcome.failures),
        timings=dict(ctx.timings),
        metrics=dict(ctx.counters),
    )
