"""The full MOSAIC corpus workflow (Fig. 1: ① validity & dedup →
② merging → ③ categorization → ④ output).

The pipeline is *streaming*: :func:`run_pipeline_stream` drives a lazy
:class:`~repro.darshan.source.TraceSource` through two bounded-memory
passes — scan/dedup (pass ①, no trace retained) and categorize (pass ②,
only the selected heaviest traces, loaded with backpressure against the
process pool) — so corpora larger than RAM are categorizable.  The
original batch API, :func:`run_pipeline`, wraps an in-memory source and
materializes the selected traces, preserving its historical contract.

A :class:`PipelineContext` threads configuration, error policy, and
observability (per-stage wall-clock timings plus counters: traces
scanned, bytes read, peak in-flight traces, failures) through the run;
both surface on :class:`PipelineResult`.
"""

from __future__ import annotations

import functools
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from ..darshan.source import InMemorySource, TraceSource
from ..darshan.trace import Trace
from ..parallel.executor import (
    MapOutcome,
    ParallelConfig,
    TaskFailure,
    parallel_imap,
    parallel_map,
)
from .categorizer import categorize_trace
from .preprocess import (
    PreprocessResult,
    SelectionPlan,
    load_selected,
    scan_corpus,
)
from .result import CategorizationResult
from .thresholds import DEFAULT_CONFIG, MosaicConfig

__all__ = [
    "PipelineContext",
    "PipelineResult",
    "run_pipeline",
    "run_pipeline_stream",
]


def _trace_cost(trace: Trace) -> float:
    """LPT cost estimate: record count dominates categorization time."""
    return float(len(trace.records)) + 1e-9 * trace.total_bytes


def _default_parallel() -> ParallelConfig:
    return ParallelConfig(max_workers=0, cost=_trace_cost)


@dataclass(slots=True)
class PipelineContext:
    """Everything a pipeline run carries besides the corpus itself.

    One context per run: configuration in, per-stage observability out.
    ``error_policy`` decides what a per-trace categorization failure
    does — ``"collect"`` (the paper's behaviour: count it, keep going)
    or ``"raise"`` (abort on first failure; debugging).
    """

    config: MosaicConfig = DEFAULT_CONFIG
    parallel: ParallelConfig = field(default_factory=_default_parallel)
    repair: bool = False
    error_policy: str = "collect"
    #: Wall-clock seconds per stage, keyed ``<stage>_s``.
    timings: dict[str, float] = field(default_factory=dict)
    #: Monotonic counters: traces_scanned, bytes_read, n_unreadable,
    #: peak_inflight_traces, dedup_state_size, failures, ...
    counters: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.error_policy not in ("collect", "raise"):
            raise ValueError(
                f"error_policy must be 'collect' or 'raise', "
                f"got {self.error_policy!r}"
            )

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time a pipeline stage; accumulates into :attr:`timings`."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            key = f"{name}_s"
            self.timings[key] = self.timings.get(key, 0.0) + (
                time.perf_counter() - t0
            )

    def count(self, name: str, value: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: int) -> None:
        """Record a high-water mark."""
        if value > self.counters.get(name, 0):
            self.counters[name] = value


@dataclass(slots=True)
class PipelineResult:
    """Everything produced by one corpus run."""

    preprocess: PreprocessResult
    #: One result per selected (unique-application) trace.
    results: list[CategorizationResult]
    #: Failures captured during categorization (never aborts the corpus).
    n_failures: int
    #: Wall-clock seconds spent per stage.
    timings: dict[str, float] = field(default_factory=dict)
    #: Per-stage counters from the run's :class:`PipelineContext`.
    metrics: dict[str, int] = field(default_factory=dict)

    def run_weights(self) -> list[int]:
        """Valid-run count of each result's application, aligned with
        :attr:`results` — the all-runs weighting of the paper's tables."""
        per_app = self.preprocess.runs_per_app
        return [per_app.get(r.app_key, 1) for r in self.results]

    @property
    def n_categorized(self) -> int:
        return len(self.results)


def _scan_stage(source: TraceSource, ctx: PipelineContext) -> SelectionPlan:
    """Pass ① plus its bookkeeping."""
    bytes_before = source.bytes_read
    with ctx.stage("scan"):
        plan = scan_corpus(source, repair=ctx.repair)
    ctx.count("traces_scanned", plan.n_input)
    ctx.count("n_corrupted", plan.n_corrupted)
    ctx.count("n_unreadable", plan.n_unreadable)
    ctx.count("n_repaired", plan.n_repaired)
    ctx.count("scan_bytes_read", source.bytes_read - bytes_before)
    # the scan's only retained state: one small ref per application
    ctx.gauge("dedup_state_size", plan.n_selected)
    return plan


def _collect(
    n: int,
    stream: Iterator[tuple[int, CategorizationResult | TaskFailure]],
    ctx: PipelineContext,
) -> tuple[list[CategorizationResult], list[TaskFailure]]:
    """Drain an indexed result stream back into input order."""
    slots: list[CategorizationResult | TaskFailure | None] = [None] * n
    failures: list[TaskFailure] = []
    for index, outcome in stream:
        if isinstance(outcome, TaskFailure):
            if ctx.error_policy == "raise":
                raise RuntimeError(f"categorization failed: {outcome}")
            failures.append(outcome)
        slots[index] = outcome
    results = [r for r in slots if isinstance(r, CategorizationResult)]
    failures.sort(key=lambda f: f.index)
    return results, failures


def run_pipeline_stream(
    source: TraceSource,
    config: MosaicConfig = DEFAULT_CONFIG,
    parallel: ParallelConfig | None = None,
    *,
    repair: bool = False,
    context: PipelineContext | None = None,
) -> PipelineResult:
    """Run MOSAIC end to end over a lazy trace source, out of core.

    Memory model: pass ① holds one trace at a time plus per-application
    dedup refs; pass ② holds at most
    :meth:`~repro.parallel.executor.ParallelConfig.resolved_pending`
    selected traces in flight (1 when serial).  The full corpus is never
    resident, so corpus size is bounded by disk, not RAM.

    ``context`` may be passed to override error policy or to share one
    metrics sink across runs; otherwise one is built from the arguments.
    """
    ctx = context or PipelineContext(
        config=config,
        parallel=parallel or _default_parallel(),
        repair=repair,
    )
    t0 = time.perf_counter()
    plan = _scan_stage(source, ctx)

    bytes_before = source.bytes_read
    with ctx.stage("categorize"):
        inflight = 0
        peak = 0

        def load_stream() -> Iterator[Trace]:
            nonlocal inflight, peak
            for entry in plan.selected:
                inflight += 1
                peak = max(peak, inflight)
                yield load_selected(source, entry)

        fn = functools.partial(categorize_trace, config=ctx.config)
        stream = parallel_imap(fn, load_stream(), ctx.parallel)

        def counted() -> Iterator[tuple[int, CategorizationResult | TaskFailure]]:
            nonlocal inflight
            for pair in stream:
                inflight -= 1
                yield pair

        results, failures = _collect(len(plan.selected), counted(), ctx)

    ctx.count("n_selected", plan.n_selected)
    ctx.count("n_failures", len(failures))
    ctx.count("categorize_bytes_read", source.bytes_read - bytes_before)
    ctx.gauge("peak_inflight_traces", peak)
    ctx.timings["total_s"] = time.perf_counter() - t0
    # historical stage names, kept for dashboards and the benchmarks
    ctx.timings.setdefault("preprocess_s", ctx.timings.get("scan_s", 0.0))

    return PipelineResult(
        preprocess=plan.to_result(None),
        results=results,
        n_failures=len(failures),
        timings=dict(ctx.timings),
        metrics=dict(ctx.counters),
    )


def run_pipeline(
    traces: list[Trace],
    config: MosaicConfig = DEFAULT_CONFIG,
    parallel: ParallelConfig | None = None,
    *,
    repair: bool = False,
) -> PipelineResult:
    """Run MOSAIC end to end over an in-memory corpus of traces.

    Thin batch wrapper over the streaming machinery: the corpus is
    wrapped in an :class:`~repro.darshan.source.InMemorySource`, pass ②
    materializes the selected traces (they are already resident), and
    categorization uses the cost-ordered (LPT) batch map.

    ``parallel`` defaults to serial execution (``max_workers=0``), the
    right choice for small corpora and tests; pass
    ``ParallelConfig(max_workers=None)`` to use every core like the
    paper's Dispy deployment.
    """
    source = InMemorySource(traces)
    ctx = PipelineContext(
        config=config,
        parallel=parallel or _default_parallel(),
        repair=repair,
    )
    t0 = time.perf_counter()
    with ctx.stage("preprocess"):
        plan = scan_corpus(source, repair=ctx.repair)
        selected = [load_selected(source, entry) for entry in plan.selected]
    ctx.count("traces_scanned", plan.n_input)
    ctx.count("n_corrupted", plan.n_corrupted)
    ctx.count("n_repaired", plan.n_repaired)
    ctx.count("n_selected", plan.n_selected)

    with ctx.stage("categorize"):
        outcome: MapOutcome[CategorizationResult] = parallel_map(
            functools.partial(categorize_trace, config=ctx.config),
            selected,
            ctx.parallel,
        )
        if ctx.error_policy == "raise":
            outcome.raise_if_failed()
    ctx.count("n_failures", len(outcome.failures))
    ctx.timings["total_s"] = time.perf_counter() - t0

    return PipelineResult(
        preprocess=plan.to_result(selected),
        results=outcome.successful(),
        n_failures=len(outcome.failures),
        timings=dict(ctx.timings),
        metrics=dict(ctx.counters),
    )
