"""The full MOSAIC corpus workflow (Fig. 1: ① validity & dedup →
② merging → ③ categorization → ④ output).

``run_pipeline`` orchestrates: pre-process the corpus, categorize every
selected trace (parallel, fault-isolated), and pair each result with the
number of valid runs of its application so the analysis layer can produce
both views the paper reports — *single run* (behaviour of applications)
and *all runs* (load on the parallel file system).
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass, field

from ..darshan.trace import Trace
from ..parallel.executor import MapOutcome, ParallelConfig, parallel_map
from .categorizer import categorize_trace
from .preprocess import PreprocessResult, preprocess_corpus
from .result import CategorizationResult
from .thresholds import DEFAULT_CONFIG, MosaicConfig

__all__ = ["PipelineResult", "run_pipeline"]


@dataclass(slots=True)
class PipelineResult:
    """Everything produced by one corpus run."""

    preprocess: PreprocessResult
    #: One result per selected (unique-application) trace.
    results: list[CategorizationResult]
    #: Failures captured during categorization (never aborts the corpus).
    n_failures: int
    #: Wall-clock seconds spent per stage.
    timings: dict[str, float] = field(default_factory=dict)

    def run_weights(self) -> list[int]:
        """Valid-run count of each result's application, aligned with
        :attr:`results` — the all-runs weighting of the paper's tables."""
        per_app = self.preprocess.runs_per_app
        return [per_app.get(r.app_key, 1) for r in self.results]

    @property
    def n_categorized(self) -> int:
        return len(self.results)


def _trace_cost(trace: Trace) -> float:
    """LPT cost estimate: record count dominates categorization time."""
    return float(len(trace.records)) + 1e-9 * trace.total_bytes


def run_pipeline(
    traces: list[Trace],
    config: MosaicConfig = DEFAULT_CONFIG,
    parallel: ParallelConfig | None = None,
) -> PipelineResult:
    """Run MOSAIC end to end over a corpus of traces.

    ``parallel`` defaults to serial execution (``max_workers=0``), the
    right choice for small corpora and tests; pass
    ``ParallelConfig(max_workers=None)`` to use every core like the
    paper's Dispy deployment.
    """
    t0 = time.perf_counter()
    pre = preprocess_corpus(traces)
    t1 = time.perf_counter()

    par = parallel or ParallelConfig(max_workers=0, cost=_trace_cost)
    outcome: MapOutcome[CategorizationResult] = parallel_map(
        functools.partial(categorize_trace, config=config),
        pre.selected,
        par,
    )
    t2 = time.perf_counter()

    results = outcome.successful()
    return PipelineResult(
        preprocess=pre,
        results=results,
        n_failures=len(outcome.failures),
        timings={
            "preprocess_s": t1 - t0,
            "categorize_s": t2 - t1,
            "total_s": t2 - t0,
        },
    )
