"""Categorization results and their JSON form (workflow step ④).

"Once MOSAIC has processed a trace, it saves the assigned categories and
the calculated values (period for instance) in a JSON file."  One trace →
one :class:`CategorizationResult`; a corpus is stored as JSON-lines.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from ..darshan.trace import Direction
from ..io import atomic_write
from .categories import Category, parse_categories
from .governor import DegradationLevel
from .metadata import MetadataDetection
from .periodicity import PeriodicGroup, PeriodicityDetection
from .temporality import TemporalityDetection

__all__ = [
    "CategorizationResult",
    "save_results_jsonl",
    "load_results_jsonl",
]


@dataclass(slots=True, frozen=True)
class CategorizationResult:
    """Full MOSAIC output for one trace."""

    job_id: int
    uid: int
    exe: str
    nprocs: int
    run_time: float
    categories: frozenset[Category]
    #: direction → temporality chunk byte sums (None if insignificant).
    chunk_volumes: dict[Direction, list[float] | None] = field(default_factory=dict)
    #: direction → weak-evidence flag of the temporality rule.
    weak_temporality: dict[Direction, bool] = field(default_factory=dict)
    #: direction → detected periodic groups.
    periodic_groups: dict[Direction, list[PeriodicGroup]] = field(default_factory=dict)
    #: metadata measurements.
    metadata_total: int = 0
    metadata_peak_rate: float = 0.0
    metadata_mean_rate: float = 0.0
    metadata_n_spikes: int = 0
    #: Fidelity rung this result was produced at (degradation ladder;
    #: see :mod:`repro.core.governor`).  FULL unless a resource budget
    #: forced the governor to shed work.
    degradation: DegradationLevel = DegradationLevel.FULL
    #: Human-readable reasons for every budget escalation, in order.
    budget_violations: tuple[str, ...] = ()

    # ------------------------------------------------------------------
    @property
    def app_key(self) -> tuple[int, str]:
        return (self.uid, self.exe)

    def has(self, category: Category) -> bool:
        return category in self.categories

    @classmethod
    def build(
        cls,
        *,
        job_id: int,
        uid: int,
        exe: str,
        nprocs: int,
        run_time: float,
        temporality: Iterable[TemporalityDetection],
        periodicity: Iterable[PeriodicityDetection],
        metadata: MetadataDetection,
        config: Any,
        degradation: DegradationLevel = DegradationLevel.FULL,
        budget_violations: Iterable[str] = (),
    ) -> "CategorizationResult":
        """Assemble a result from the three axis detections."""
        categories: set[Category] = set(metadata.categories)
        chunk_volumes: dict[Direction, list[float] | None] = {}
        weak: dict[Direction, bool] = {}
        for det in temporality:
            categories.add(det.category)
            chunk_volumes[det.direction] = (
                det.profile.volumes.tolist() if det.profile is not None else None
            )
            weak[det.direction] = det.weak_evidence
        groups: dict[Direction, list[PeriodicGroup]] = {}
        for det in periodicity:
            categories |= det.categories(config)
            groups[det.direction] = list(det.groups)
        return cls(
            job_id=job_id,
            uid=uid,
            exe=exe,
            nprocs=nprocs,
            run_time=run_time,
            categories=frozenset(categories),
            chunk_volumes=chunk_volumes,
            weak_temporality=weak,
            periodic_groups=groups,
            metadata_total=metadata.total_requests,
            metadata_peak_rate=metadata.peak_rate,
            metadata_mean_rate=metadata.mean_rate,
            metadata_n_spikes=metadata.n_spikes,
            degradation=degradation,
            budget_violations=tuple(budget_violations),
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "job_id": self.job_id,
            "uid": self.uid,
            "exe": self.exe,
            "nprocs": self.nprocs,
            "run_time": self.run_time,
            "categories": sorted(c.value for c in self.categories),
            "chunk_volumes": {k: v for k, v in self.chunk_volumes.items()},
            "weak_temporality": dict(self.weak_temporality),
            "periodic_groups": {
                direction: [
                    {
                        "period": g.period,
                        "mean_volume": g.mean_volume,
                        "n_occurrences": g.n_occurrences,
                        "busy_fraction": g.busy_fraction,
                    }
                    for g in groups
                ]
                for direction, groups in self.periodic_groups.items()
            },
            "metadata": {
                "total_requests": self.metadata_total,
                "peak_rate": self.metadata_peak_rate,
                "mean_rate": self.metadata_mean_rate,
                "n_spikes": self.metadata_n_spikes,
            },
            "degradation": self.degradation.value,
            "budget_violations": list(self.budget_violations),
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "CategorizationResult":
        meta = d.get("metadata", {})
        return cls(
            job_id=int(d["job_id"]),
            uid=int(d["uid"]),
            exe=str(d["exe"]),
            nprocs=int(d["nprocs"]),
            run_time=float(d["run_time"]),
            categories=parse_categories(d.get("categories", [])),
            chunk_volumes={
                k: (list(map(float, v)) if v is not None else None)
                for k, v in d.get("chunk_volumes", {}).items()
            },
            weak_temporality={
                k: bool(v) for k, v in d.get("weak_temporality", {}).items()
            },
            periodic_groups={
                direction: [
                    PeriodicGroup(
                        direction=direction,  # type: ignore[arg-type]
                        period=float(g["period"]),
                        mean_volume=float(g["mean_volume"]),
                        n_occurrences=int(g["n_occurrences"]),
                        busy_fraction=float(g["busy_fraction"]),
                    )
                    for g in groups
                ]
                for direction, groups in d.get("periodic_groups", {}).items()
            },
            metadata_total=int(meta.get("total_requests", 0)),
            metadata_peak_rate=float(meta.get("peak_rate", 0.0)),
            metadata_mean_rate=float(meta.get("mean_rate", 0.0)),
            metadata_n_spikes=int(meta.get("n_spikes", 0)),
            degradation=DegradationLevel(d.get("degradation", "full")),
            budget_violations=tuple(
                str(v) for v in d.get("budget_violations", [])
            ),
        )


def save_results_jsonl(
    results: Iterable[CategorizationResult], path: str | os.PathLike[str]
) -> int:
    """Atomically write results as JSON-lines; returns the number
    written.  A crash mid-save leaves the previous file (or nothing),
    never a truncated result set."""
    n = 0
    with atomic_write(path, "w") as fh:
        for r in results:
            fh.write(json.dumps(r.to_dict()) + "\n")
            n += 1
    return n


def load_results_jsonl(path: str | os.PathLike[str]) -> Iterator[CategorizationResult]:
    """Stream results back from a JSON-lines file."""
    with open(os.fspath(path), "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                yield CategorizationResult.from_dict(json.loads(line))
