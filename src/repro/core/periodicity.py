"""Periodicity detection (paper §III-B3a, workflow step ③a).

The merged operation stream is segmented (segment = operation start →
next operation start), each segment yields (duration, volume) features,
and a Mean Shift pass groups segments that "share comparable duration and
data size".  Every sufficiently-populated group is one periodic
operation; several groups per trace model real applications that both
checkpoint and read inputs at independent intervals.

Feature space
-------------
Clustering happens in ``(log10 duration, log10 volume)``.  The paper's
comparability thresholds were set empirically; a log-space flat kernel of
bandwidth *b* declares two segments comparable when both their durations
and volumes agree within a factor ``10**b`` (≈1.4× at the default 0.15),
which matches the intuition "same order of magnitude, same operation".

Group-size threshold
--------------------
The paper accepts any group "with a size strictly greater than 1".  With
Blue Waters-grade data (the final segment is closed by the end of the
execution) pairs of unrelated operations occasionally land in one mode;
our calibration — the analogue of the paper's threshold refinement on one
month of traces — uses 3 occurrences by default.
``MosaicConfig(min_group_size=2)`` restores the strict paper rule.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.meanshift import mean_shift
from ..darshan.trace import Direction, OperationArray
from ..segment.op_segments import SegmentSet, segment_operations
from .categories import Category
from .thresholds import MosaicConfig

__all__ = ["PeriodicGroup", "PeriodicityDetection", "detect_periodicity", "period_magnitude"]

_DIRECTION_LABEL: dict[Direction, Category] = {
    "read": Category.PERIODIC_READ,
    "write": Category.PERIODIC_WRITE,
}


def period_magnitude(period: float, config: MosaicConfig) -> Category:
    """Order-of-magnitude label of a period (paper Table I)."""
    if period <= config.period_second_max:
        return Category.PERIODIC_SECOND
    if period <= config.period_minute_max:
        return Category.PERIODIC_MINUTE
    if period <= config.period_hour_max:
        return Category.PERIODIC_HOUR
    return Category.PERIODIC_DAY_OR_MORE


@dataclass(slots=True, frozen=True)
class PeriodicGroup:
    """One detected periodic operation."""

    direction: Direction
    #: Mean segment duration of the group — the period, in seconds.
    period: float
    #: Mean bytes moved per occurrence.
    mean_volume: float
    #: Number of occurrences grouped together.
    n_occurrences: int
    #: Mean share of the period during which the operation is active.
    busy_fraction: float

    def magnitude(self, config: MosaicConfig) -> Category:
        return period_magnitude(self.period, config)

    def busy_label(self, config: MosaicConfig) -> Category:
        if self.busy_fraction < config.busy_time_threshold:
            return Category.PERIODIC_LOW_BUSY_TIME
        return Category.PERIODIC_HIGH_BUSY_TIME


@dataclass(slots=True, frozen=True)
class PeriodicityDetection:
    """Periodicity verdict for one direction of one trace."""

    direction: Direction
    groups: tuple[PeriodicGroup, ...]
    n_segments: int

    @property
    def periodic(self) -> bool:
        return bool(self.groups)

    @property
    def dominant(self) -> PeriodicGroup | None:
        """Group with most occurrences (ties: larger volume)."""
        if not self.groups:
            return None
        return max(self.groups, key=lambda g: (g.n_occurrences, g.mean_volume))

    def categories(self, config: MosaicConfig) -> frozenset[Category]:
        """Category labels contributed by this detection."""
        if not self.groups:
            return frozenset()
        cats: set[Category] = {Category.PERIODIC, _DIRECTION_LABEL[self.direction]}
        for g in self.groups:
            cats.add(g.magnitude(config))
            cats.add(g.busy_label(config))
        return frozenset(cats)


def _log_features(segments: SegmentSet) -> np.ndarray:
    """(n, 2) log10 feature matrix, clipping degenerate values."""
    dur = np.maximum(segments.durations, 1e-6)
    vol = np.maximum(segments.volumes, 1.0)
    return np.column_stack([np.log10(dur), np.log10(vol)])


def detect_periodicity(
    ops: OperationArray,
    run_time: float,
    direction: Direction,
    config: MosaicConfig,
) -> PeriodicityDetection:
    """Detect periodic operations in one direction's merged stream.

    Dispatches on ``config.periodicity_method``: the paper's
    segmentation + Mean Shift algorithm (default), one of the
    frequency-technique baselines, or the hybrid planned as §V future
    work (Mean Shift first, DFT fallback when segmentation finds
    nothing — e.g. periodicity hidden inside too few or too-coarse
    operations).
    """
    method = config.periodicity_method
    if method == "meanshift":
        return _detect_meanshift(ops, run_time, direction, config)
    if method in ("dft", "autocorr"):
        return _detect_signal(ops, run_time, direction, config, method)
    # hybrid
    det = _detect_meanshift(ops, run_time, direction, config)
    if det.periodic:
        return det
    return _detect_signal(ops, run_time, direction, config, "dft")


def _detect_meanshift(
    ops: OperationArray,
    run_time: float,
    direction: Direction,
    config: MosaicConfig,
) -> PeriodicityDetection:
    """The paper's algorithm: operation segmentation + Mean Shift."""
    segments = segment_operations(ops, run_time, backend=config.kernel_backend)
    n = len(segments)
    if n < config.min_group_size:
        return PeriodicityDetection(direction=direction, groups=(), n_segments=n)

    result = mean_shift(
        _log_features(segments),
        bandwidth=config.meanshift_bandwidth,
        kernel="flat",
        backend=config.kernel_backend,
    )

    rates = segments.activity_rates
    groups: list[PeriodicGroup] = []
    for k in range(result.n_clusters):
        members = result.members(k)
        if len(members) < config.min_group_size:
            continue
        period = float(segments.durations[members].mean())
        if period < config.min_period:
            continue
        groups.append(
            PeriodicGroup(
                direction=direction,
                period=period,
                mean_volume=float(segments.volumes[members].mean()),
                n_occurrences=int(len(members)),
                busy_fraction=float(rates[members].mean()),
            )
        )
    groups.sort(key=lambda g: (-g.n_occurrences, g.period))
    return PeriodicityDetection(
        direction=direction, groups=tuple(groups), n_segments=n
    )


def _detect_signal(
    ops: OperationArray,
    run_time: float,
    direction: Direction,
    config: MosaicConfig,
    method: str,
) -> PeriodicityDetection:
    """Frequency-technique detection (paper ref. [24], §V future work).

    Bins the merged operations into an activity signal and reports the
    dominant period as a single group.  Occurrence count and busy
    fraction are derived from the operations that fall on the detected
    cadence.
    """
    from ..signalproc.activity import build_activity_signal
    from ..signalproc.autocorr import detect_periodicity_autocorr
    from ..signalproc.dft import detect_periodicity_dft

    n_ops = len(ops)
    if n_ops < config.signal_min_ops or run_time <= 0:
        return PeriodicityDetection(direction=direction, groups=(), n_segments=n_ops)

    signal = build_activity_signal(
        ops,
        run_time,
        n_bins=min(4096, max(256, n_ops * 16)),
        backend=config.kernel_backend,
    )
    if method == "dft":
        det = detect_periodicity_dft(signal, backend=config.kernel_backend)
        periodic, period = det.periodic, det.period
    else:
        det_ac = detect_periodicity_autocorr(signal, backend=config.kernel_backend)
        periodic, period = det_ac.periodic, det_ac.period

    if not periodic or not period or period < config.min_period:
        return PeriodicityDetection(direction=direction, groups=(), n_segments=n_ops)

    n_occurrences = max(int(run_time // period), 1)
    group = PeriodicGroup(
        direction=direction,
        period=float(period),
        mean_volume=float(ops.total_volume / max(n_occurrences, 1)),
        n_occurrences=n_occurrences,
        busy_fraction=float(min(ops.busy_time / run_time, 1.0)),
    )
    return PeriodicityDetection(
        direction=direction, groups=(group,), n_segments=n_ops
    )
