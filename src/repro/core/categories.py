"""The MOSAIC category taxonomy (paper Table I).

Categories are **non-exclusive**: one trace collects a set of labels
drawn from three axes — temporality (per direction), periodicity, and
metadata impact.  The ``insignificant`` labels exclude non-I/O-intensive
directions from further characterization.

Naming follows the paper.  One documented refinement: the paper's text
discusses periodic *reads* and periodic *writes* separately (Table II is
writes only), so this implementation emits direction-qualified
``periodic_read`` / ``periodic_write`` in addition to the umbrella
``periodic`` label from Table I.
"""

from __future__ import annotations

from enum import Enum
from typing import Iterable

__all__ = [
    "Axis",
    "Category",
    "TEMPORALITY_READ",
    "TEMPORALITY_WRITE",
    "PERIODICITY",
    "METADATA",
    "axis_of",
    "parse_categories",
]


class Axis(str, Enum):
    """The three characterization axes of Table I."""

    TEMPORALITY = "temporality"
    PERIODICITY = "periodicity"
    METADATA = "metadata"


class Category(str, Enum):
    """All MOSAIC category labels."""

    # -- temporality, read ------------------------------------------------
    READ_ON_START = "read_on_start"
    READ_ON_END = "read_on_end"
    READ_AFTER_START = "read_after_start"
    READ_BEFORE_END = "read_before_end"
    READ_AFTER_START_BEFORE_END = "read_after_start_before_end"
    READ_STEADY = "read_steady"
    READ_INSIGNIFICANT = "read_insignificant"

    # -- temporality, write -----------------------------------------------
    WRITE_ON_START = "write_on_start"
    WRITE_ON_END = "write_on_end"
    WRITE_AFTER_START = "write_after_start"
    WRITE_BEFORE_END = "write_before_end"
    WRITE_AFTER_START_BEFORE_END = "write_after_start_before_end"
    WRITE_STEADY = "write_steady"
    WRITE_INSIGNIFICANT = "write_insignificant"

    # -- periodicity --------------------------------------------------------
    PERIODIC = "periodic"
    PERIODIC_READ = "periodic_read"
    PERIODIC_WRITE = "periodic_write"
    PERIODIC_SECOND = "periodic_second"
    PERIODIC_MINUTE = "periodic_minute"
    PERIODIC_HOUR = "periodic_hour"
    PERIODIC_DAY_OR_MORE = "periodic_day_or_more"
    PERIODIC_LOW_BUSY_TIME = "periodic_low_busy_time"
    PERIODIC_HIGH_BUSY_TIME = "periodic_high_busy_time"

    # -- metadata impact ----------------------------------------------------
    METADATA_HIGH_SPIKE = "metadata_high_spike"
    METADATA_MULTIPLE_SPIKES = "metadata_multiple_spikes"
    METADATA_HIGH_DENSITY = "metadata_high_density"
    METADATA_INSIGNIFICANT_LOAD = "metadata_insignificant_load"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


TEMPORALITY_READ: frozenset[Category] = frozenset(
    {
        Category.READ_ON_START,
        Category.READ_ON_END,
        Category.READ_AFTER_START,
        Category.READ_BEFORE_END,
        Category.READ_AFTER_START_BEFORE_END,
        Category.READ_STEADY,
        Category.READ_INSIGNIFICANT,
    }
)

TEMPORALITY_WRITE: frozenset[Category] = frozenset(
    {
        Category.WRITE_ON_START,
        Category.WRITE_ON_END,
        Category.WRITE_AFTER_START,
        Category.WRITE_BEFORE_END,
        Category.WRITE_AFTER_START_BEFORE_END,
        Category.WRITE_STEADY,
        Category.WRITE_INSIGNIFICANT,
    }
)

PERIODICITY: frozenset[Category] = frozenset(
    {
        Category.PERIODIC,
        Category.PERIODIC_READ,
        Category.PERIODIC_WRITE,
        Category.PERIODIC_SECOND,
        Category.PERIODIC_MINUTE,
        Category.PERIODIC_HOUR,
        Category.PERIODIC_DAY_OR_MORE,
        Category.PERIODIC_LOW_BUSY_TIME,
        Category.PERIODIC_HIGH_BUSY_TIME,
    }
)

METADATA: frozenset[Category] = frozenset(
    {
        Category.METADATA_HIGH_SPIKE,
        Category.METADATA_MULTIPLE_SPIKES,
        Category.METADATA_HIGH_DENSITY,
        Category.METADATA_INSIGNIFICANT_LOAD,
    }
)


def axis_of(category: Category) -> Axis:
    """Axis (Table I row) a category belongs to."""
    if category in PERIODICITY:
        return Axis.PERIODICITY
    if category in METADATA:
        return Axis.METADATA
    return Axis.TEMPORALITY


def parse_categories(names: Iterable[str]) -> frozenset[Category]:
    """Parse category names (e.g. from a result JSON) into a set.

    Raises ``ValueError`` on unknown names — silent typos in saved result
    files would corrupt every downstream statistic.
    """
    return frozenset(Category(name) for name in names)
