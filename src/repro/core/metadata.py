"""Metadata impact characterization (paper §III-B3c, workflow step ③c).

MOSAIC reconstructs a per-second metadata request rate from the OPEN,
CLOSE and SEEK counters of each record (SEEKs assumed co-located with
OPENs since Blue Waters-era Darshan does not timestamp them) and assigns:

* ``metadata_insignificant_load`` — fewer metadata ops than ranks;
* ``metadata_high_spike`` — more than 250 requests within one second at
  least once (the threshold derives from mdworkbench measurements on
  Mistral, whose Lustre setup resembles Blue Waters and saturates around
  3000 req/s);
* ``metadata_multiple_spikes`` — at least 5 one-second bins with ≥ 50
  requests;
* ``metadata_high_density`` — at least 5 spikes *and* an average of ≥ 50
  requests per second throughout the execution.

The labels are non-exclusive (a trace can be high-spike *and*
high-density).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..darshan.trace import Trace
from ..signalproc.activity import bin_events
from .categories import Category
from .thresholds import MosaicConfig

__all__ = [
    "MetadataDetection",
    "classify_metadata",
    "classify_metadata_events",
    "detect_from_rate",
    "insignificant_metadata",
]


@dataclass(slots=True, frozen=True)
class MetadataDetection:
    """Metadata verdict of one trace."""

    categories: frozenset[Category]
    total_requests: int
    peak_rate: float
    mean_rate: float
    n_spikes: int

    @property
    def significant(self) -> bool:
        return Category.METADATA_INSIGNIFICANT_LOAD not in self.categories


def insignificant_metadata(total: int) -> MetadataDetection:
    """The below-threshold verdict (fewer metadata ops than ranks)."""
    return MetadataDetection(
        categories=frozenset({Category.METADATA_INSIGNIFICANT_LOAD}),
        total_requests=total,
        peak_rate=0.0,
        mean_rate=0.0,
        n_spikes=0,
    )


def detect_from_rate(
    total: int, rate: np.ndarray, config: MosaicConfig
) -> MetadataDetection:
    """Apply the spike/density rules to a per-second request rate.

    Shared by the per-trace path and the store-backed batch path (which
    bins many traces in one segmented dispatch and hands each trace's
    rate slice here), so the two stay byte-identical.
    """
    peak = float(rate.max()) if len(rate) else 0.0
    mean = float(rate.mean()) if len(rate) else 0.0
    n_spikes = int(np.count_nonzero(rate >= config.spike_rate))

    cats: set[Category] = set()
    if peak > config.high_spike_rate:
        cats.add(Category.METADATA_HIGH_SPIKE)
    if n_spikes >= config.min_spikes:
        cats.add(Category.METADATA_MULTIPLE_SPIKES)
        if mean >= config.density_rate:
            cats.add(Category.METADATA_HIGH_DENSITY)

    return MetadataDetection(
        categories=frozenset(cats),
        total_requests=total,
        peak_rate=peak,
        mean_rate=mean,
        n_spikes=n_spikes,
    )


def classify_metadata_events(
    total: int,
    nprocs: int,
    times: np.ndarray,
    counts: np.ndarray,
    run_time: float,
    config: MosaicConfig,
) -> MetadataDetection:
    """Classify metadata impact from a pre-extracted event stream."""
    threshold = config.metadata_min_ops_per_rank * max(nprocs, 1)
    if total < threshold:
        return insignificant_metadata(total)
    run_time = max(run_time, config.metadata_bin_seconds)
    rate = bin_events(times, counts, run_time, config.metadata_bin_seconds)
    # Normalize to requests per second regardless of bin width.
    rate = rate / config.metadata_bin_seconds
    return detect_from_rate(total, rate, config)


def classify_metadata(trace: Trace, config: MosaicConfig) -> MetadataDetection:
    """Classify the metadata-server impact of ``trace``."""
    total = trace.total_metadata_ops
    threshold = config.metadata_min_ops_per_rank * max(trace.meta.nprocs, 1)
    if total < threshold:
        return insignificant_metadata(total)
    times, counts = trace.metadata_events()
    return classify_metadata_events(
        total, trace.meta.nprocs, times, counts, trace.meta.run_time, config
    )
