"""MOSAIC core: the category taxonomy, the per-trace categorization
algorithm (merging → segmentation → Mean Shift / chunk / spike analysis),
and the corpus pipeline."""

from .categories import (
    METADATA,
    PERIODICITY,
    TEMPORALITY_READ,
    TEMPORALITY_WRITE,
    Axis,
    Category,
    axis_of,
    parse_categories,
)
from .governor import (
    DegradationLevel,
    Governor,
    ResourceBudget,
    estimate_trace_cost,
    subsample_ops,
)
from .thresholds import DEFAULT_CONFIG, MosaicConfig
from .temporality import TemporalityDetection, classify_temporality
from .periodicity import (
    PeriodicGroup,
    PeriodicityDetection,
    detect_periodicity,
    period_magnitude,
)
from .metadata import MetadataDetection, classify_metadata
from .preprocess import (
    PreprocessResult,
    SelectedRef,
    SelectionPlan,
    load_selected,
    preprocess_corpus,
    scan_corpus,
)
from .result import CategorizationResult, load_results_jsonl, save_results_jsonl
from .categorizer import categorize_trace
from .pipeline import (
    PipelineContext,
    PipelineResult,
    run_pipeline,
    run_pipeline_store,
    run_pipeline_stream,
)
from .stream import AppEntry, ApplicationCatalog

__all__ = [
    "METADATA",
    "PERIODICITY",
    "TEMPORALITY_READ",
    "TEMPORALITY_WRITE",
    "Axis",
    "Category",
    "axis_of",
    "parse_categories",
    "DEFAULT_CONFIG",
    "MosaicConfig",
    "DegradationLevel",
    "Governor",
    "ResourceBudget",
    "estimate_trace_cost",
    "subsample_ops",
    "TemporalityDetection",
    "classify_temporality",
    "PeriodicGroup",
    "PeriodicityDetection",
    "detect_periodicity",
    "period_magnitude",
    "MetadataDetection",
    "classify_metadata",
    "PreprocessResult",
    "SelectedRef",
    "SelectionPlan",
    "preprocess_corpus",
    "scan_corpus",
    "load_selected",
    "CategorizationResult",
    "load_results_jsonl",
    "save_results_jsonl",
    "categorize_trace",
    "PipelineContext",
    "PipelineResult",
    "run_pipeline",
    "run_pipeline_store",
    "run_pipeline_stream",
    "AppEntry",
    "ApplicationCatalog",
]
