"""Temporality characterization (paper §III-B3b, workflow step ③b).

The merged operation stream of one direction is split into four equal
temporal chunks; the byte sums ``c1..c4`` decide the label:

1. direction moved fewer than 100 MB → ``insignificant``;
2. coefficient of variation of the chunk sums < 25% → ``steady``;
3. a chunk holding more than twice the bytes of every other chunk is
   dominant: c1 → ``on_start``, c2 → ``after_start``, c3 →
   ``before_end``, c4 → ``on_end``;
4. the two middle chunks jointly holding more than twice the bytes of
   the two outer ones → ``after_start_before_end``;
5. otherwise the largest chunk wins with *weak* evidence.  This fallback
   is the error mode the paper's accuracy study identifies ("sub-optimal
   detection of temporality in some cases where an operation is unequally
   spread across multiple chunks") — keeping it is what makes the
   reproduction's accuracy land near the paper's 92% rather than at 100%.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..darshan.trace import Direction, OperationArray
from ..segment.chunks import ChunkProfile, chunk_volumes
from .categories import Category
from .thresholds import MosaicConfig

__all__ = ["TemporalityDetection", "classify_temporality"]

_CHUNK_CATEGORY: dict[Direction, tuple[Category, Category, Category, Category]] = {
    "read": (
        Category.READ_ON_START,
        Category.READ_AFTER_START,
        Category.READ_BEFORE_END,
        Category.READ_ON_END,
    ),
    "write": (
        Category.WRITE_ON_START,
        Category.WRITE_AFTER_START,
        Category.WRITE_BEFORE_END,
        Category.WRITE_ON_END,
    ),
}

_STEADY: dict[Direction, Category] = {
    "read": Category.READ_STEADY,
    "write": Category.WRITE_STEADY,
}
_MIDDLE: dict[Direction, Category] = {
    "read": Category.READ_AFTER_START_BEFORE_END,
    "write": Category.WRITE_AFTER_START_BEFORE_END,
}
_INSIGNIFICANT: dict[Direction, Category] = {
    "read": Category.READ_INSIGNIFICANT,
    "write": Category.WRITE_INSIGNIFICANT,
}


@dataclass(slots=True, frozen=True)
class TemporalityDetection:
    """Temporality verdict for one direction of one trace."""

    direction: Direction
    category: Category
    profile: ChunkProfile | None
    #: True when the label came from the weak-evidence fallback (rule 5);
    #: the accuracy analysis uses this to localize expected errors.
    weak_evidence: bool = False


def classify_temporality(
    ops: OperationArray,
    run_time: float,
    direction: Direction,
    config: MosaicConfig,
) -> TemporalityDetection:
    """Assign the temporality category of one direction.

    ``ops`` must be the merged operation stream.  The chunk rules follow
    the module docstring; with the paper's 4 chunks the dominance rules
    generalize to any ``config.n_chunks >= 4`` by mapping interior chunks
    onto ``after_start`` / ``before_end`` halves.
    """
    total = ops.total_volume
    if total < config.insignificant_bytes:
        return TemporalityDetection(
            direction=direction,
            category=_INSIGNIFICANT[direction],
            profile=None,
        )

    profile = chunk_volumes(ops, run_time, config.n_chunks)
    c = profile.volumes

    # Rule 2: steady.
    if profile.coefficient_of_variation() < config.steady_cv:
        return TemporalityDetection(
            direction=direction, category=_STEADY[direction], profile=profile
        )

    # Rule 3: single dominant chunk.
    factor = config.dominance_factor
    n = len(c)
    for i in range(n):
        others = np.delete(c, i)
        if len(others) and c[i] > factor * others.max():
            category = _position_category(i, n, direction)
            return TemporalityDetection(
                direction=direction, category=category, profile=profile
            )

    # Rule 4: middle half dominates the outer half.
    mid_lo, mid_hi = n // 4, n - n // 4
    middle = float(c[mid_lo:mid_hi].sum())
    outer = float(c[:mid_lo].sum() + c[mid_hi:].sum())
    if middle > factor * outer:
        return TemporalityDetection(
            direction=direction, category=_MIDDLE[direction], profile=profile
        )

    # Rule 5: weak-evidence fallback — largest chunk wins.
    i = int(np.argmax(c))
    return TemporalityDetection(
        direction=direction,
        category=_position_category(i, n, direction),
        profile=profile,
        weak_evidence=True,
    )


def _position_category(i: int, n: int, direction: Direction) -> Category:
    """Map chunk index ``i`` of ``n`` chunks onto a positional category."""
    on_start, after_start, before_end, on_end = _CHUNK_CATEGORY[direction]
    if i == 0:
        return on_start
    if i == n - 1:
        return on_end
    return after_start if i < n / 2 else before_end
