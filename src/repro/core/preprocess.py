"""Corpus pre-processing: validity filtering and per-application
deduplication (paper §III-B1, workflow step ①; evaluated in Fig. 3).

On Blue Waters 2019 this stage evicted 32% of 462,502 traces as corrupted
and reduced the remainder to 8% unique executions — 24,606 traces kept
for categorization.  MOSAIC assumes all executions of an application by a
given user share I/O behaviour (validated in the paper: ≈97% of ≈12,000
LAMMPS runs categorize identically) and therefore analyzes only the
heaviest (most I/O-intensive) trace per (user, executable).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..darshan.trace import Trace
from ..darshan.validate import Violation, validate_trace

__all__ = ["PreprocessResult", "preprocess_corpus"]


@dataclass(slots=True)
class PreprocessResult:
    """Outcome of workflow step ① over a corpus."""

    #: Traces selected for categorization (heaviest per application).
    selected: list[Trace]
    #: Number of valid runs per application key, for all-runs statistics.
    runs_per_app: dict[tuple[int, str], int]
    n_input: int
    n_corrupted: int
    #: Histogram of corruption causes (a trace may count several).
    corruption_histogram: Counter = field(default_factory=Counter)
    #: Traces recovered by repair heuristics (0 unless ``repair=True``).
    n_repaired: int = 0

    @property
    def n_valid(self) -> int:
        return self.n_input - self.n_corrupted

    @property
    def n_selected(self) -> int:
        return len(self.selected)

    @property
    def corrupted_fraction(self) -> float:
        return self.n_corrupted / self.n_input if self.n_input else 0.0

    @property
    def unique_fraction(self) -> float:
        """Share of valid traces that are unique executions — the paper's
        "8% of unique executions in the set of remaining valid traces"."""
        return self.n_selected / self.n_valid if self.n_valid else 0.0

    def funnel(self) -> list[tuple[str, int]]:
        """(stage, count) rows of the Fig. 3 funnel."""
        return [
            ("input_traces", self.n_input),
            ("valid_traces", self.n_valid),
            ("selected_for_categorization", self.n_selected),
        ]


def preprocess_corpus(
    traces: list[Trace], *, repair: bool = False
) -> PreprocessResult:
    """Validate every trace and keep the heaviest run per application.

    The heaviest trace is the one with the largest
    :meth:`~repro.darshan.trace.Trace.io_weight` (bytes moved plus
    metadata operations).  Ties break on job id for determinism.

    ``repair=True`` enables the eviction alternative: corrupted traces
    are first passed through the conservative repair heuristics
    (:mod:`repro.darshan.repair`) and only counted as corrupted when
    repair fails.  The paper evicts outright; the REPAIR experiment
    quantifies the difference.
    """
    from ..darshan.repair import repair_trace

    corruption = Counter()
    n_corrupted = 0
    n_repaired = 0
    heaviest: dict[tuple[int, str], Trace] = {}
    runs_per_app: dict[tuple[int, str], int] = {}

    for trace in traces:
        report = validate_trace(trace)
        if not report.valid and repair:
            outcome = repair_trace(trace)
            if outcome.repaired:
                trace = outcome.trace
                report = validate_trace(trace)
                n_repaired += 1
        if not report.valid:
            n_corrupted += 1
            for violation in report.categories():
                corruption[violation] += 1
            continue
        key = trace.meta.app_key
        runs_per_app[key] = runs_per_app.get(key, 0) + 1
        current = heaviest.get(key)
        if (
            current is None
            or trace.io_weight() > current.io_weight()
            or (
                trace.io_weight() == current.io_weight()
                and trace.meta.job_id < current.meta.job_id
            )
        ):
            heaviest[key] = trace

    selected = sorted(heaviest.values(), key=lambda t: t.meta.job_id)
    return PreprocessResult(
        selected=selected,
        runs_per_app=runs_per_app,
        n_input=len(traces),
        n_corrupted=n_corrupted,
        corruption_histogram=corruption,
        n_repaired=n_repaired,
    )
