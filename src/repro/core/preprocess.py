"""Corpus pre-processing: validity filtering and per-application
deduplication (paper §III-B1, workflow step ①; evaluated in Fig. 3).

On Blue Waters 2019 this stage evicted 32% of 462,502 traces as corrupted
and reduced the remainder to 8% unique executions — 24,606 traces kept
for categorization.  MOSAIC assumes all executions of an application by a
given user share I/O behaviour (validated in the paper: ≈97% of ≈12,000
LAMMPS runs categorize identically) and therefore analyzes only the
heaviest (most I/O-intensive) trace per (user, executable).

At corpus scale this stage is the memory bottleneck if implemented
naively, so it is two-pass and streaming:

* **pass 1** (:func:`scan_corpus`) iterates a lazy
  :class:`~repro.darshan.source.TraceSource`, validating each trace and
  folding it into bounded dedup state — one small
  :class:`SelectedRef` per application, never the traces themselves;
* **pass 2** (:func:`load_selected`, driven by the pipeline) reloads
  only the selected heaviest refs, one at a time.

The batch :func:`preprocess_corpus` API is a thin wrapper running both
passes over an in-memory source.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..darshan.errors import TraceFormatError
from ..darshan.source import InMemorySource, TraceRef, TraceSource
from ..darshan.trace import Trace
from ..darshan.validate import Violation, validate_trace

__all__ = [
    "PreprocessResult",
    "SelectedRef",
    "SelectionPlan",
    "preprocess_corpus",
    "scan_corpus",
    "load_selected",
]


@dataclass(slots=True, frozen=True)
class SelectedRef:
    """Pass-1 selection decision: the heaviest run of one application.

    Carries everything pass 2 needs to reload and trust the trace —
    the source ref, identity, the keep-heaviest weight it won with, and
    whether repair must be re-applied after reloading.
    """

    ref: TraceRef
    job_id: int
    app_key: tuple[int, str]
    io_weight: float
    repaired: bool = False


@dataclass(slots=True)
class SelectionPlan:
    """Bounded-memory outcome of scan pass ① over a lazy source.

    Holds per-application refs and funnel counters only; no ``Trace``
    survives the scan.
    """

    #: Winning refs, one per application, sorted by job id.
    selected: list[SelectedRef]
    #: Number of valid runs per application key, for all-runs statistics.
    runs_per_app: dict[tuple[int, str], int]
    n_input: int
    n_corrupted: int
    corruption_histogram: Counter = field(default_factory=Counter)
    n_repaired: int = 0
    #: Refs whose payload could not even be decoded (counted in
    #: :attr:`n_corrupted` under ``Violation.UNREADABLE``).
    n_unreadable: int = 0

    @property
    def n_valid(self) -> int:
        return self.n_input - self.n_corrupted

    @property
    def n_selected(self) -> int:
        return len(self.selected)

    def to_result(self, selected_traces: list[Trace] | None = None) -> "PreprocessResult":
        """Convert to the reporting-layer :class:`PreprocessResult`.

        Pass the materialized traces for the batch API; leave ``None``
        for the streaming pipeline, where ``selected`` stays empty and
        only the count is carried.
        """
        return PreprocessResult(
            selected=selected_traces if selected_traces is not None else [],
            runs_per_app=self.runs_per_app,
            n_input=self.n_input,
            n_corrupted=self.n_corrupted,
            corruption_histogram=self.corruption_histogram,
            n_repaired=self.n_repaired,
            n_selected_streamed=None if selected_traces is not None else self.n_selected,
        )


@dataclass(slots=True)
class PreprocessResult:
    """Outcome of workflow step ① over a corpus."""

    #: Traces selected for categorization (heaviest per application).
    #: Empty in streaming mode, where materializing them would defeat
    #: the bounded-memory design — :attr:`n_selected` stays correct.
    selected: list[Trace]
    #: Number of valid runs per application key, for all-runs statistics.
    runs_per_app: dict[tuple[int, str], int]
    n_input: int
    n_corrupted: int
    #: Histogram of corruption causes (a trace may count several).
    corruption_histogram: Counter = field(default_factory=Counter)
    #: Traces recovered by repair heuristics (0 unless ``repair=True``).
    n_repaired: int = 0
    #: Selected-trace count when ``selected`` was not materialized.
    n_selected_streamed: int | None = None

    @property
    def n_valid(self) -> int:
        return self.n_input - self.n_corrupted

    @property
    def n_selected(self) -> int:
        if self.n_selected_streamed is not None:
            return self.n_selected_streamed
        return len(self.selected)

    @property
    def corrupted_fraction(self) -> float:
        return self.n_corrupted / self.n_input if self.n_input else 0.0

    @property
    def unique_fraction(self) -> float:
        """Share of valid traces that are unique executions — the paper's
        "8% of unique executions in the set of remaining valid traces"."""
        return self.n_selected / self.n_valid if self.n_valid else 0.0

    def funnel(self) -> list[tuple[str, int]]:
        """(stage, count) rows of the Fig. 3 funnel."""
        return [
            ("input_traces", self.n_input),
            ("valid_traces", self.n_valid),
            ("selected_for_categorization", self.n_selected),
        ]


def scan_corpus(source: TraceSource, *, repair: bool = False) -> SelectionPlan:
    """Pass ①: validate every trace and pick the heaviest run per app.

    Streams the source one trace at a time; state is bounded by the
    number of *applications* (one :class:`SelectedRef` each), not the
    number of traces.  The heaviest trace is the one with the largest
    :meth:`~repro.darshan.trace.Trace.io_weight` (bytes moved plus
    metadata operations); ties break on job id for determinism.

    Unreadable payloads (``TraceFormatError`` from the source) are
    counted as corrupted under :attr:`Violation.UNREADABLE` rather than
    aborting the scan — at corpus scale truncated files are data, not
    exceptions.

    ``repair=True`` enables the eviction alternative: corrupted traces
    are first passed through the conservative repair heuristics
    (:mod:`repro.darshan.repair`) and only counted as corrupted when
    repair fails.  The paper evicts outright; the REPAIR experiment
    quantifies the difference.
    """
    from ..darshan.repair import repair_trace

    corruption: Counter = Counter()
    n_input = 0
    n_corrupted = 0
    n_repaired = 0
    n_unreadable = 0
    best: dict[tuple[int, str], SelectedRef] = {}
    runs_per_app: dict[tuple[int, str], int] = {}

    for ref in source.refs():
        n_input += 1
        try:
            trace = source.load(ref)
        except TraceFormatError:
            n_corrupted += 1
            n_unreadable += 1
            corruption[Violation.UNREADABLE] += 1
            continue
        report = validate_trace(trace)
        repaired = False
        if not report.valid and repair:
            outcome = repair_trace(trace)
            if outcome.repaired:
                trace = outcome.trace
                report = validate_trace(trace)
                n_repaired += 1
                repaired = True
        if not report.valid:
            n_corrupted += 1
            for violation in report.categories():
                corruption[violation] += 1
            continue
        key = trace.meta.app_key
        runs_per_app[key] = runs_per_app.get(key, 0) + 1
        weight = trace.io_weight()
        job_id = trace.meta.job_id
        current = best.get(key)
        if (
            current is None
            or weight > current.io_weight
            or (weight == current.io_weight and job_id < current.job_id)
        ):
            best[key] = SelectedRef(
                ref=ref,
                job_id=job_id,
                app_key=key,
                io_weight=weight,
                repaired=repaired,
            )

    selected = sorted(best.values(), key=lambda e: e.job_id)
    return SelectionPlan(
        selected=selected,
        runs_per_app=runs_per_app,
        n_input=n_input,
        n_corrupted=n_corrupted,
        corruption_histogram=corruption,
        n_repaired=n_repaired,
        n_unreadable=n_unreadable,
    )


def load_selected(source: TraceSource, entry: SelectedRef) -> Trace:
    """Pass ②: reload one selected trace, re-applying repair if the scan
    selected its repaired form."""
    trace = source.load(entry.ref)
    if entry.repaired:
        from ..darshan.repair import repair_trace

        trace = repair_trace(trace).trace
    return trace


def preprocess_corpus(
    traces: list[Trace], *, repair: bool = False
) -> PreprocessResult:
    """Validate every trace and keep the heaviest run per application.

    Batch wrapper over the streaming two-pass implementation: scan an
    in-memory source, then materialize the winning traces.  Semantics
    (keep-heaviest, tie-breaks, repair accounting) are exactly those of
    :func:`scan_corpus`.
    """
    source = InMemorySource(traces)
    plan = scan_corpus(source, repair=repair)
    selected = [load_selected(source, entry) for entry in plan.selected]
    return plan.to_result(selected)
