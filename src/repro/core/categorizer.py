"""Per-trace categorization: merging ② + categorization ③ + output ④.

``categorize_trace`` is the unit of work the parallel engine distributes
across the corpus; it is also the single-application entry point the
paper envisions for feeding a job scheduler.

When :attr:`MosaicConfig.budget` is set, a :class:`~repro.core.governor.Governor`
walks the trace down the degradation ladder (docs/ROBUSTNESS.md):
oversized traces are subsampled (COARSE), slow or grossly oversized ones
skip periodicity (MINIMAL), and ungovernably large ones yield a partial,
schema-complete result (FLAGGED) rather than crashing the worker or
being dropped.  The default budget is unlimited, making the governed
pipeline byte-identical to the ungoverned one.
"""

from __future__ import annotations

from typing import get_args

from ..darshan.trace import Direction, Trace
from ..darshan.validate import Violation
from ..merge.pipeline import preprocess_operations
from .governor import DegradationLevel, Governor, subsample_ops
from .metadata import MetadataDetection, classify_metadata
from .periodicity import PeriodicityDetection, detect_periodicity
from .result import CategorizationResult
from .temporality import TemporalityDetection, classify_temporality
from .thresholds import DEFAULT_CONFIG, MosaicConfig

__all__ = ["categorize_trace"]

_DIRECTIONS: tuple[Direction, ...] = get_args(Direction)


def _flagged_result(
    trace: Trace, run_time: float, governor: Governor
) -> CategorizationResult:
    """Identity-only partial result for a trace beyond every budget rung."""
    return CategorizationResult(
        job_id=trace.meta.job_id,
        uid=trace.meta.uid,
        exe=trace.meta.exe,
        nprocs=trace.meta.nprocs,
        run_time=run_time,
        categories=frozenset(),
        degradation=DegradationLevel.FLAGGED,
        budget_violations=tuple(
            f"{Violation.RESOURCE_BUDGET.value}: {reason}"
            for reason in governor.violations
        ),
    )


def categorize_trace(
    trace: Trace, config: MosaicConfig = DEFAULT_CONFIG
) -> CategorizationResult:
    """Run the full MOSAIC per-trace workflow.

    Read and write streams are handled independently (§III-B2): each is
    fused, chunked for temporality, and segmented for periodicity.  An
    insignificant direction (< 100 MB) is excluded from periodicity
    detection, mirroring the paper's use of the insignificant categories
    to keep non-I/O-intensive activity out of the characterization.
    Metadata impact is evaluated on the whole trace.
    """
    run_time = trace.meta.run_time
    governor = Governor(config.budget)
    governor.admit(trace)
    if not governor.allows_axes():
        return _flagged_result(trace, run_time, governor)

    temporality: list[TemporalityDetection] = []
    periodicity: list[PeriodicityDetection] = []

    governor.start_stage()
    for direction in _DIRECTIONS:
        raw = trace.operations(direction)
        cap = governor.ops_cap()
        if cap > 0:
            raw = subsample_ops(raw, cap)
        merged = preprocess_operations(
            raw,
            run_time,
            config.merge,
            backend=config.kernel_backend,
        ).ops
        governor.check_deadline("merge")
        temp = classify_temporality(merged, run_time, direction, config)
        temporality.append(temp)
        governor.check_deadline("temporality")
        significant = merged.total_volume >= config.insignificant_bytes
        if significant and governor.allows_periodicity():
            periodicity.append(
                detect_periodicity(merged, run_time, direction, config)
            )
        else:
            periodicity.append(
                PeriodicityDetection(
                    direction=direction, groups=(), n_segments=0
                )
            )
        governor.check_deadline("periodicity")

    metadata: MetadataDetection = classify_metadata(trace, config)
    governor.check_deadline("metadata")

    return CategorizationResult.build(
        job_id=trace.meta.job_id,
        uid=trace.meta.uid,
        exe=trace.meta.exe,
        nprocs=trace.meta.nprocs,
        run_time=run_time,
        temporality=temporality,
        periodicity=periodicity,
        metadata=metadata,
        config=config,
        degradation=governor.level,
        budget_violations=tuple(governor.violations),
    )
