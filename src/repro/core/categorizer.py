"""Per-trace categorization: merging ② + categorization ③ + output ④.

``categorize_trace`` is the unit of work the parallel engine distributes
across the corpus; it is also the single-application entry point the
paper envisions for feeding a job scheduler.
"""

from __future__ import annotations

from typing import get_args

from ..darshan.trace import Direction, Trace
from ..merge.pipeline import preprocess_operations
from .metadata import classify_metadata
from .periodicity import PeriodicityDetection, detect_periodicity
from .result import CategorizationResult
from .temporality import TemporalityDetection, classify_temporality
from .thresholds import DEFAULT_CONFIG, MosaicConfig

__all__ = ["categorize_trace"]

_DIRECTIONS: tuple[Direction, ...] = get_args(Direction)


def categorize_trace(
    trace: Trace, config: MosaicConfig = DEFAULT_CONFIG
) -> CategorizationResult:
    """Run the full MOSAIC per-trace workflow.

    Read and write streams are handled independently (§III-B2): each is
    fused, chunked for temporality, and segmented for periodicity.  An
    insignificant direction (< 100 MB) is excluded from periodicity
    detection, mirroring the paper's use of the insignificant categories
    to keep non-I/O-intensive activity out of the characterization.
    Metadata impact is evaluated on the whole trace.
    """
    run_time = trace.meta.run_time
    temporality: list[TemporalityDetection] = []
    periodicity: list[PeriodicityDetection] = []

    for direction in _DIRECTIONS:
        merged = preprocess_operations(
            trace.operations(direction),
            run_time,
            config.merge,
            backend=config.kernel_backend,
        ).ops
        temp = classify_temporality(merged, run_time, direction, config)
        temporality.append(temp)
        significant = merged.total_volume >= config.insignificant_bytes
        if significant:
            periodicity.append(
                detect_periodicity(merged, run_time, direction, config)
            )
        else:
            periodicity.append(
                PeriodicityDetection(
                    direction=direction, groups=(), n_segments=0
                )
            )

    metadata = classify_metadata(trace, config)

    return CategorizationResult.build(
        job_id=trace.meta.job_id,
        uid=trace.meta.uid,
        exe=trace.meta.exe,
        nprocs=trace.meta.nprocs,
        run_time=run_time,
        temporality=temporality,
        periodicity=periodicity,
        metadata=metadata,
        config=config,
    )
