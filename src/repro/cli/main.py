"""``mosaic`` command-line interface.

Subcommands mirror the paper's workflow:

``mosaic generate``
    Produce a synthetic Blue Waters-style corpus on disk (binary MOSD or
    JSON traces plus a ground-truth manifest).
``mosaic compile``
    Compile a trace directory into a columnar corpus store (``.mosc``),
    enabling the zero-copy batched fast path (docs/COLUMNAR.md).
``mosaic verify``
    Audit a compiled store's integrity (header, section and per-trace
    CRCs, index bounds); ``--repair`` salvages every intact trace from
    a damaged store into a new file and reports exactly what was lost.
``mosaic categorize``
    Run the full MOSAIC pipeline over a trace directory — or a compiled
    store via ``--store`` — and save per-trace JSON results (workflow
    step ④).
``mosaic report``
    Categorize (or load) and print the paper's tables: funnel (Fig. 3),
    periodicity (Table II), temporality (Table III), metadata (Fig. 4),
    Jaccard pairs (Fig. 5) and §IV-D correlations.
``mosaic anatomy``
    Render the Fig. 2-style processing view of one synthetic trace.
``mosaic serve``
    Run the pipeline as a long-lived HTTP service: submit corpora over
    HTTP, poll or stream (SSE) results, with a content-addressed result
    cache, journal-resumable jobs, bounded admission (429/503 +
    Retry-After under overload), and SIGTERM graceful drain
    (docs/SERVICE.md).
``mosaic submit`` / ``mosaic watch``
    The resilient client side of ``mosaic serve``: submit a corpus with
    a content-derived idempotency key (safe resubmission), and follow a
    job's settle stream over SSE with deterministic retry, a circuit
    breaker, and ``Last-Event-ID`` resume across severed connections
    and server restarts.
``mosaic lint``
    Statically check the codebase against the pipeline's contracts
    (MOS001-MOS011, see ``docs/LINT.md``).  Also installed as ``repro``,
    so CI runs ``repro lint src/ --strict``.

Corpus-scale runs are fault-tolerant (docs/ROBUSTNESS.md): ``--journal``
checkpoints per-trace outcomes so a killed run resumes with ``--resume``,
``--task-timeout`` quarantines hung traces, and ``--chaos SEED`` injects
a deterministic fault schedule to rehearse all of it.
"""

from __future__ import annotations

import argparse
import functools
import json
import os
import sys
import tempfile
from dataclasses import replace
from typing import Any, Callable, Sequence

import numpy as np

from .. import __version__
from ..analysis import (
    funnel_report,
    jaccard_matrix,
    metadata_table,
    paper_correlations,
    periodicity_table,
    temporality_table,
)
from ..core import run_pipeline_stream, save_results_jsonl
from ..io import StorageError, atomic_write_text
from ..core.governor import ResourceBudget
from ..core.pipeline import PipelineContext, PipelineResult
from ..core.thresholds import DEFAULT_CONFIG, MosaicConfig
from ..darshan import (
    DirectorySource,
    SyntheticSource,
    TraceFormatError,
    TraceSource,
    save_binary,
    save_json,
)
from ..lint.cli import add_lint_subparser, cmd_lint
from ..parallel import ParallelConfig, PoolRebuildLimit
from ..testing import ChaosInjector
from ..synth import FleetConfig, cohort_by_name, generate_fleet, generate_run
from ..viz import render_jaccard, render_shares_table, render_trace_anatomy

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mosaic",
        description="MOSAIC: detection and categorization of I/O patterns "
        "in HPC applications (reproduction)",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic corpus")
    gen.add_argument("--out", required=True, help="output directory")
    gen.add_argument("--n-apps", type=int, default=400)
    gen.add_argument("--mean-runs", type=float, default=12.5)
    gen.add_argument("--seed", type=int, default=20190101)
    gen.add_argument(
        "--format", choices=("binary", "json"), default="binary",
        help="trace encoding (binary MOSD is ~5x smaller)",
    )

    comp = sub.add_parser(
        "compile",
        help="compile a trace directory into a columnar corpus store "
        "(.mosc) for the zero-copy fast path (docs/COLUMNAR.md)",
    )
    comp.add_argument("--traces", required=True, help="trace directory")
    comp.add_argument("--out", required=True, help="output .mosc path")
    comp.add_argument(
        "--repair", action="store_true",
        help="bake conservative repair into the compiled traces "
        "(a store is compiled with or without repair, once)",
    )

    ver = sub.add_parser(
        "verify",
        help="audit a compiled store's integrity (header, section and "
        "per-trace CRCs, index bounds); --repair salvages every intact "
        "trace from a damaged store into a new file",
    )
    ver.add_argument("store", help="compiled .mosc store to audit")
    ver.add_argument(
        "--repair",
        action="store_true",
        help="salvage intact traces into a new store (see --out)",
    )
    ver.add_argument(
        "--out",
        help="salvaged store path (default: STORE.repaired.mosc)",
    )
    ver.add_argument(
        "--json",
        dest="json_out",
        help="also write the verify/salvage report as JSON to this path",
    )

    cat = sub.add_parser("categorize", help="categorize a trace directory")
    cat.add_argument("--traces", help="trace directory")
    cat.add_argument(
        "--store", metavar="PATH",
        help="compiled .mosc corpus store (see `mosaic compile`): runs "
        "the zero-copy batched fast path instead of --traces",
    )
    cat.add_argument("--out", required=True, help="results JSONL path")
    cat.add_argument("--workers", type=int, default=0,
                     help="process-pool workers (0 = serial)")
    cat.add_argument("--repair", action="store_true",
                     help="attempt conservative repair of corrupted traces "
                     "instead of evicting them outright")
    _add_resilience_flags(cat)

    rep = sub.add_parser("report", help="categorize and print paper tables")
    rep.add_argument("--traces", help="trace directory (omit to synthesize)")
    rep.add_argument(
        "--store", metavar="PATH",
        help="compiled .mosc corpus store: categorize via the batched "
        "fast path instead of --traces / synthesis",
    )
    rep.add_argument("--n-apps", type=int, default=400,
                     help="synthetic corpus size when --traces is omitted")
    rep.add_argument("--seed", type=int, default=20190101)
    rep.add_argument("--workers", type=int, default=0)
    rep.add_argument("--repair", action="store_true",
                     help="attempt conservative repair of corrupted traces")
    _add_resilience_flags(rep)
    rep.add_argument(
        "--chaos", type=int, metavar="SEED",
        help="inject a deterministic fault schedule (crashes, hangs, "
        "transient errors) to rehearse the resilient executor; "
        "requires --workers >= 2",
    )

    ana = sub.add_parser("anatomy", help="render one trace's processing view")
    ana.add_argument("--cohort", default="rcw_ckpt_periodic",
                     help="synthetic cohort name")
    ana.add_argument("--seed", type=int, default=0)
    ana.add_argument("--width", type=int, default=80)

    acc = sub.add_parser(
        "accuracy",
        help="estimate categorization accuracy against a generated "
        "corpus's ground-truth manifest (SIV-E protocol)",
    )
    acc.add_argument("--traces", required=True,
                     help="directory written by `mosaic generate`")
    acc.add_argument("--sample-size", type=int, default=512)
    acc.add_argument("--seed", type=int, default=0)
    acc.add_argument("--workers", type=int, default=0)

    disc = sub.add_parser(
        "discover",
        help="discover temporality classes by clustering (SV future work)",
    )
    disc.add_argument("--traces", help="trace directory (omit to synthesize)")
    disc.add_argument("--n-apps", type=int, default=400)
    disc.add_argument("--seed", type=int, default=20190101)
    disc.add_argument("--direction", choices=("read", "write"), default="write")
    disc.add_argument("--k", type=int, help="cluster count (omit for elbow rule)")

    fz = sub.add_parser(
        "fuzz",
        help="fuzz the trace readers: parse, raise TraceFormatError, or "
        "repair -- never crash, hang, or allocate beyond budget "
        "(docs/ROBUSTNESS.md)",
    )
    fz.add_argument("--formats", default="binary,json,text",
                    help="comma-separated reader formats to fuzz")
    fz.add_argument("--cases", type=int, default=1000,
                    help="mutated payloads per format")
    fz.add_argument("--seed", type=int, default=20190101)
    fz.add_argument("--deadline", type=float, default=5.0, metavar="SECONDS",
                    help="per-case wall-clock deadline (0 disables)")
    fz.add_argument("--alloc-budget", type=int, default=64 * 1024 * 1024,
                    metavar="BYTES",
                    help="per-case tracemalloc peak budget (0 disables)")
    fz.add_argument("--replay", metavar="DIR",
                    help="replay a saved regression corpus instead of "
                    "generating new cases (CI mode)")
    fz.add_argument("--save-findings", metavar="DIR",
                    help="write minimized reproducers for any findings "
                    "under DIR (one file per finding)")

    srv = sub.add_parser(
        "serve",
        help="run the categorization service: accept job submissions "
        "over HTTP, journal every outcome for crash-safe resume, and "
        "serve cached results for already-seen traces (docs/SERVICE.md)",
    )
    srv.add_argument(
        "--data-dir", required=True,
        help="service state root (job registry, journals, result cache)",
    )
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument(
        "--port", type=int, default=8377,
        help="listen port (0 = ephemeral; the bound port is published "
        "in <data-dir>/server.json either way)",
    )
    srv.add_argument("--workers", type=int, default=0,
                     help="process-pool workers per job (0 = serial)")
    srv.add_argument(
        "--shards", type=int, default=8,
        help="application-catalog shard count",
    )
    srv.add_argument(
        "--budget-max-ops", type=int, metavar="N",
        help="per-trace operation budget applied to every job "
        "(see `mosaic categorize`)",
    )
    srv.add_argument(
        "--budget-max-bytes", type=int, metavar="BYTES",
        help="per-trace working-set budget applied to every job",
    )
    srv.add_argument(
        "--stage-deadline", type=float, metavar="SECONDS",
        help="soft per-stage deadline applied to every job",
    )
    srv.add_argument(
        "--max-queue-depth", type=int, metavar="N",
        help="pending jobs beyond which submissions shed 429 "
        "(default: 64)",
    )
    srv.add_argument(
        "--max-inflight", type=int, metavar="N",
        help="concurrent HTTP requests beyond which connections shed "
        "503 (default: 128)",
    )
    srv.add_argument(
        "--drain-timeout", type=float, metavar="SECONDS",
        help="graceful-drain budget after SIGTERM before escalating to "
        "the journal-resume path (default: 30)",
    )
    srv.add_argument(
        "--sse-keepalive", type=float, metavar="SECONDS",
        help="SSE heartbeat-comment interval (default: 15)",
    )

    smt = sub.add_parser(
        "submit",
        help="submit a corpus to a running mosaic serve instance, with "
        "an idempotency key derived from the .mosc CRC chain so "
        "retried submissions never double-run (docs/SERVICE.md)",
    )
    smt.add_argument("--store", metavar="PATH",
                     help="server-visible compiled .mosc store")
    smt.add_argument("--traces", metavar="PATH",
                     help="server-visible trace directory")
    smt.add_argument("--repair", action="store_true",
                     help="ask the server to apply repair heuristics")
    smt.add_argument(
        "--watch", action="store_true",
        help="follow the job's SSE settle stream to completion "
        "(reconnects with Last-Event-ID across failures)",
    )
    smt.add_argument(
        "--output", metavar="PATH",
        help="with --watch: save the finished job's results JSONL here",
    )
    _add_client_flags(smt)

    wch = sub.add_parser(
        "watch",
        help="follow an existing job's SSE settle stream to completion",
    )
    wch.add_argument("job_id", help="job id returned by mosaic submit")
    wch.add_argument(
        "--output", metavar="PATH",
        help="save the finished job's results JSONL here",
    )
    _add_client_flags(wch)

    add_lint_subparser(sub)
    return parser


def _add_client_flags(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--host", default="127.0.0.1")
    sub.add_argument("--port", type=int, default=8377)
    sub.add_argument(
        "--data-dir", metavar="PATH",
        help="discover the endpoint from <data-dir>/server.json instead "
        "of --host/--port (what mosaic serve published)",
    )
    sub.add_argument(
        "--timeout", type=float, default=600.0, metavar="SECONDS",
        help="overall deadline for the job to reach a terminal state",
    )
    sub.add_argument(
        "--retries", type=int, default=5, metavar="N",
        help="attempts per request (deterministic exponential backoff)",
    )
    sub.add_argument(
        "--quiet", action="store_true",
        help="suppress per-settle event lines",
    )


def _add_resilience_flags(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--journal", metavar="PATH",
        help="checkpoint per-trace outcomes to an append-only JSONL "
        "journal (enables later --resume; see docs/ROBUSTNESS.md)",
    )
    sub.add_argument(
        "--resume", metavar="PATH",
        help="resume a killed run from its journal: settled traces are "
        "skipped, new outcomes are appended to the same journal",
    )
    sub.add_argument(
        "--task-timeout", type=float, metavar="SECONDS",
        help="per-trace categorization deadline; hung traces are "
        "quarantined as TIMEOUT and their worker recycled "
        "(default: no deadline)",
    )
    sub.add_argument(
        "--budget-max-ops", type=int, metavar="N",
        help="per-trace operation budget: traces above it walk the "
        "degradation ladder (subsample -> skip periodicity -> flag) "
        "instead of running at full fidelity (default: unlimited)",
    )
    sub.add_argument(
        "--budget-max-bytes", type=int, metavar="BYTES",
        help="per-trace estimated working-set budget driving the same "
        "ladder (default: unlimited)",
    )
    sub.add_argument(
        "--stage-deadline", type=float, metavar="SECONDS",
        help="soft per-stage deadline: an overrunning trace degrades to "
        "temporality+metadata only instead of being dropped "
        "(default: none)",
    )


def _dir_source(path: str) -> DirectorySource:
    """A lazy source over a trace directory; empty or unlistable
    directories abort with a message instead of a traceback."""
    source = DirectorySource(path)
    try:
        n = source.count()
    except TraceFormatError as exc:
        raise SystemExit(str(exc)) from exc
    if n == 0:
        raise SystemExit(f"no .mosd/.json/.darshan.txt traces found in {path!r}")
    return source


def _effective_config(args: argparse.Namespace) -> MosaicConfig:
    """Apply the --budget-*/--stage-deadline flags to the paper config."""
    kwargs: dict[str, Any] = {}
    if getattr(args, "budget_max_ops", None):
        kwargs["max_ops"] = args.budget_max_ops
    if getattr(args, "budget_max_bytes", None):
        kwargs["max_bytes"] = args.budget_max_bytes
    if getattr(args, "stage_deadline", None):
        kwargs["stage_deadline_s"] = args.stage_deadline
    if not kwargs:
        return DEFAULT_CONFIG
    try:
        budget = ResourceBudget(**kwargs)
    except ValueError as exc:
        raise SystemExit(f"bad resource budget: {exc}") from exc
    return DEFAULT_CONFIG.with_overrides(budget=budget)


def _print_stage_metrics(result) -> None:
    """Per-stage funnel of one streaming run (scan → preprocess →
    categorize), for operators watching corpus-scale jobs."""
    m = result.metrics
    t = result.timings
    mb = m.get("scan_bytes_read", 0) / 1e6
    print(
        f"  scan:       {t.get('scan_s', 0.0):8.2f}s  "
        f"{m.get('traces_scanned', 0)} traces scanned, {mb:.1f} MB read"
    )
    print(
        f"  preprocess: {m.get('n_corrupted', 0)} corrupted "
        f"({m.get('n_unreadable', 0)} unreadable), "
        f"{m.get('n_repaired', 0)} repaired, "
        f"{m.get('n_selected', 0)} apps selected"
    )
    print(
        f"  categorize: {t.get('categorize_s', 0.0):8.2f}s  "
        f"{result.n_categorized} categorized, "
        f"{m.get('n_failures', 0)} failures, "
        f"peak {m.get('peak_inflight_traces', 0)} traces in flight"
    )
    resilience = (
        "n_retries", "n_reload_retries", "n_timeouts", "n_crash_events",
        "n_pool_rebuilds", "n_poisoned", "n_resumed", "n_quarantined",
    )
    if any(m.get(k, 0) for k in resilience):
        print(
            f"  resilience: "
            f"{m.get('n_retries', 0) + m.get('n_reload_retries', 0)} retries, "
            f"{m.get('n_timeouts', 0)} timeouts, "
            f"{m.get('n_crash_events', 0)} crash events, "
            f"{m.get('n_pool_rebuilds', 0)} pool rebuilds, "
            f"{m.get('n_poisoned', 0)} poisoned, "
            f"{m.get('n_resumed', 0)} resumed, "
            f"{m.get('n_quarantined', 0)} quarantined"
        )
    if m.get("n_degraded", 0):
        print(
            f"  degraded:   {m.get('n_degraded', 0)} over budget "
            f"({m.get('n_degraded_coarse', 0)} coarse, "
            f"{m.get('n_degraded_minimal', 0)} minimal, "
            f"{m.get('n_degraded_flagged', 0)} flagged)"
        )


def _cmd_generate(args: argparse.Namespace) -> int:
    os.makedirs(args.out, exist_ok=True)
    fleet = generate_fleet(
        FleetConfig(n_apps=args.n_apps, mean_runs=args.mean_runs, seed=args.seed)
    )
    for trace in fleet.traces:
        base = os.path.join(args.out, f"job{trace.meta.job_id:08d}")
        if args.format == "binary":
            save_binary(trace, base + ".mosd")
        else:
            save_json(trace, base + ".json")
    manifest = {
        "n_apps": args.n_apps,
        "mean_runs": args.mean_runs,
        "seed": args.seed,
        "n_traces": fleet.n_input,
        "n_valid": fleet.n_valid,
        "n_corrupted": fleet.n_corrupted,
        "cohorts": {k: list(v) for k, v in fleet.manifest.items()},
        "truth": {str(j): t.to_dict() for j, t in fleet.truth.items()},
    }
    atomic_write_text(
        os.path.join(args.out, "manifest.json"), json.dumps(manifest)
    )
    print(
        f"wrote {fleet.n_input} traces ({fleet.n_valid} valid, "
        f"{fleet.n_corrupted} corrupted) to {args.out}"
    )
    return 0


def _parallel(
    workers: int, task_timeout: float | None = None
) -> ParallelConfig:
    cfg = ParallelConfig(max_workers=workers if workers >= 0 else None)
    if task_timeout is not None:
        cfg = replace(cfg, task_timeout_s=task_timeout)
    return cfg


def _journal_args(args: argparse.Namespace) -> tuple[str | None, bool]:
    """Resolve --journal/--resume into (journal_path, resume)."""
    journal: str | None = getattr(args, "journal", None)
    resume: str | None = getattr(args, "resume", None)
    if resume and journal and os.path.abspath(resume) != os.path.abspath(journal):
        raise SystemExit(
            "--journal and --resume must name the same file "
            "(--resume alone both reads and extends the journal)"
        )
    if resume:
        if not os.path.exists(resume):
            raise SystemExit(f"no journal to resume at {resume!r}")
        return resume, True
    return journal, False


def _chaos_wrap(
    fn: Callable[[Any], Any], *, seed: int, state_dir: str
) -> Callable[[Any], Any]:
    """Default CLI chaos schedule: mostly-healthy corpus with a few
    crashes, one-in-fifty hangs, and recoverable transient errors."""
    return ChaosInjector(
        inner=fn,
        seed=seed,
        crash_rate=0.02,
        hang_rate=0.02,
        flaky_rate=0.05,
        state_dir=state_dir,
    )


def _chaos_context(args: argparse.Namespace) -> PipelineContext | None:
    """Build a chaos-wrapped pipeline context, or None without --chaos."""
    if getattr(args, "chaos", None) is None:
        return None
    parallel = _parallel(args.workers, args.task_timeout)
    if parallel.resolved_workers() <= 1:
        raise SystemExit(
            "--chaos requires a process pool (--workers >= 2): injected "
            "crashes would kill the CLI itself in serial mode"
        )
    if parallel.task_timeout_s is None:
        # hangs must be detectable, so chaos implies a deadline
        parallel = replace(parallel, task_timeout_s=30.0)
    if parallel.max_pool_rebuilds is None:
        # the production budget (3) assumes crashes are anomalies;
        # chaos injects them on purpose, so a self-test needs headroom
        parallel = replace(parallel, max_pool_rebuilds=100)
    return PipelineContext(
        config=_effective_config(args),
        parallel=parallel,
        repair=getattr(args, "repair", False),
        wrap_worker=functools.partial(
            _chaos_wrap,
            seed=args.chaos,
            state_dir=tempfile.mkdtemp(prefix="mosaic-chaos-"),
        ),
    )


def _print_journal_paths(result: PipelineResult, journal: str | None) -> None:
    if journal is None:
        return
    m = result.metrics
    print(f"  journal:    {journal}")
    if m.get("n_quarantined", 0):
        print(f"  quarantine: {journal}.quarantine.json")


def _cmd_compile(args: argparse.Namespace) -> int:
    from ..columnar import compile_corpus

    source = _dir_source(args.traces)
    try:
        report = compile_corpus(source, args.out, repair=args.repair)
    except TraceFormatError as exc:
        raise SystemExit(str(exc)) from exc
    print(
        f"compiled {report.n_traces} traces "
        f"({report.n_unreadable} unreadable payloads counted, "
        f"{report.n_records} records, {report.n_ops} ops) into "
        f"{report.path} ({report.n_bytes / 1e6:.1f} MB) "
        f"in {report.elapsed_s:.1f}s"
    )
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from ..columnar import salvage_store, verify_store

    report = verify_store(args.store)
    payload: dict[str, Any] = report.to_dict()
    if report.clean:
        print(
            f"{args.store}: clean (version {report.version}, "
            f"{report.n_traces} traces, per-trace CRCs "
            f"{'verified' if report.version >= 2 else 'absent: v1 store'})"
        )
    else:
        print(f"{args.store}: {len(report.findings)} integrity finding(s)")
        for f in report.findings:
            locus = (
                f" [row {f.row}]"
                if f.row >= 0
                else (f" [{f.section}]" if f.section else "")
            )
            print(f"  {f.kind}{locus}: {f.detail}")
        if args.repair and not report.fatal:
            out = args.out or (args.store + ".repaired.mosc")
            try:
                salvage = salvage_store(args.store, out)
            except TraceFormatError as exc:
                raise SystemExit(f"repair failed: {exc}") from exc
            payload = salvage.to_dict()
            print(
                f"salvaged {salvage.n_recovered}/{salvage.n_rows} traces "
                f"into {out} ({salvage.n_lost} lost: rows "
                f"{list(salvage.lost_rows)}; job ids "
                f"{list(salvage.lost_job_ids)} where recoverable)"
            )
        elif args.repair:
            print("repair impossible: header/geometry damage is fatal")
    if args.json_out:
        atomic_write_text(args.json_out, json.dumps(payload, indent=2) + "\n")
    return 0 if report.clean else 1


def _run_pipeline(args: argparse.Namespace, **kwargs: Any) -> PipelineResult:
    """Dispatch on --store vs --traces: batched fast path or streaming."""
    journal, resume = _journal_args(args)
    common = dict(
        config=_effective_config(args),
        parallel=_parallel(args.workers, args.task_timeout),
        repair=getattr(args, "repair", False),
        journal_path=journal,
        resume=resume,
        **kwargs,
    )
    if getattr(args, "store", None):
        if getattr(args, "traces", None):
            raise SystemExit("--store and --traces are mutually exclusive")
        from ..core import run_pipeline_store

        try:
            return run_pipeline_store(args.store, **common)
        except (TraceFormatError, ValueError) as exc:
            raise SystemExit(str(exc)) from exc
    source = (
        _dir_source(args.traces)
        if getattr(args, "traces", None)
        else _corpus_source(args)
    )
    return run_pipeline_stream(source, **common)


def _cmd_categorize(args: argparse.Namespace) -> int:
    if not args.traces and not args.store:
        raise SystemExit("one of --traces or --store is required")
    journal, _resume = _journal_args(args)
    result = _run_pipeline(args)
    n = save_results_jsonl(result.results, args.out)
    weights_path = args.out + ".weights.json"
    atomic_write_text(
        weights_path,
        json.dumps(
            {str(r.job_id): w for r, w in zip(result.results, result.run_weights())}
        ),
    )
    pre = result.preprocess
    print(
        f"categorized {n} unique applications out of {pre.n_input} traces "
        f"({pre.corrupted_fraction:.0%} corrupted, "
        f"{pre.unique_fraction:.0%} unique) in {result.timings['total_s']:.1f}s"
    )
    _print_stage_metrics(result)
    _print_journal_paths(result, journal)
    print(f"results: {args.out}\nall-runs weights: {weights_path}")
    return 0


def _corpus_source(args: argparse.Namespace) -> TraceSource:
    """Trace directory when given, lazy synthetic corpus otherwise."""
    if args.traces:
        return _dir_source(args.traces)
    print(f"synthesizing corpus (n_apps={args.n_apps}, seed={args.seed})...")
    return SyntheticSource(FleetConfig(n_apps=args.n_apps, seed=args.seed))


def _cmd_report(args: argparse.Namespace) -> int:
    journal, _resume = _journal_args(args)
    context = _chaos_context(args)
    if context is not None:
        print(f"chaos mode: seed={args.chaos}, injecting faults...")
    result = _run_pipeline(args, context=context)
    weights = result.run_weights()

    fun = funnel_report(result.preprocess)
    print("\n== Pre-processing funnel (Fig. 3) ==")
    for stage in fun.stages:
        print(f"  {stage.name:>30}: {stage.count:>8} ({stage.retention:.0%} kept)")
    print(
        f"  corrupted: {fun.corrupted_fraction:.0%}  "
        f"unique: {fun.unique_fraction:.0%}  "
        f"repaired: {result.preprocess.n_repaired}"
    )
    _print_stage_metrics(result)
    _print_journal_paths(result, journal)

    print("\n== Periodic writes (Table II) ==")
    print(render_shares_table(periodicity_table(result.results, weights, "write")))

    print("\n== Temporality (Table III) ==")
    print(render_shares_table(temporality_table(result.results, weights)))

    print("\n== Metadata categories (Fig. 4) ==")
    print(render_shares_table(metadata_table(result.results, weights)))

    print("\n== Jaccard pairs (Fig. 5) ==")
    print(render_jaccard(jaccard_matrix(result.results)))

    corr = paper_correlations(result.results)
    print("\n== Noteworthy correlations (SIV-D) ==")
    print(f"  P(write insig | read insig)      = {corr.insig_read_implies_insig_write:.0%}")
    print(f"  P(write on end | read on start)  = {corr.read_start_implies_write_end:.0%}")
    print(f"  periodic writers < 25% busy      = {corr.periodic_writes_low_busy:.0%}")
    print(f"  P(start/end | dense metadata)    = {corr.dense_metadata_reads_start_or_writes_end:.0%}")
    return 0


def _cmd_anatomy(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    spec = cohort_by_name(args.cohort).build(1, rng)
    trace = generate_run(spec, 1, rng, force_nominal=True)
    print(render_trace_anatomy(trace, width=args.width))
    return 0


def _cmd_accuracy(args: argparse.Namespace) -> int:
    from ..analysis import estimate_accuracy
    from ..synth import GroundTruth

    manifest_path = os.path.join(args.traces, "manifest.json")
    try:
        with open(manifest_path, "r", encoding="utf-8") as fh:
            manifest = json.load(fh)
    except OSError as exc:
        raise SystemExit(f"cannot read ground-truth manifest: {exc}") from exc
    truth = {
        int(job_id): GroundTruth.from_dict(d)
        for job_id, d in manifest.get("truth", {}).items()
    }
    if not truth:
        raise SystemExit("manifest carries no ground truth")

    result = run_pipeline_stream(
        _dir_source(args.traces), DEFAULT_CONFIG, _parallel(args.workers)
    )
    rep = estimate_accuracy(
        result.results, truth, sample_size=args.sample_size, seed=args.seed
    )
    print(
        f"accuracy over {rep.n_sampled} sampled traces: {rep.accuracy:.1%} "
        f"[{rep.ci_low:.1%}, {rep.ci_high:.1%}] "
        f"({rep.n_incorrect} wrong; paper: 92%, 42/512)"
    )
    if rep.errors_by_axis:
        print("errors by axis: "
              + ", ".join(f"{k}={v}" for k, v in rep.errors_by_axis.items()))
    return 0


def _cmd_discover(args: argparse.Namespace) -> int:
    from ..discovery import discover_temporality

    source = _corpus_source(args)
    result = run_pipeline_stream(source, DEFAULT_CONFIG, _parallel(0))
    rep = discover_temporality(
        result.results, args.direction, k=args.k, seed=args.seed
    )
    print(
        f"discovered k={rep.k} {args.direction} clusters over "
        f"{rep.n_traces} significant traces "
        f"(purity {rep.overall_purity:.2f}, ARI vs rules {rep.ari:.2f})"
    )
    for c in rep.clusters:
        shares = ", ".join(f"{s:.2f}" for s in c.centroid_shares)
        print(
            f"  cluster {c.cluster_id}: {c.size:4d} traces -> "
            f"{c.majority_label.value} (purity {c.purity:.2f}) chunks [{shares}]"
        )
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from ..fuzz import (
        FuzzCase,
        load_corpus,
        minimize_case,
        replay_corpus,
        run_fuzz,
        save_corpus,
    )

    if args.replay:
        if not os.path.isdir(args.replay):
            raise SystemExit(f"no corpus directory at {args.replay!r}")
        cases = list(load_corpus(args.replay))
        if not cases:
            raise SystemExit(f"corpus at {args.replay!r} holds no .bin cases")
        report = replay_corpus(
            cases, deadline_s=args.deadline, alloc_budget=args.alloc_budget
        )
        print(f"replayed {args.replay}: {report.summary()}")
    else:
        formats = [f.strip() for f in args.formats.split(",") if f.strip()]
        report = run_fuzz(
            formats,
            n_cases=args.cases,
            seed=args.seed,
            deadline_s=args.deadline,
            alloc_budget=args.alloc_budget,
            on_progress=lambda fmt, n: print(f"  ... {n} cases ({fmt})"),
        )
        print(report.summary())
    if report.findings and args.save_findings:
        reproducers = [
            FuzzCase(
                fmt=f.fmt,
                mutation=f"{f.kind}-{f.mutation}",
                seed=f.seed,
                # hangs/allocs are not safe to re-run under minimization
                data=minimize_case(f.fmt, f.data) if f.kind == "crash" else f.data,
            )
            for f in report.findings
        ]
        for path in save_corpus(reproducers, args.save_findings):
            print(f"  reproducer: {path}")
    return 0 if report.ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from ..service import MosaicServer
    from ..service.admission import AdmissionLimits

    limit_overrides: dict[str, Any] = {}
    if args.max_queue_depth:
        limit_overrides["max_queue_depth"] = args.max_queue_depth
    if args.max_inflight:
        limit_overrides["max_inflight_requests"] = args.max_inflight
    if args.drain_timeout:
        limit_overrides["drain_timeout_s"] = args.drain_timeout
    try:
        limits = AdmissionLimits(**limit_overrides)
    except ValueError as exc:
        raise SystemExit(f"bad admission limits: {exc}") from exc
    server = MosaicServer(
        args.data_dir,
        config=_effective_config(args),
        workers=args.workers,
        n_shards=args.shards,
        host=args.host,
        port=args.port,
        limits=limits,
        sse_keepalive_s=args.sse_keepalive or 15.0,
    )
    print(
        f"mosaic service: data-dir {args.data_dir}, "
        f"{args.shards} catalog shards, "
        f"{args.workers or 'serial'} workers per job"
    )
    print(f"listening on {args.host}:{args.port or '<ephemeral>'} "
          f"(endpoint published in {os.path.join(args.data_dir, 'server.json')})")
    server.serve_forever()
    return 0


def _client_endpoint(args: argparse.Namespace) -> tuple[str, int]:
    """Resolve the service endpoint: server.json beats --host/--port."""
    if getattr(args, "data_dir", None):
        endpoint_path = os.path.join(args.data_dir, "server.json")
        try:
            with open(endpoint_path, "r", encoding="utf-8") as fh:
                endpoint = json.load(fh)
            return str(endpoint["host"]), int(endpoint["port"])
        except (OSError, ValueError, KeyError) as exc:
            raise SystemExit(
                f"cannot discover endpoint from {endpoint_path!r}: {exc} "
                "(is mosaic serve running with that --data-dir?)"
            ) from exc
    return args.host, args.port


def _make_client(args: argparse.Namespace):
    from ..service.client import ClientRetryPolicy, MosaicClient

    host, port = _client_endpoint(args)
    return MosaicClient(
        host, port, retry=ClientRetryPolicy(max_attempts=args.retries)
    )


_JOB_STATUS_EXIT = {"done": 0, "failed": 1, "storage-failed": 3}


def _watch_to_exit(client, job_id: str, args: argparse.Namespace) -> int:
    """Follow one job to a terminal state; map its status to an exit
    code (matching the batch CLI: storage failures exit 3)."""
    from ..service.client import MosaicClientError

    def on_event(event: dict) -> None:
        if not args.quiet:
            print(f"  event: {json.dumps(event, separators=(',', ':'))}")

    try:
        job = client.watch(job_id, timeout_s=args.timeout, on_event=on_event)
    except MosaicClientError as exc:
        raise SystemExit(f"watch failed: {exc}") from exc
    status = job.get("status", "failed")
    print(f"{job_id}: {status}"
          + (f" ({job.get('error', '')})" if job.get("error") else ""))
    if status == "done" and getattr(args, "output", None):
        from ..io import atomic_write_bytes

        data = client.results(job_id)
        atomic_write_bytes(args.output, data)
        print(f"results -> {args.output} ({len(data)} bytes)")
    return _JOB_STATUS_EXIT.get(status, 1)


def _cmd_submit(args: argparse.Namespace) -> int:
    from ..service.client import MosaicClientError

    if bool(args.store) == bool(args.traces):
        raise SystemExit("exactly one of --store or --traces is required")
    client = _make_client(args)
    try:
        submitted = client.submit(
            store=args.store, traces=args.traces, repair=args.repair
        )
    except MosaicClientError as exc:
        raise SystemExit(f"submission failed: {exc}") from exc
    job_id = submitted["job_id"]
    dedup = " (deduplicated: already submitted)" if submitted.get(
        "deduplicated"
    ) else ""
    print(f"submitted {job_id}: {submitted.get('status', 'queued')}{dedup}")
    if not args.watch:
        return 0
    return _watch_to_exit(client, job_id, args)


def _cmd_watch(args: argparse.Namespace) -> int:
    return _watch_to_exit(_make_client(args), args.job_id, args)


_COMMANDS = {
    "compile": _cmd_compile,
    "verify": _cmd_verify,
    "generate": _cmd_generate,
    "categorize": _cmd_categorize,
    "report": _cmd_report,
    "anatomy": _cmd_anatomy,
    "accuracy": _cmd_accuracy,
    "discover": _cmd_discover,
    "fuzz": _cmd_fuzz,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "watch": _cmd_watch,
    "lint": cmd_lint,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except PoolRebuildLimit as exc:
        raise SystemExit(
            f"aborted: {exc}\n(raise --task-timeout / max_pool_rebuilds, or "
            "quarantine the offending traces and --resume from the journal)"
        ) from exc
    except StorageError as exc:
        # Exit 3: a durable artifact could not be persisted.  The write
        # was atomic, so whatever was at the target path is still intact.
        print(f"storage error: {exc}", file=sys.stderr)
        return 3


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
