"""``python -m repro.cli`` — entry point for environments without the
installed ``mosaic``/``repro`` console scripts (e.g. CI smoke jobs
running straight off a checkout with ``PYTHONPATH=src``)."""

import sys

from .main import main

if __name__ == "__main__":
    sys.exit(main())
