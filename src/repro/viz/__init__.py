"""Text-mode rendering (tables, heatmaps, trace timelines) and CSV
export for every paper table and figure."""

from .export import (
    matrix_to_csv,
    rows_to_csv,
    shares_to_csv,
    summary_to_csv,
    write_csv,
)
from .heatmap import render_heatmap, render_jaccard
from .tables import format_bytes, format_percent, render_shares_table, render_table
from .timeline import render_ops_lane, render_trace_anatomy

__all__ = [
    "matrix_to_csv",
    "rows_to_csv",
    "shares_to_csv",
    "summary_to_csv",
    "write_csv",
    "render_heatmap",
    "render_jaccard",
    "format_bytes",
    "format_percent",
    "render_shares_table",
    "render_table",
    "render_ops_lane",
    "render_trace_anatomy",
]
