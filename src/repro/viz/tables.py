"""ASCII table rendering.

No plotting stack is assumed (the evaluation environment is offline);
every paper table/figure is emitted as aligned text plus CSV (see
:mod:`repro.viz.export`), which is also the friendliest form for diffing
against EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["render_table", "render_shares_table", "format_percent", "format_bytes"]


def format_percent(x: float, digits: int = 1) -> str:
    """0.347 → '34.7%'."""
    return f"{100.0 * x:.{digits}f}%"


def format_bytes(n: float) -> str:
    """Human-readable byte count ('3.2 GB')."""
    units = ["B", "KB", "MB", "GB", "TB", "PB"]
    x = float(n)
    for unit in units:
        if abs(x) < 1024.0 or unit == units[-1]:
            return f"{x:.1f} {unit}" if unit != "B" else f"{int(x)} B"
        x /= 1024.0
    return f"{x:.1f} PB"  # pragma: no cover - loop always returns


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[str]],
    *,
    title: str | None = None,
) -> str:
    """Render rows as a fixed-width ASCII table."""
    cols = len(headers)
    for r in rows:
        if len(r) != cols:
            raise ValueError("row width does not match headers")
    widths = [
        max(len(str(headers[c])), *(len(str(r[c])) for r in rows)) if rows else len(str(headers[c]))
        for c in range(cols)
    ]
    sep = "+".join("-" * (w + 2) for w in widths)
    sep = f"+{sep}+"

    def fmt_row(cells: Sequence[str]) -> str:
        inner = " | ".join(str(c).ljust(w) for c, w in zip(cells, widths))
        return f"| {inner} |"

    lines = []
    if title:
        lines.append(title)
    lines += [sep, fmt_row(headers), sep]
    lines += [fmt_row(r) for r in rows]
    lines.append(sep)
    return "\n".join(lines)


def render_shares_table(
    table: Mapping[str, Mapping[str, float]],
    *,
    title: str | None = None,
    digits: int = 1,
) -> str:
    """Render a {row_label: {column: share}} mapping as percentages.

    Columns are the union of all row keys, in first-seen order.
    """
    columns: list[str] = []
    for row in table.values():
        for key in row:
            if key not in columns:
                columns.append(key)
    headers = [""] + columns
    rows = [
        [label] + [
            format_percent(row.get(c, 0.0), digits) if c in row else "-"
            for c in columns
        ]
        for label, row in table.items()
    ]
    return render_table(headers, rows, title=title)
