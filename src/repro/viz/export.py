"""CSV export of every table/figure series.

Each experiment writes its series as CSV so the numbers behind the ASCII
renderings are machine-readable (EXPERIMENTS.md references them).
"""

from __future__ import annotations

import csv
import io
import os
from typing import Mapping, Sequence

import numpy as np

from ..io import atomic_write_text

__all__ = [
    "shares_to_csv",
    "matrix_to_csv",
    "rows_to_csv",
    "summary_to_csv",
    "write_csv",
]


def rows_to_csv(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Serialize rows into CSV text."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(headers)
    for row in rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        writer.writerow(row)
    return buf.getvalue()


def shares_to_csv(table: Mapping[str, Mapping[str, float]]) -> str:
    """Serialize a {row: {column: share}} mapping (row-major)."""
    columns: list[str] = []
    for row in table.values():
        for key in row:
            if key not in columns:
                columns.append(key)
    rows = [
        [label] + [row.get(c, "") for c in columns] for label, row in table.items()
    ]
    return rows_to_csv(["row"] + columns, rows)


def matrix_to_csv(
    values: np.ndarray, row_labels: Sequence[str], col_labels: Sequence[str]
) -> str:
    """Serialize a labelled matrix."""
    values = np.asarray(values)
    if values.shape != (len(row_labels), len(col_labels)):
        raise ValueError("labels do not match matrix shape")
    rows = [
        [r] + [float(v) for v in row] for r, row in zip(row_labels, values)
    ]
    return rows_to_csv([""] + list(col_labels), rows)


def summary_to_csv(pipeline) -> str:
    """Corpus-summary counters of a pipeline run as ``counter,value`` CSV.

    Accepts any :class:`~repro.core.pipeline.PipelineResult`-shaped
    object (duck-typed to keep viz free of core imports).  Alongside the
    funnel numbers, the run-health counters are always present —
    ``n_failures``, ``n_degraded`` (plus one ``n_degraded_<level>`` row
    per ladder rung hit) and ``n_quarantined`` — because a share table
    exported without them silently overstates its own fidelity.
    """
    pre = pipeline.preprocess
    metrics = pipeline.metrics
    rows: list[list[object]] = [
        ["n_input", pre.n_input],
        ["n_corrupted", pre.n_corrupted],
        ["n_repaired", pre.n_repaired],
        ["n_selected", pre.n_selected],
        ["n_categorized", pipeline.n_categorized],
        ["n_failures", pipeline.n_failures],
        ["n_degraded", metrics.get("n_degraded", 0)],
        ["n_quarantined", metrics.get("n_quarantined", 0)],
    ]
    for key in sorted(metrics):
        if key.startswith("n_degraded_"):
            rows.append([key, metrics[key]])
    return rows_to_csv(["counter", "value"], rows)


def write_csv(text: str, path: str | os.PathLike[str]) -> None:
    """Atomically write CSV text to ``path`` (parent directory must
    exist).  Raises :class:`repro.io.StorageError` on storage faults —
    a silently truncated table is worse than no table."""
    atomic_write_text(path, text)
