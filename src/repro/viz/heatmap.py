"""ASCII heatmap rendering for the Jaccard matrix (Fig. 5)."""

from __future__ import annotations

import numpy as np

from ..analysis.jaccard import JaccardMatrix

__all__ = ["render_heatmap", "render_jaccard"]

#: Density ramp from empty to full.
RAMP = " .:-=+*#%@"


def render_heatmap(
    values: np.ndarray,
    row_labels: list[str],
    col_labels: list[str],
    *,
    title: str | None = None,
    cell_width: int = 5,
) -> str:
    """Render a matrix as an ASCII heatmap with numeric cells.

    Each cell shows the value in percent; intensity is encoded by the
    glyph appended after the number (Fig. 5 colour substitute).
    """
    values = np.asarray(values, dtype=np.float64)
    if values.shape != (len(row_labels), len(col_labels)):
        raise ValueError("labels do not match matrix shape")
    vmax = float(values.max()) if values.size else 1.0
    vmax = vmax if vmax > 0 else 1.0

    label_w = max((len(r) for r in row_labels), default=0)
    lines: list[str] = []
    if title:
        lines.append(title)
    # column header uses indices, with a legend below, to keep rows narrow
    header = " " * (label_w + 1) + "".join(
        f"{i:>{cell_width}}" for i in range(len(col_labels))
    )
    lines.append(header)
    for label, row in zip(row_labels, values):
        cells = []
        for v in row:
            glyph = RAMP[min(int(v / vmax * (len(RAMP) - 1)), len(RAMP) - 1)]
            cells.append(f"{100 * v:>{cell_width - 1}.0f}{glyph}")
        lines.append(f"{label:>{label_w}} " + "".join(cells))
    lines.append("")
    lines.extend(
        f"  [{i}] {name}" for i, name in enumerate(col_labels)
    )
    return "\n".join(lines)


def render_jaccard(
    matrix: JaccardMatrix,
    *,
    threshold: float = 0.01,
    title: str = "Jaccard index matrix (values in %, pairs > 1%)",
) -> str:
    """Render a Jaccard matrix keeping only rows/columns that appear in
    at least one relevant pair — mirroring Fig. 5's pruning."""
    pairs = matrix.relevant_pairs(threshold)
    keep = sorted(
        {c for a, b, _ in pairs for c in (a, b)},
        key=lambda c: matrix.categories.index(c),
    )
    if not keep:
        return f"{title}\n(no pairs above threshold)"
    idx = [matrix.categories.index(c) for c in keep]
    sub = matrix.values[np.ix_(idx, idx)]
    labels = [c.value for c in keep]
    return render_heatmap(sub, labels, labels, title=title)
