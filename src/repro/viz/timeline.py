"""ASCII timeline rendering of a single trace (Fig. 2 substitute).

Shows, per direction, the raw operations, the operations after merging,
the detected periodicity, the four temporality chunks, and the metadata
request rate — the panels of the paper's trace-processing example.
"""

from __future__ import annotations

import numpy as np

from ..core.categorizer import categorize_trace
from ..core.thresholds import DEFAULT_CONFIG, MosaicConfig
from ..darshan.trace import OperationArray, Trace
from ..merge.pipeline import preprocess_operations
from ..segment.chunks import chunk_volumes
from ..signalproc.activity import bin_events
from .tables import format_bytes

__all__ = ["render_ops_lane", "render_trace_anatomy"]


def render_ops_lane(
    ops: OperationArray, run_time: float, width: int = 80, label: str = ""
) -> str:
    """One text lane: '#' where operations are active, '.' elsewhere."""
    if run_time <= 0.0:
        return f"{label:>18} |{'.' * width}| {len(ops)} ops"
    lane = np.zeros(width, dtype=bool)
    for s, e, _ in ops:
        lo = int(np.clip(s / run_time * width, 0, width - 1))
        hi = int(np.clip(np.ceil(e / run_time * width), lo + 1, width))
        lane[lo:hi] = True
    body = "".join("#" if x else "." for x in lane)
    return f"{label:>18} |{body}| {len(ops)} ops"


def _sparkline(values: np.ndarray, width: int = 80) -> str:
    """Compress a series into a width-wide block sparkline."""
    glyphs = " _.-=+*#%@"
    if len(values) == 0:
        return " " * width
    idx = np.linspace(0, len(values), width + 1).astype(int)
    pooled = np.array(
        [values[a:b].max() if b > a else 0.0 for a, b in zip(idx[:-1], idx[1:])]
    )
    vmax = pooled.max() if pooled.max() > 0 else 1.0
    return "".join(
        glyphs[min(int(v / vmax * (len(glyphs) - 1)), len(glyphs) - 1)]
        for v in pooled
    )


def render_trace_anatomy(
    trace: Trace, config: MosaicConfig = DEFAULT_CONFIG, width: int = 80
) -> str:
    """Render the full Fig. 2-style processing view of one trace."""
    run_time = trace.meta.run_time
    lines: list[str] = [
        f"trace job={trace.meta.job_id} exe={trace.meta.exe} "
        f"nprocs={trace.meta.nprocs} runtime={run_time:.0f}s",
        f"{'':>18}  0%{'execution time':^{width - 8}}100%",
    ]
    result = categorize_trace(trace, config)

    for direction in ("read", "write"):
        raw = trace.operations(direction)  # type: ignore[arg-type]
        merged = preprocess_operations(raw, run_time, config.merge)
        lines.append(render_ops_lane(raw, run_time, width, f"{direction} raw"))
        lines.append(
            render_ops_lane(merged.ops, run_time, width, f"{direction} merged")
        )
        if not merged.ops.is_empty():
            profile = chunk_volumes(merged.ops, run_time, config.n_chunks)
            chunk_cells = " ".join(
                f"[{format_bytes(v)}]" for v in profile.volumes
            )
            lines.append(f"{direction + ' chunks':>18} {chunk_cells}")
        groups = result.periodic_groups.get(direction, [])  # type: ignore[arg-type]
        for g in groups:
            lines.append(
                f"{'periodic':>18} {direction}: period={g.period:.0f}s "
                f"x{g.n_occurrences} vol={format_bytes(g.mean_volume)} "
                f"busy={g.busy_fraction:.0%}"
            )

    times, counts = trace.metadata_events()
    rate = bin_events(times, counts, max(run_time, 1.0), 1.0)
    lines.append(f"{'metadata req/s':>18} |{_sparkline(rate, width)}|")
    lines.append(
        f"{'':>18} peak={result.metadata_peak_rate:.0f}/s "
        f"mean={result.metadata_mean_rate:.1f}/s spikes={result.metadata_n_spikes}"
    )
    lines.append(
        "categories: " + ", ".join(sorted(c.value for c in result.categories))
    )
    return "\n".join(lines)
