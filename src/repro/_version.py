"""Version of the MOSAIC reproduction package."""

__version__ = "1.0.0"
