"""Threshold sweeping over a labeled trace subset.

The paper sets its clustering thresholds "empirically ... on one month
of traces until periodic operations were correctly identified" and then
validates on the full year by sampling (§III-B3a).  This module
implements that methodology as a reusable grid sweep: evaluate candidate
:class:`~repro.core.thresholds.MosaicConfig` overrides against ground
truth, scoring trace-level accuracy plus per-axis detail (periodicity
F1, temporality accuracy), so the choice of thresholds becomes an
auditable experiment instead of folklore.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from ..core.categorizer import categorize_trace
from ..core.categories import Category
from ..core.thresholds import DEFAULT_CONFIG, MosaicConfig
from ..darshan.trace import Trace
from ..synth.groundtruth import GroundTruth, mismatch_axes

__all__ = ["AxisScores", "SweepPoint", "score_config", "sweep_thresholds"]


@dataclass(slots=True, frozen=True)
class AxisScores:
    """Per-axis quality of one configuration on a labeled subset."""

    trace_accuracy: float
    temporality_accuracy: float
    periodic_precision: float
    periodic_recall: float

    @property
    def periodic_f1(self) -> float:
        p, r = self.periodic_precision, self.periodic_recall
        return 2 * p * r / (p + r) if (p + r) > 0 else 0.0


@dataclass(slots=True, frozen=True)
class SweepPoint:
    """One evaluated grid point."""

    overrides: dict[str, Any]
    scores: AxisScores

    def config(self, base: MosaicConfig = DEFAULT_CONFIG) -> MosaicConfig:
        return base.with_overrides(**self.overrides)


def score_config(
    traces: Sequence[Trace],
    truth: Mapping[int, GroundTruth],
    config: MosaicConfig,
) -> AxisScores:
    """Categorize ``traces`` under ``config`` and score against truth."""
    n = 0
    n_correct = 0
    n_temporal_ok = 0
    tp = fp = fn = 0
    for trace in traces:
        gt = truth.get(trace.meta.job_id)
        if gt is None:
            continue
        n += 1
        result = categorize_trace(trace, config)
        axes = mismatch_axes(result, gt)
        if not axes:
            n_correct += 1
        if "read_temporality" not in axes and "write_temporality" not in axes:
            n_temporal_ok += 1
        predicted = Category.PERIODIC_WRITE in result.categories
        actual = gt.periodic_write
        if predicted and actual:
            tp += 1
        elif predicted and not actual:
            fp += 1
        elif actual and not predicted:
            fn += 1
    if n == 0:
        return AxisScores(0.0, 0.0, 0.0, 0.0)
    return AxisScores(
        trace_accuracy=n_correct / n,
        temporality_accuracy=n_temporal_ok / n,
        periodic_precision=tp / (tp + fp) if (tp + fp) else 1.0,
        periodic_recall=tp / (tp + fn) if (tp + fn) else 1.0,
    )


def sweep_thresholds(
    traces: Sequence[Trace],
    truth: Mapping[int, GroundTruth],
    grid: Mapping[str, Sequence[Any]],
    base: MosaicConfig = DEFAULT_CONFIG,
) -> list[SweepPoint]:
    """Evaluate every combination of the ``grid`` values.

    ``grid`` maps :class:`MosaicConfig` field names to candidate values,
    e.g. ``{"meanshift_bandwidth": [0.05, 0.15, 0.4], "min_group_size":
    [2, 3, 5]}``.  Returns all points sorted by trace accuracy
    (descending), ties broken toward higher periodic F1.
    """
    if not grid:
        raise ValueError("grid must name at least one field")
    names = list(grid)
    points: list[SweepPoint] = []
    for combo in itertools.product(*(grid[name] for name in names)):
        overrides = dict(zip(names, combo))
        config = base.with_overrides(**overrides)
        scores = score_config(traces, truth, config)
        points.append(SweepPoint(overrides=overrides, scores=scores))
    points.sort(
        key=lambda p: (-p.scores.trace_accuracy, -p.scores.periodic_f1)
    )
    return points
