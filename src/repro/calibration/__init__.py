"""Threshold calibration: the paper's set-on-one-month /
validate-by-sampling methodology (§III-B3a, §IV-E) as a reusable
experiment."""

from .calibrate import CalibrationOutcome, calibrate_and_validate, month_subset
from .sweep import AxisScores, SweepPoint, score_config, sweep_thresholds

__all__ = [
    "CalibrationOutcome",
    "calibrate_and_validate",
    "month_subset",
    "AxisScores",
    "SweepPoint",
    "score_config",
    "sweep_thresholds",
]
