"""The paper's two-stage calibration workflow.

Stage 1 — *set thresholds on one month*: take the traces whose jobs
started inside a calendar-month window, sweep the threshold grid on
them, keep the best point.

Stage 2 — *validate on the year by sampling*: categorize the full corpus
under the chosen thresholds and estimate accuracy from a 512-trace
random sample (§IV-E's protocol).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from ..analysis.accuracy import AccuracyReport, estimate_accuracy
from ..core.categorizer import categorize_trace
from ..core.thresholds import DEFAULT_CONFIG, MosaicConfig
from ..darshan.trace import Trace
from ..synth.groundtruth import GroundTruth
from .sweep import SweepPoint, sweep_thresholds

__all__ = ["CalibrationOutcome", "month_subset", "calibrate_and_validate"]

#: Seconds in the synthetic corpus year window.
YEAR_SECONDS = 365.0 * 86400.0
MONTH_SECONDS = YEAR_SECONDS / 12.0


def month_subset(
    traces: Sequence[Trace], month: int = 0, epoch: float | None = None
) -> list[Trace]:
    """Traces whose job started within calendar month ``month`` (0-11)
    of the corpus year.  ``epoch`` defaults to the earliest start time."""
    if not 0 <= month < 12:
        raise ValueError("month must be in [0, 12)")
    if not traces:
        return []
    t0 = epoch if epoch is not None else min(t.meta.start_time for t in traces)
    lo = t0 + month * MONTH_SECONDS
    hi = lo + MONTH_SECONDS
    return [t for t in traces if lo <= t.meta.start_time < hi]


@dataclass(slots=True, frozen=True)
class CalibrationOutcome:
    """Result of calibrate-on-month + validate-on-year."""

    best: SweepPoint
    sweep: tuple[SweepPoint, ...]
    validation: AccuracyReport
    n_month_traces: int

    def best_config(self, base: MosaicConfig = DEFAULT_CONFIG) -> MosaicConfig:
        return self.best.config(base)


def calibrate_and_validate(
    traces: Sequence[Trace],
    truth: Mapping[int, GroundTruth],
    grid: Mapping[str, Sequence[Any]],
    *,
    month: int = 0,
    sample_size: int = 512,
    base: MosaicConfig = DEFAULT_CONFIG,
    seed: int = 0,
) -> CalibrationOutcome:
    """Run the full §III-B3a methodology.

    ``traces`` should be the *selected* (deduplicated, valid) corpus;
    ``truth`` the ground-truth mapping.  The grid is swept on the
    chosen month's traces; the winning configuration is then validated
    on the whole corpus via the sampling protocol.
    """
    subset = month_subset(traces, month)
    labeled = [t for t in subset if t.meta.job_id in truth]
    if not labeled:
        raise ValueError(f"month {month} holds no labeled traces")

    points = sweep_thresholds(labeled, truth, grid, base)
    best = points[0]

    config = best.config(base)
    results = [categorize_trace(t, config) for t in traces]
    validation = estimate_accuracy(
        results, truth, sample_size=sample_size, seed=seed
    )
    return CalibrationOutcome(
        best=best,
        sweep=tuple(points),
        validation=validation,
        n_month_traces=len(labeled),
    )
