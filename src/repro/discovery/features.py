"""Per-trace feature vectors for automatic category discovery.

The paper's fixed chunk rules (§III-B3b) hand-define the temporality
classes; §V proposes discovering them with clustering instead.  The
natural feature space is exactly what the rules consume: the normalized
temporal chunk shares of each direction, plus activity-shape scalars
(coverage, operation count, periodicity evidence).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.result import CategorizationResult

__all__ = ["FeatureSpec", "temporality_features", "feature_names"]


@dataclass(slots=True, frozen=True)
class FeatureSpec:
    """Which feature blocks to include."""

    chunk_shares: bool = True
    log_volume: bool = True
    periodicity: bool = False


def feature_names(direction: str, spec: FeatureSpec | None = None) -> list[str]:
    """Column names of :func:`temporality_features` output."""
    spec = spec or FeatureSpec()
    names: list[str] = []
    if spec.chunk_shares:
        names += [f"{direction}_chunk{i}" for i in range(4)]
    if spec.log_volume:
        names.append(f"{direction}_log_volume")
    if spec.periodicity:
        names.append(f"{direction}_n_periodic_groups")
    return names


def temporality_features(
    results: list[CategorizationResult],
    direction: str,
    spec: FeatureSpec | None = None,
) -> tuple[np.ndarray, list[int]]:
    """Build the feature matrix for one direction.

    Returns ``(X, kept)`` where ``kept`` holds the indices of results
    with significant activity in ``direction`` (insignificant traces
    have no temporal structure to discover and are excluded, mirroring
    the paper's use of the insignificant categories).
    """
    spec = spec or FeatureSpec()
    rows: list[list[float]] = []
    kept: list[int] = []
    for i, r in enumerate(results):
        chunks = r.chunk_volumes.get(direction)
        if not chunks:
            continue
        total = float(sum(chunks))
        if total <= 0:
            continue
        row: list[float] = []
        if spec.chunk_shares:
            row += [float(c) / total for c in chunks]
        if spec.log_volume:
            row.append(float(np.log10(max(total, 1.0))))
        if spec.periodicity:
            row.append(float(len(r.periodic_groups.get(direction, []))))
        rows.append(row)
        kept.append(i)
    if not rows:
        return np.empty((0, len(feature_names(direction, spec)))), []
    X = np.asarray(rows, dtype=np.float64)
    # z-score the non-share columns so chunk shares (already in [0, 1])
    # and volumes live on comparable scales
    n_share = 4 if spec.chunk_shares else 0
    for col in range(n_share, X.shape[1]):
        std = X[:, col].std()
        if std > 0:
            X[:, col] = (X[:, col] - X[:, col].mean()) / std
        else:
            X[:, col] = 0.0
    return X, kept
