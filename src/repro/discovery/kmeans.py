"""K-means clustering, implemented from scratch.

Used by the automatic category-discovery extension (paper §V).  Features
k-means++ seeding, multiple restarts, empty-cluster reseeding, and an
inertia-based model-selection helper.  No scikit-learn dependency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.spatial.distance import cdist

__all__ = ["KMeansResult", "kmeans", "select_k"]


@dataclass(slots=True, frozen=True)
class KMeansResult:
    """Outcome of one k-means fit."""

    labels: np.ndarray
    centers: np.ndarray
    inertia: float
    n_iter: int

    @property
    def k(self) -> int:
        return len(self.centers)

    def cluster_sizes(self) -> np.ndarray:
        return np.bincount(self.labels, minlength=self.k)


def _kmeanspp_init(
    X: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread initial centers by D² sampling."""
    n = len(X)
    centers = np.empty((k, X.shape[1]))
    centers[0] = X[rng.integers(0, n)]
    d2 = np.sum((X - centers[0]) ** 2, axis=1)
    for i in range(1, k):
        total = d2.sum()
        if total <= 0:
            centers[i:] = X[rng.integers(0, n, size=k - i)]
            break
        probs = d2 / total
        centers[i] = X[rng.choice(n, p=probs)]
        d2 = np.minimum(d2, np.sum((X - centers[i]) ** 2, axis=1))
    return centers


def _fit_once(
    X: np.ndarray, k: int, rng: np.random.Generator, max_iter: int, tol: float
) -> KMeansResult:
    centers = _kmeanspp_init(X, k, rng)
    labels = np.zeros(len(X), dtype=np.int64)
    n_iter = 0
    for n_iter in range(1, max_iter + 1):
        d = cdist(X, centers)
        labels = np.argmin(d, axis=1)
        new_centers = centers.copy()
        for j in range(k):
            members = X[labels == j]
            if len(members):
                new_centers[j] = members.mean(axis=0)
            else:
                # reseed an empty cluster at the farthest point
                far = int(np.argmax(np.min(d, axis=1)))
                new_centers[j] = X[far]
        shift = float(np.linalg.norm(new_centers - centers, axis=1).max())
        centers = new_centers
        if shift < tol:
            break
    d = cdist(X, centers)
    labels = np.argmin(d, axis=1)
    inertia = float(np.sum(np.min(d, axis=1) ** 2))
    return KMeansResult(labels=labels, centers=centers, inertia=inertia, n_iter=n_iter)


def kmeans(
    X: np.ndarray,
    k: int,
    *,
    n_init: int = 8,
    max_iter: int = 200,
    tol: float = 1e-6,
    seed: int = 0,
) -> KMeansResult:
    """Fit k-means with ``n_init`` k-means++ restarts; keep the best."""
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ValueError("X must be 2-D")
    n = len(X)
    if n == 0:
        raise ValueError("cannot cluster an empty dataset")
    if not 1 <= k <= n:
        raise ValueError(f"k={k} out of range for {n} points")
    rng = np.random.default_rng(seed)
    best: KMeansResult | None = None
    for _ in range(max(n_init, 1)):
        result = _fit_once(X, k, rng, max_iter, tol)
        if best is None or result.inertia < best.inertia:
            best = result
    assert best is not None
    return best


def select_k(
    X: np.ndarray,
    k_max: int = 10,
    *,
    seed: int = 0,
    elbow_ratio: float = 0.15,
) -> int:
    """Pick k by the elbow rule: the smallest k whose marginal inertia
    reduction drops below ``elbow_ratio`` of the total reduction."""
    X = np.asarray(X, dtype=np.float64)
    k_max = min(k_max, len(X))
    if k_max <= 1:
        return max(k_max, 1)
    inertias = [kmeans(X, k, seed=seed, n_init=4).inertia for k in range(1, k_max + 1)]
    total_drop = inertias[0] - inertias[-1]
    if total_drop <= 0:
        return 1
    for k in range(1, k_max):
        drop = inertias[k - 1] - inertias[k]
        if drop < elbow_ratio * total_drop:
            return k
    return k_max
