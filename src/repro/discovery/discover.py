"""Automatic temporality-category discovery (paper §V).

Clusters traces in chunk-share space and compares the discovered
partition to MOSAIC's rule-based labels: cluster purity and the majority
label per cluster show how far unsupervised structure reproduces
Table I's hand-designed taxonomy.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from ..cluster.metrics import adjusted_rand_index
from ..core.categories import TEMPORALITY_READ, TEMPORALITY_WRITE, Category
from ..core.result import CategorizationResult
from .features import FeatureSpec, temporality_features
from .kmeans import kmeans, select_k

__all__ = ["DiscoveredCluster", "DiscoveryReport", "discover_temporality"]


@dataclass(slots=True, frozen=True)
class DiscoveredCluster:
    """One discovered group of traces."""

    cluster_id: int
    size: int
    #: Rule-based label most common in the cluster.
    majority_label: Category
    #: Fraction of members carrying the majority label.
    purity: float
    #: Mean chunk-share profile of the cluster (length 4).
    centroid_shares: tuple[float, ...]


@dataclass(slots=True, frozen=True)
class DiscoveryReport:
    """Comparison of discovered clusters against the rule-based taxonomy."""

    direction: str
    k: int
    clusters: tuple[DiscoveredCluster, ...]
    #: Overall purity: weighted mean of per-cluster purities.
    overall_purity: float
    #: Adjusted Rand index between discovered and rule-based partitions.
    ari: float
    n_traces: int

    def labels_recovered(self) -> set[Category]:
        """Distinct rule-based labels appearing as cluster majorities."""
        return {c.majority_label for c in self.clusters}


def _rule_label(result: CategorizationResult, direction: str) -> Category | None:
    universe = TEMPORALITY_READ if direction == "read" else TEMPORALITY_WRITE
    labels = result.categories & universe
    return next(iter(labels)) if labels else None


def discover_temporality(
    results: list[CategorizationResult],
    direction: str = "write",
    *,
    k: int | None = None,
    k_max: int = 8,
    seed: int = 0,
) -> DiscoveryReport:
    """Discover temporality classes by clustering chunk-share profiles.

    ``k=None`` selects the cluster count with the elbow rule — the
    "more automatic" determination the paper sketches.
    """
    X, kept = temporality_features(results, direction, FeatureSpec(log_volume=False))
    if len(kept) < 2:
        return DiscoveryReport(
            direction=direction, k=0, clusters=(), overall_purity=0.0,
            ari=0.0, n_traces=len(kept),
        )
    if k is None:
        k = select_k(X, k_max=min(k_max, len(kept)), seed=seed)
    fit = kmeans(X, k, seed=seed)

    rule_labels = [
        _rule_label(results[i], direction) or Category.READ_INSIGNIFICANT
        for i in kept
    ]
    clusters: list[DiscoveredCluster] = []
    weighted_purity = 0.0
    for j in range(fit.k):
        members = np.flatnonzero(fit.labels == j)
        if len(members) == 0:
            continue
        counts = Counter(rule_labels[int(m)] for m in members)
        majority, hits = counts.most_common(1)[0]
        purity = hits / len(members)
        weighted_purity += purity * len(members)
        clusters.append(
            DiscoveredCluster(
                cluster_id=j,
                size=int(len(members)),
                majority_label=majority,
                purity=purity,
                centroid_shares=tuple(float(v) for v in fit.centers[j][:4]),
            )
        )
    clusters.sort(key=lambda c: -c.size)

    rule_ids = {lab: i for i, lab in enumerate(sorted({*rule_labels}, key=str))}
    ari = adjusted_rand_index(
        np.array([rule_ids[l] for l in rule_labels]), fit.labels
    )
    return DiscoveryReport(
        direction=direction,
        k=fit.k,
        clusters=tuple(clusters),
        overall_purity=weighted_purity / len(kept),
        ari=float(ari),
        n_traces=len(kept),
    )
