"""Automatic category discovery (paper §V): from-scratch k-means over
chunk-share features, compared against the rule-based Table I taxonomy."""

from .discover import DiscoveredCluster, DiscoveryReport, discover_temporality
from .features import FeatureSpec, feature_names, temporality_features
from .kmeans import KMeansResult, kmeans, select_k

__all__ = [
    "DiscoveredCluster",
    "DiscoveryReport",
    "discover_temporality",
    "FeatureSpec",
    "feature_names",
    "temporality_features",
    "KMeansResult",
    "kmeans",
    "select_k",
]
