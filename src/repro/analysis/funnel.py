"""Pre-processing funnel analysis (Fig. 3).

The paper's funnel over 2019 Blue Waters data: 462,502 input traces →
32% corrupted/evicted → 8% of the valid traces are unique executions →
24,606 retained for categorization.  This module turns a
:class:`~repro.core.preprocess.PreprocessResult` into the same staged
view, with the corruption-cause histogram as supplementary detail.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.preprocess import PreprocessResult

__all__ = ["FunnelStage", "FunnelReport", "funnel_report", "PAPER_FUNNEL"]


@dataclass(slots=True, frozen=True)
class FunnelStage:
    name: str
    count: int
    #: Fraction relative to the previous stage (1.0 for the first).
    retention: float


@dataclass(slots=True, frozen=True)
class FunnelReport:
    stages: tuple[FunnelStage, ...]
    corrupted_fraction: float
    unique_fraction: float
    corruption_causes: dict[str, int]

    def counts(self) -> list[int]:
        return [s.count for s in self.stages]


#: The paper's Fig. 3 reference values.
PAPER_FUNNEL = {
    "input_traces": 462_502,
    "corrupted_fraction": 0.32,
    "unique_fraction": 0.08,
    "selected_for_categorization": 24_606,
}


def funnel_report(pre: PreprocessResult) -> FunnelReport:
    """Build the Fig. 3 funnel from a pre-processing result."""
    stages = []
    prev = None
    for name, count in pre.funnel():
        retention = 1.0 if prev in (None, 0) else count / prev
        stages.append(FunnelStage(name=name, count=count, retention=retention))
        prev = count
    return FunnelReport(
        stages=tuple(stages),
        corrupted_fraction=pre.corrupted_fraction,
        unique_fraction=pre.unique_fraction,
        corruption_causes={
            v.value: n for v, n in pre.corruption_histogram.most_common()
        },
    )
