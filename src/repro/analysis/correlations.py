"""Noteworthy correlation mining (§IV-D).

Checks the four correlations the paper highlights, plus a generic miner
that surfaces strong conditional dependencies between categories — the
signal a correlation-aware job scheduler would consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.categories import Category
from ..core.result import CategorizationResult
from .jaccard import conditional_probability, jaccard_matrix

__all__ = ["CorrelationReport", "paper_correlations", "mine_correlations"]


@dataclass(slots=True, frozen=True)
class CorrelationReport:
    """The four §IV-D statements, measured on a corpus."""

    #: P(write insignificant | read insignificant) — paper: ≈95%.
    insig_read_implies_insig_write: float
    #: P(write on end | read on start) — paper: ≈66%.
    read_start_implies_write_end: float
    #: Share of periodic-write traces below 25% busy time — paper: ≈96%.
    periodic_writes_low_busy: float
    #: P(read on start or write on end | metadata high density) —
    #: paper: density+spike apps "are more likely to read on start
    #: and/or write on end".
    dense_metadata_reads_start_or_writes_end: float


def paper_correlations(
    results: Sequence[CategorizationResult],
    run_weights: Sequence[int] | None = None,
) -> CorrelationReport:
    """Measure the paper's §IV-D correlations on ``results``."""
    insig = conditional_probability(
        results,
        Category.READ_INSIGNIFICANT,
        Category.WRITE_INSIGNIFICANT,
        run_weights,
    )
    rcw = conditional_probability(
        results, Category.READ_ON_START, Category.WRITE_ON_END, run_weights
    )

    weights = run_weights if run_weights is not None else [1] * len(results)
    periodic_total = 0.0
    periodic_low = 0.0
    dense_total = 0.0
    dense_hit = 0.0
    for r, w in zip(results, weights):
        if Category.PERIODIC_WRITE in r.categories:
            periodic_total += w
            groups = r.periodic_groups.get("write", [])
            if groups and all(g.busy_fraction < 0.25 for g in groups):
                periodic_low += w
        if Category.METADATA_HIGH_DENSITY in r.categories:
            dense_total += w
            if (
                Category.READ_ON_START in r.categories
                or Category.WRITE_ON_END in r.categories
            ):
                dense_hit += w

    return CorrelationReport(
        insig_read_implies_insig_write=insig,
        read_start_implies_write_end=rcw,
        periodic_writes_low_busy=(
            periodic_low / periodic_total if periodic_total else 0.0
        ),
        dense_metadata_reads_start_or_writes_end=(
            dense_hit / dense_total if dense_total else 0.0
        ),
    )


def mine_correlations(
    results: Sequence[CategorizationResult],
    *,
    min_jaccard: float = 0.05,
    min_conditional: float = 0.5,
    run_weights: Sequence[int] | None = None,
) -> list[tuple[Category, Category, float, float]]:
    """Generic correlation miner.

    Returns ``(given, then, P(then|given), jaccard)`` tuples for pairs
    whose Jaccard index exceeds ``min_jaccard`` and whose conditional
    probability exceeds ``min_conditional``, sorted by conditional
    probability.  Pairs within the same temporality direction are
    skipped (mutually exclusive labels correlate trivially at 0).
    """
    matrix = jaccard_matrix(results, run_weights=run_weights)
    found: list[tuple[Category, Category, float, float]] = []
    for a, b, j in matrix.relevant_pairs(min_jaccard):
        for given, then in ((a, b), (b, a)):
            p = conditional_probability(results, given, then, run_weights)
            if p >= min_conditional:
                found.append((given, then, p, j))
    found.sort(key=lambda t: -t[2])
    return found
