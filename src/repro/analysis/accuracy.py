"""Sampling-based accuracy estimation (§IV-E).

The paper drew 512 random traces from a year of categorized output,
validated them manually, found 42 misclassified, and reported 92%
accuracy.  Here the generator's ground truth plays the validator's role;
the sampling protocol is identical, and a Wilson interval quantifies
what a 512-sample actually pins down.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..core.result import CategorizationResult
from ..synth.groundtruth import GroundTruth, mismatch_axes

__all__ = ["AccuracyReport", "estimate_accuracy", "wilson_interval"]


def wilson_interval(k: int, n: int, z: float = 1.96) -> tuple[float, float]:
    """Wilson score interval for ``k`` successes out of ``n``."""
    if n == 0:
        return (0.0, 1.0)
    p = k / n
    # denom >= 1 by construction (1 + a non-negative term)
    denom = 1 + z * z / n
    centre = (p + z * z / (2 * n)) / denom  # mosaic: disable=MOS005
    half = (z / denom) * math.sqrt(p * (1 - p) / n + z * z / (4 * n * n))  # mosaic: disable=MOS005
    return (max(0.0, centre - half), min(1.0, centre + half))


@dataclass(slots=True, frozen=True)
class AccuracyReport:
    """Outcome of one sampling validation."""

    n_sampled: int
    n_correct: int
    #: axis name → number of sampled traces wrong on that axis.
    errors_by_axis: dict[str, int] = field(default_factory=dict)
    ci_low: float = 0.0
    ci_high: float = 1.0

    @property
    def accuracy(self) -> float:
        return self.n_correct / self.n_sampled if self.n_sampled else 0.0

    @property
    def n_incorrect(self) -> int:
        return self.n_sampled - self.n_correct

    def dominant_error_axis(self) -> str | None:
        """The axis causing most errors — the paper attributes its errors
        "mainly" to temporality."""
        if not self.errors_by_axis:
            return None
        return max(self.errors_by_axis.items(), key=lambda kv: kv[1])[0]


def estimate_accuracy(
    results: Sequence[CategorizationResult],
    truth: Mapping[int, GroundTruth],
    *,
    sample_size: int = 512,
    seed: int = 0,
) -> AccuracyReport:
    """Estimate accuracy by sampling ``sample_size`` categorized traces.

    Sampling is uniform without replacement (with replacement only if the
    corpus is smaller than the sample, so small test corpora still
    exercise the protocol).  Results without ground truth are skipped —
    they indicate corrupted traces that leaked through, which tests
    assert never happens.
    """
    scored = [r for r in results if r.job_id in truth]
    if not scored:
        return AccuracyReport(n_sampled=0, n_correct=0)
    rng = np.random.default_rng(seed)
    replace = len(scored) < sample_size
    idx = rng.choice(len(scored), size=sample_size, replace=replace)

    n_correct = 0
    axis_errors: Counter[str] = Counter()
    for i in idx:
        r = scored[int(i)]
        axes = mismatch_axes(r, truth[r.job_id])
        if not axes:
            n_correct += 1
        else:
            for a in axes:
                axis_errors[a] += 1
    lo, hi = wilson_interval(n_correct, sample_size)
    return AccuracyReport(
        n_sampled=sample_size,
        n_correct=n_correct,
        errors_by_axis=dict(axis_errors),
        ci_low=lo,
        ci_high=hi,
    )
