"""One-call corpus report: everything §IV prints, as text and data.

``build_report`` bundles the funnel, Tables II/III, Fig. 4, the Fig. 5
Jaccard pairs and the §IV-D correlations into one structure with a
``render()`` method — the library-level counterpart of ``mosaic report``
and the object examples/notebooks want to work with.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.pipeline import PipelineResult
from .correlations import CorrelationReport, paper_correlations
from .funnel import FunnelReport, funnel_report
from .jaccard import JaccardMatrix, jaccard_matrix
from .stats import metadata_table, periodicity_table, temporality_table

__all__ = ["CorpusReport", "build_report"]


@dataclass(slots=True, frozen=True)
class CorpusReport:
    """All §IV artifacts of one pipeline run."""

    funnel: FunnelReport
    table2: dict[str, dict[str, float]]
    table3: dict[str, dict[str, float]]
    fig4: dict[str, dict[str, float]]
    jaccard: JaccardMatrix
    correlations: CorrelationReport
    n_categorized: int
    #: Run-health counters (degradation ladder and fault quarantine):
    #: ``n_failures``, ``n_degraded`` plus one ``n_degraded_<level>``
    #: per non-FULL rung hit, and ``n_quarantined``.  A paper-faithful
    #: share table is only trustworthy when this says how much of the
    #: corpus was categorized at reduced fidelity or not at all.
    run_health: dict[str, int] = field(default_factory=dict)

    def render(self) -> str:
        """Human-readable text form of the whole report."""
        from ..viz.heatmap import render_jaccard
        from ..viz.tables import render_shares_table

        parts = ["== Pre-processing funnel (Fig. 3) =="]
        for stage in self.funnel.stages:
            parts.append(
                f"  {stage.name:>30}: {stage.count:>8} ({stage.retention:.0%} kept)"
            )
        parts.append(
            f"  corrupted: {self.funnel.corrupted_fraction:.0%}  "
            f"unique: {self.funnel.unique_fraction:.0%}"
        )
        parts.append("\n== Periodic writes (Table II) ==")
        parts.append(render_shares_table(self.table2))
        parts.append("\n== Temporality (Table III) ==")
        parts.append(render_shares_table(self.table3))
        parts.append("\n== Metadata categories (Fig. 4) ==")
        parts.append(render_shares_table(self.fig4))
        parts.append("\n== Jaccard pairs (Fig. 5) ==")
        parts.append(render_jaccard(self.jaccard))
        c = self.correlations
        parts.append("\n== Noteworthy correlations (SIV-D) ==")
        parts.append(
            f"  P(write insig | read insig)      = {c.insig_read_implies_insig_write:.0%}"
        )
        parts.append(
            f"  P(write on end | read on start)  = {c.read_start_implies_write_end:.0%}"
        )
        parts.append(
            f"  periodic writers < 25% busy      = {c.periodic_writes_low_busy:.0%}"
        )
        parts.append(
            f"  P(start/end | dense metadata)    = {c.dense_metadata_reads_start_or_writes_end:.0%}"
        )
        parts.append("\n== Run health ==")
        h = self.run_health
        parts.append(f"  categorized: {self.n_categorized}")
        parts.append(f"  failures:    {h.get('n_failures', 0)}")
        parts.append(f"  quarantined: {h.get('n_quarantined', 0)}")
        n_degraded = h.get("n_degraded", 0)
        parts.append(f"  degraded:    {n_degraded}")
        for key in sorted(h):
            if key.startswith("n_degraded_"):
                parts.append(
                    f"    {key[len('n_degraded_'):]:>10}: {h[key]}"
                )
        return "\n".join(parts)


def build_report(pipeline: PipelineResult) -> CorpusReport:
    """Assemble the full §IV report from a pipeline result."""
    weights = pipeline.run_weights()
    return CorpusReport(
        funnel=funnel_report(pipeline.preprocess),
        table2=periodicity_table(pipeline.results, weights, "write"),
        table3=temporality_table(pipeline.results, weights),
        fig4=metadata_table(pipeline.results, weights),
        jaccard=jaccard_matrix(pipeline.results),
        correlations=paper_correlations(pipeline.results),
        n_categorized=pipeline.n_categorized,
        run_health={
            "n_failures": pipeline.n_failures,
            "n_degraded": pipeline.metrics.get("n_degraded", 0),
            "n_quarantined": pipeline.metrics.get("n_quarantined", 0),
            **{
                k: v
                for k, v in pipeline.metrics.items()
                if k.startswith("n_degraded_")
            },
        },
    )
