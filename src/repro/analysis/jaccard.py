"""Jaccard index matrix between categories (Fig. 5).

MOSAIC compares "similarity and diversity between samples" with the
Jaccard index (paper ref. [31]): for two categories A and B over a set of
traces, ``J(A, B) = |A ∩ B| / |A ∪ B|`` where each category is the set of
traces carrying it.  The heatmap of relevant pairs surfaces the §IV-D
correlations used to motivate I/O-aware scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.categories import Category
from ..core.result import CategorizationResult

__all__ = ["JaccardMatrix", "jaccard_matrix", "conditional_probability"]


@dataclass(slots=True, frozen=True)
class JaccardMatrix:
    """Symmetric Jaccard matrix over an ordered category list."""

    categories: tuple[Category, ...]
    values: np.ndarray

    def get(self, a: Category, b: Category) -> float:
        ia = self.categories.index(a)
        ib = self.categories.index(b)
        return float(self.values[ia, ib])

    def relevant_pairs(
        self, threshold: float = 0.01
    ) -> list[tuple[Category, Category, float]]:
        """Off-diagonal pairs with an index above ``threshold``, sorted
        descending — the pairs Fig. 5 displays ("only values higher than
        1% are shown")."""
        pairs: list[tuple[Category, Category, float]] = []
        n = len(self.categories)
        for i in range(n):
            for j in range(i + 1, n):
                v = float(self.values[i, j])
                if v > threshold:
                    pairs.append((self.categories[i], self.categories[j], v))
        pairs.sort(key=lambda t: -t[2])
        return pairs


def jaccard_matrix(
    results: Sequence[CategorizationResult],
    categories: Sequence[Category] | None = None,
    run_weights: Sequence[int] | None = None,
) -> JaccardMatrix:
    """Compute the category × category Jaccard matrix.

    With ``run_weights``, each trace counts as that many corpus elements
    (the all-runs view); otherwise every unique application counts once.
    """
    cats = tuple(categories) if categories is not None else tuple(Category)
    weights = (
        np.asarray(run_weights, dtype=np.float64)
        if run_weights is not None
        else np.ones(len(results))
    )
    if len(weights) != len(results):
        raise ValueError("run_weights must align with results")

    # membership matrix: (n_traces, n_categories)
    member = np.zeros((len(results), len(cats)), dtype=np.float64)
    for i, r in enumerate(results):
        for j, c in enumerate(cats):
            if c in r.categories:
                member[i, j] = 1.0
    weighted = member * weights[:, None]
    inter = weighted.T @ member  # |A ∩ B| with weights
    sizes = weighted.sum(axis=0)
    union = sizes[:, None] + sizes[None, :] - inter
    with np.errstate(divide="ignore", invalid="ignore"):
        values = np.where(union > 0, inter / union, 0.0)
    return JaccardMatrix(categories=cats, values=values)


def conditional_probability(
    results: Sequence[CategorizationResult],
    given: Category,
    then: Category,
    run_weights: Sequence[int] | None = None,
) -> float:
    """P(trace has ``then`` | trace has ``given``), optionally run-weighted.

    The directional companion of the Jaccard index, used for the paper's
    statements like "66% of applications reading on start write on end".
    """
    weights = run_weights if run_weights is not None else [1] * len(results)
    denom = 0.0
    num = 0.0
    for r, w in zip(results, weights):
        if given in r.categories:
            denom += w
            if then in r.categories:
                num += w
    return num / denom if denom else 0.0
