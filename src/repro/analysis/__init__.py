"""Corpus-level analysis: distribution tables, Jaccard correlations,
sampling accuracy, and the pre-processing funnel — everything §IV of the
paper reports."""

from .accuracy import AccuracyReport, estimate_accuracy, wilson_interval
from .correlations import CorrelationReport, mine_correlations, paper_correlations
from .funnel import PAPER_FUNNEL, FunnelReport, FunnelStage, funnel_report
from .jaccard import JaccardMatrix, conditional_probability, jaccard_matrix
from .report import CorpusReport, build_report
from .stats import (
    CategoryShares,
    category_shares,
    metadata_table,
    periodicity_table,
    temporality_table,
)

__all__ = [
    "AccuracyReport",
    "estimate_accuracy",
    "wilson_interval",
    "CorrelationReport",
    "mine_correlations",
    "paper_correlations",
    "PAPER_FUNNEL",
    "FunnelReport",
    "FunnelStage",
    "funnel_report",
    "CorpusReport",
    "build_report",
    "JaccardMatrix",
    "conditional_probability",
    "jaccard_matrix",
    "CategoryShares",
    "category_shares",
    "metadata_table",
    "periodicity_table",
    "temporality_table",
]
