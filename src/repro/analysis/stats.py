"""Category distribution statistics (Tables II & III, Fig. 4).

MOSAIC reports every distribution twice (§III-B4):

* **single run** — one count per unique application, "analyzing the
  behavior of the executed applications";
* **all runs** — each application weighted by its number of valid
  executions, "information about the load on the parallel file system".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..core.categories import (
    METADATA,
    TEMPORALITY_READ,
    TEMPORALITY_WRITE,
    Category,
)
from ..core.result import CategorizationResult

__all__ = [
    "CategoryShares",
    "category_shares",
    "temporality_table",
    "periodicity_table",
    "metadata_table",
]


@dataclass(slots=True, frozen=True)
class CategoryShares:
    """Share (0..1) of traces carrying each category, single vs all runs."""

    single_run: dict[Category, float]
    all_runs: dict[Category, float]
    n_apps: int
    n_runs: int

    def single(self, cat: Category) -> float:
        return self.single_run.get(cat, 0.0)

    def all(self, cat: Category) -> float:
        return self.all_runs.get(cat, 0.0)


def category_shares(
    results: Sequence[CategorizationResult],
    run_weights: Sequence[int],
    categories: Iterable[Category] | None = None,
) -> CategoryShares:
    """Compute single-run and all-runs shares of each category.

    ``run_weights[i]`` is the number of valid executions of the
    application behind ``results[i]`` (see
    :meth:`~repro.core.pipeline.PipelineResult.run_weights`).
    """
    if len(results) != len(run_weights):
        raise ValueError("results and run_weights must align")
    cats = list(categories) if categories is not None else list(Category)
    n_apps = len(results)
    n_runs = int(sum(run_weights))
    single: dict[Category, float] = {}
    allr: dict[Category, float] = {}
    for cat in cats:
        hits_single = sum(1 for r in results if cat in r.categories)
        hits_all = sum(
            w for r, w in zip(results, run_weights) if cat in r.categories
        )
        single[cat] = hits_single / n_apps if n_apps else 0.0
        allr[cat] = hits_all / n_runs if n_runs else 0.0
    return CategoryShares(
        single_run=single, all_runs=allr, n_apps=n_apps, n_runs=n_runs
    )


def _grouped_row(
    shares: Mapping[Category, float],
    named: Sequence[Category],
    universe: frozenset[Category],
) -> dict[str, float]:
    """Named columns plus an 'others' bucket covering the rest of the axis."""
    row = {c.value: shares.get(c, 0.0) for c in named}
    others = sum(
        v for c, v in shares.items() if c in universe and c not in named
    )
    row["others"] = others
    return row


def temporality_table(
    results: Sequence[CategorizationResult], run_weights: Sequence[int]
) -> dict[str, dict[str, float]]:
    """Reproduce Table III: read/write × single/all with the paper's
    column grouping (insignificant, on_start|on_end, steady, others)."""
    shares = category_shares(
        results, run_weights, TEMPORALITY_READ | TEMPORALITY_WRITE
    )
    read_cols = (
        Category.READ_INSIGNIFICANT,
        Category.READ_ON_START,
        Category.READ_STEADY,
    )
    write_cols = (
        Category.WRITE_INSIGNIFICANT,
        Category.WRITE_ON_END,
        Category.WRITE_STEADY,
    )
    return {
        "read_single": _grouped_row(shares.single_run, read_cols, TEMPORALITY_READ),
        "read_all": _grouped_row(shares.all_runs, read_cols, TEMPORALITY_READ),
        "write_single": _grouped_row(shares.single_run, write_cols, TEMPORALITY_WRITE),
        "write_all": _grouped_row(shares.all_runs, write_cols, TEMPORALITY_WRITE),
    }


def periodicity_table(
    results: Sequence[CategorizationResult],
    run_weights: Sequence[int],
    direction: str = "write",
) -> dict[str, dict[str, float]]:
    """Reproduce Table II: periodic share and period-magnitude breakdown
    for one direction, single-run vs all-runs."""
    flag = (
        Category.PERIODIC_WRITE if direction == "write" else Category.PERIODIC_READ
    )
    magnitudes = (
        Category.PERIODIC_SECOND,
        Category.PERIODIC_MINUTE,
        Category.PERIODIC_HOUR,
        Category.PERIODIC_DAY_OR_MORE,
    )
    out: dict[str, dict[str, float]] = {}
    for label, weights in (
        ("single_run", [1] * len(results)),
        ("all_runs", list(run_weights)),
    ):
        total = sum(weights)
        periodic = sum(
            w for r, w in zip(results, weights) if flag in r.categories
        )
        row = {
            "non_periodic": (total - periodic) / total if total else 0.0,
            "periodic": periodic / total if total else 0.0,
        }
        for mag in magnitudes:
            # magnitude labels are attributed to the direction via the
            # per-direction groups stored in the result
            hits = 0.0
            for r, w in zip(results, weights):
                groups = r.periodic_groups.get(direction, [])
                if any(_magnitude_of(g.period) == mag for g in groups):
                    hits += w
            row[mag.value] = hits / total if total else 0.0
        out[label] = row
    return out


def _magnitude_of(period: float) -> Category:
    from ..core.periodicity import period_magnitude
    from ..core.thresholds import DEFAULT_CONFIG

    return period_magnitude(period, DEFAULT_CONFIG)


def metadata_table(
    results: Sequence[CategorizationResult], run_weights: Sequence[int]
) -> dict[str, dict[str, float]]:
    """Reproduce Fig. 4: metadata category shares, single vs all runs."""
    shares = category_shares(results, run_weights, METADATA)
    return {
        "single_run": {c.value: shares.single_run[c] for c in sorted(METADATA)},
        "all_runs": {c.value: shares.all_runs[c] for c in sorted(METADATA)},
    }
