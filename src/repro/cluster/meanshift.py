"""Mean Shift clustering, implemented from scratch (paper ref. [29],
Fukunaga & Hostetler 1975).

MOSAIC groups trace segments whose (duration, volume) features are
comparable; every group with more than one member is a periodic
operation.  Mean Shift is the right tool because the number of periodic
behaviours per application is unknown a priori — a simulation may
checkpoint *and* read inputs periodically, yielding two modes.

The implementation supports the flat (uniform ball) and Gaussian kernels,
runs all seeds as one vectorized fixed-point iteration, and merges
converged modes closer than the bandwidth.  Complexity O(iters · n²) in
distance evaluations — segments per trace are few (fusion collapsed
them), so this is never the corpus bottleneck.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np
from scipy.spatial.distance import cdist

from ..kernels import get_backend
from .bandwidth import estimate_bandwidth

__all__ = ["MeanShiftResult", "mean_shift"]

Kernel = Literal["flat", "gaussian"]


@dataclass(slots=True, frozen=True)
class MeanShiftResult:
    """Outcome of a Mean Shift run.

    ``labels[i]`` is the cluster of point ``i``; ``modes[k]`` the density
    mode of cluster ``k``.  Clusters are ordered by decreasing size.
    """

    labels: np.ndarray
    modes: np.ndarray
    n_iter: int
    bandwidth: float

    @property
    def n_clusters(self) -> int:
        return len(self.modes)

    def cluster_sizes(self) -> np.ndarray:
        return np.bincount(self.labels, minlength=self.n_clusters)

    def members(self, k: int) -> np.ndarray:
        """Indices of the points in cluster ``k``."""
        return np.flatnonzero(self.labels == k)


def mean_shift(
    X: np.ndarray,
    bandwidth: float | None = None,
    *,
    kernel: Kernel = "flat",
    max_iter: int = 200,
    tol: float = 1e-4,
    quantile: float = 0.3,
    backend: str | None = None,
) -> MeanShiftResult:
    """Cluster ``X`` (n, d) by Mean Shift.

    Parameters
    ----------
    bandwidth:
        Kernel radius.  ``None`` estimates it via
        :func:`~repro.cluster.bandwidth.estimate_bandwidth` with
        ``quantile``.  A non-positive resolved bandwidth (degenerate
        data) yields a single cluster.
    kernel:
        ``"flat"`` (paper behaviour: hard comparability threshold) or
        ``"gaussian"``.
    tol:
        Convergence threshold on seed movement, relative to bandwidth.
    backend:
        Kernel backend for the inner shift step
        (:func:`repro.kernels.get_backend`; ``None`` = vectorized).
    """
    shift_step = get_backend(backend).shift_step
    X = np.asarray(X, dtype=np.float64)
    if X.ndim == 1:
        X = X[:, None]
    n = len(X)
    if n == 0:
        return MeanShiftResult(
            labels=np.empty(0, dtype=np.int64),
            modes=np.empty((0, X.shape[1] if X.ndim == 2 else 1)),
            n_iter=0,
            bandwidth=0.0,
        )
    if bandwidth is None:
        bandwidth = estimate_bandwidth(X, quantile=quantile)
    if bandwidth <= 0.0 or n == 1:
        return MeanShiftResult(
            labels=np.zeros(n, dtype=np.int64),
            modes=X.mean(axis=0, keepdims=True),
            n_iter=0,
            bandwidth=float(max(bandwidth or 0.0, 0.0)),
        )

    seeds = X.copy()
    n_iter = 0
    threshold = tol * bandwidth
    for n_iter in range(1, max_iter + 1):
        new = shift_step(seeds, X, bandwidth, kernel)
        move = np.linalg.norm(new - seeds, axis=1).max()
        seeds = new
        if move < threshold:
            break

    # Merge converged seeds closer than the bandwidth into shared modes,
    # preferring denser modes as representatives.
    d_seed = cdist(seeds, X)
    density = (d_seed <= bandwidth).sum(axis=1)
    order = np.argsort(-density, kind="stable")
    modes: list[np.ndarray] = []
    assignment = np.full(n, -1, dtype=np.int64)
    for idx in order:
        if assignment[idx] >= 0:
            continue
        mode = seeds[idx]
        close = np.linalg.norm(seeds - mode, axis=1) <= bandwidth
        unclaimed = close & (assignment < 0)
        assignment[unclaimed] = len(modes)
        modes.append(mode)
    modes_arr = np.asarray(modes)

    # Reorder clusters by decreasing size for deterministic output.
    sizes = np.bincount(assignment, minlength=len(modes_arr))
    new_order = np.argsort(-sizes, kind="stable")
    remap = np.empty_like(new_order)
    remap[new_order] = np.arange(len(new_order))
    return MeanShiftResult(
        labels=remap[assignment],
        modes=modes_arr[new_order],
        n_iter=n_iter,
        bandwidth=float(bandwidth),
    )
