"""Cluster-quality metrics.

Used by the periodicity ablation to compare Mean Shift groupings against
ground truth, and by threshold-calibration utilities.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial.distance import cdist

__all__ = [
    "within_cluster_spread",
    "silhouette_mean",
    "pair_confusion",
    "adjusted_rand_index",
]


def within_cluster_spread(X: np.ndarray, labels: np.ndarray) -> float:
    """Mean distance of points to their cluster centroid."""
    X = np.asarray(X, dtype=np.float64)
    labels = np.asarray(labels)
    if len(X) == 0:
        return 0.0
    total = 0.0
    for k in np.unique(labels):
        pts = X[labels == k]
        total += float(np.linalg.norm(pts - pts.mean(axis=0), axis=1).sum())
    return total / len(X)


def silhouette_mean(X: np.ndarray, labels: np.ndarray) -> float:
    """Mean silhouette coefficient; 0.0 when undefined (single cluster
    or singleton-only clustering)."""
    X = np.asarray(X, dtype=np.float64)
    labels = np.asarray(labels)
    uniq = np.unique(labels)
    if len(uniq) < 2 or len(X) < 3:
        return 0.0
    d = cdist(X, X)
    scores = []
    for i in range(len(X)):
        same = labels == labels[i]
        same[i] = False
        if not same.any():
            continue  # singleton: silhouette undefined for this point
        a = d[i, same].mean()
        b = min(d[i, labels == k].mean() for k in uniq if k != labels[i])
        denom = max(a, b)
        scores.append(0.0 if denom == 0 else (b - a) / denom)
    return float(np.mean(scores)) if scores else 0.0


def pair_confusion(true: np.ndarray, pred: np.ndarray) -> tuple[int, int, int, int]:
    """Pairwise (TP, FP, FN, TN) between two labelings of the same points."""
    true = np.asarray(true)
    pred = np.asarray(pred)
    if true.shape != pred.shape:
        raise ValueError("labelings must have equal length")
    n = len(true)
    tp = fp = fn = tn = 0
    for i in range(n):
        same_t = true[i + 1 :] == true[i]
        same_p = pred[i + 1 :] == pred[i]
        tp += int(np.sum(same_t & same_p))
        fp += int(np.sum(~same_t & same_p))
        fn += int(np.sum(same_t & ~same_p))
        tn += int(np.sum(~same_t & ~same_p))
    return tp, fp, fn, tn


def adjusted_rand_index(true: np.ndarray, pred: np.ndarray) -> float:
    """Adjusted Rand index between two labelings (1.0 = identical
    partitions, ~0.0 = random agreement)."""
    tp, fp, fn, tn = pair_confusion(true, pred)
    total = tp + fp + fn + tn
    if total == 0:
        return 1.0
    expected = (tp + fp) * (tp + fn) / total
    maximum = 0.5 * ((tp + fp) + (tp + fn))
    if maximum == expected:
        return 1.0
    return (tp - expected) / (maximum - expected)
