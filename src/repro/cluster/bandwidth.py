"""Bandwidth selection for Mean Shift.

MOSAIC's periodicity detection clusters segments on (duration, volume);
the bandwidth is the threshold at which two segments count as "the same
periodic operation".  The paper sets it empirically on one month of
traces; this module provides both that fixed-threshold mode and the
classical k-nearest-neighbour quantile estimator for datasets where no
calibration exists.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial.distance import cdist

__all__ = ["estimate_bandwidth"]


def estimate_bandwidth(
    X: np.ndarray, quantile: float = 0.3, max_samples: int = 500, seed: int = 0
) -> float:
    """Estimate a Mean Shift bandwidth from the data.

    For every point, take the distance to its ``ceil(quantile * n)``-th
    nearest neighbour and average — the standard estimator (Comaniciu &
    Meer style, also used by scikit-learn).  Quadratic in ``n``; inputs
    larger than ``max_samples`` are subsampled deterministically.

    Returns 0.0 for degenerate inputs (``n < 2`` or all points equal);
    callers should treat 0.0 as "no structure, single cluster".
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim == 1:
        X = X[:, None]
    n = len(X)
    if n < 2:
        return 0.0
    if not 0.0 < quantile <= 1.0:
        raise ValueError("quantile must be in (0, 1]")
    if n > max_samples:
        rng = np.random.default_rng(seed)
        X = X[rng.choice(n, size=max_samples, replace=False)]
        n = max_samples
    k = max(1, int(np.ceil(quantile * n)))
    d = cdist(X, X)
    d.sort(axis=1)
    # column 0 is the self-distance (0); the k-th neighbour is column k
    kth = d[:, min(k, n - 1)]
    return float(kth.mean())
