"""From-scratch Mean Shift clustering (paper ref. [29]) and cluster
quality metrics used by the periodicity detector and its ablations."""

from .bandwidth import estimate_bandwidth
from .meanshift import MeanShiftResult, mean_shift
from .metrics import (
    adjusted_rand_index,
    pair_confusion,
    silhouette_mean,
    within_cluster_spread,
)

__all__ = [
    "estimate_bandwidth",
    "MeanShiftResult",
    "mean_shift",
    "adjusted_rand_index",
    "pair_confusion",
    "silhouette_mean",
    "within_cluster_spread",
]
